//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses —
//! `SmallRng::seed_from_u64` plus `Rng::gen_range` over half-open
//! integer ranges — **bit-exactly** compatible with `rand` 0.8 on
//! 64-bit platforms, so seeded workload generation reproduces the same
//! binaries as the original dependency:
//!
//! * `SmallRng` is xoshiro256++, seeded from a `u64` via SplitMix64
//!   (the same override `rand` ships);
//! * `gen_range` uses the widening-multiply rejection scheme of
//!   `UniformInt::sample_single`.

use std::ops::Range;

/// Core generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A full-range `u64` (the only `gen` shape the uniform sampler needs).
    fn gen_u64(&mut self) -> u64
    where
        Self: Sized,
    {
        self.next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges a `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sample in `[0, len)` via 128-bit widening multiply with
/// rejection — identical to `rand` 0.8's `UniformInt::sample_single`
/// for 64-bit output types.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, len: u64) -> u64 {
    debug_assert!(len > 0);
    let zone = (len << len.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(len);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let len = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let offset = sample_u64_below(rng, len) as $u;
                (self.start as $u).wrapping_add(offset) as $t
            }
        }
    )*};
}
impl_sample_range!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize
);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — what `rand` 0.8's `SmallRng` is on 64-bit.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        /// SplitMix64 expansion of a `u64` seed, exactly as `rand` 0.8
        /// overrides `seed_from_u64` for xoshiro256++.
        fn seed_from_u64(mut state: u64) -> SmallRng {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *slot = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Reference values computed from `rand` 0.8.5's
    /// `SmallRng::seed_from_u64(0)` (xoshiro256++ + SplitMix64).
    #[test]
    fn seed_zero_matches_rand_08() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        // SplitMix64(0) expands to these four state words:
        //   s = [e220a8397b1dcdaf, 6e789e6aa1b965f4, 06c45d188009454f, f88bb8a8724c81ec]
        // and the first xoshiro256++ output is
        //   rotl(s0 + s3, 23) + s0.
        let s0 = 0xe220_a839_7b1d_cdafu64;
        let s3 = 0xf88b_b8a8_724c_81ecu64;
        assert_eq!(first, s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0));
        assert_ne!(first, second);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..60);
            assert!((3..60).contains(&v));
            let u = rng.gen_range(0u64..17);
            assert!(u < 17);
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }
}

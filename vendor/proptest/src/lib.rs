//! Offline stand-in for `proptest`.
//!
//! Provides the strategy/`proptest!` surface this workspace uses with
//! deterministic seeded sampling and **no shrinking**: each test
//! function derives a seed from its own name, draws `cases` inputs,
//! and panics with the failing case's message on the first failure.
//! The API mirrors `proptest` closely enough that the repository's
//! property tests compile unchanged.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Failure raised from inside a property body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Deterministic source of randomness for strategy sampling.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        #[must_use]
        pub fn new(seed: u64) -> TestRng {
            TestRng { inner: SmallRng::seed_from_u64(seed) }
        }

        /// Seed derived from the test name (FNV-1a) so every property
        /// test gets a distinct but reproducible stream.
        #[must_use]
        pub fn from_name(name: &str) -> TestRng {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(hash)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            use rand::Rng;
            assert!(bound > 0, "empty choice set");
            self.inner.gen_range(0..bound)
        }

        pub(crate) fn small(&mut self) -> &mut SmallRng {
            &mut self.inner
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, map: f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        strategy: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.strategy.sample(rng))
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.small().gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Collection size specification: a count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.0.end <= self.0.start + 1 {
                self.0.start
            } else {
                self.0.start + rng.below(self.0.end - self.0.start)
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Each function samples its arguments from the
/// given strategies `cases` times; the body may use `prop_assert!`,
/// `prop_assert_eq!`, `?` on `Result<_, TestCaseError>`, or an
/// explicit `return Err(TestCaseError::fail(..))`.
#[macro_export]
macro_rules! proptest {
    (@body ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __cases: u32 = __config.cases;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cases {
                    $(let $parm = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __result = (move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest `{}` case {}/{} failed: {}",
                                stringify!($name),
                                __case + 1,
                                __cases,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @body ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert inside a property body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

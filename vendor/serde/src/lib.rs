//! Offline stand-in for `serde`.
//!
//! The container registry this workspace builds against is not
//! reachable from the build environment, so the handful of external
//! crates are vendored as minimal API-compatible implementations. This
//! one replaces `serde` with a concrete `Value`-tree data model: types
//! serialise into a [`Value`] and deserialise back out of one, and the
//! companion `serde_json` stand-in maps `Value` to and from JSON text.
//!
//! Only the surface this repository uses is implemented: the
//! `Serialize`/`Deserialize` derives (via the sibling `serde_derive`
//! stand-in), primitives, strings, tuples, `Option`, `Vec`,
//! `BTreeMap`/`BTreeSet`, and the `rename_all` container attribute.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The serialisation data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order is preserved (declaration order under derive).
    Obj(Vec<(String, Value)>),
}

impl Value {
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned view of a numeric value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Signed view of a numeric value.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Float view of a numeric value.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialisation failure: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    #[must_use]
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError { msg: format!("expected {what} while deserialising {ty}") }
    }

    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> DeError {
        DeError { msg: format!("unknown {ty} variant `{variant}`") }
    }

    #[must_use]
    pub fn missing_field(name: &str) -> DeError {
        DeError { msg: format!("missing field `{name}`") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialise into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialise out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Value to use for a missing struct field (`None` means the field
    /// is required; `Option<T>` overrides this to default to `None`).
    #[doc(hidden)]
    fn absent() -> Option<Self> {
        None
    }
}

/// Look a struct field up by name (used by the derive).
#[doc(hidden)]
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::absent().ok_or_else(|| DeError::missing_field(name)),
    }
}

/// Stringified map keys (JSON objects only allow string keys).
pub trait KeyCodec: Sized {
    fn encode_key(&self) -> String;
    fn decode_key(s: &str) -> Result<Self, DeError>;
}

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError::expected("unsigned integer", stringify!($t))
                })?;
                <$t>::try_from(u).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
        impl KeyCodec for $t {
            fn encode_key(&self) -> String {
                self.to_string()
            }
            fn decode_key(s: &str) -> Result<$t, DeError> {
                s.parse().map_err(|_| DeError::expected("integer key", stringify!($t)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<usize, DeError> {
        let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", "usize"))?;
        usize::try_from(u).map_err(|_| DeError::expected("in-range integer", "usize"))
    }
}

impl KeyCodec for usize {
    fn encode_key(&self) -> String {
        self.to_string()
    }
    fn decode_key(s: &str) -> Result<usize, DeError> {
        s.parse().map_err(|_| DeError::expected("integer key", "usize"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError::expected("integer", stringify!($t))
                })?;
                <$t>::try_from(i).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
        impl KeyCodec for $t {
            fn encode_key(&self) -> String {
                self.to_string()
            }
            fn decode_key(s: &str) -> Result<$t, DeError> {
                s.parse().map_err(|_| DeError::expected("integer key", stringify!($t)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<isize, DeError> {
        let i = v.as_i64().ok_or_else(|| DeError::expected("integer", "isize"))?;
        isize::try_from(i).map_err(|_| DeError::expected("in-range integer", "isize"))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::expected("number", stringify!($t)))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        // Static string fields only appear in small fixed tables
        // (e.g. branch-form specs); leaking the handful of parsed
        // copies is deliberate and bounded.
        let s = v.as_str().ok_or_else(|| DeError::expected("string", "&str"))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl KeyCodec for String {
    fn encode_key(&self) -> String {
        self.clone()
    }
    fn decode_key(s: &str) -> Result<String, DeError> {
        Ok(s.to_string())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Option<T>> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let arr = v.as_arr().ok_or_else(|| DeError::expected("array", "array"))?;
        if arr.len() != N {
            return Err(DeError::expected("fixed-length array", "array"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                let arr = v.as_arr().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expect = 0usize $(+ { let _ = $idx; 1 })+;
                if arr.len() != expect {
                    return Err(DeError::expected("tuple-length array", "tuple"));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: KeyCodec + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.encode_key(), v.to_value())).collect())
    }
}

impl<K: KeyCodec + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        v.as_obj()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::decode_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::expected("array", "BTreeSet"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

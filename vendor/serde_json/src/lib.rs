//! Offline stand-in for `serde_json`: JSON text to and from the
//! in-tree `serde` [`Value`] data model. Implements exactly the
//! surface this workspace uses — `from_str`/`from_slice`,
//! `to_string`/`to_string_pretty`/`to_vec` — over a conventional
//! recursive-descent parser and printer.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialisation failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a value of `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { bytes: s.as_bytes(), pos: 0 }.parse_document()?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parse a value of `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Serialise to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialise to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            continue; // parse_hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (already validated).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => {}
                b'.' | b'e' | b'E' | b'+' | b'-' => float = true,
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if float {
            text.parse().map(Value::Float).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse().map(Value::Int).map_err(|_| self.err("invalid number"))
        } else {
            text.parse().map(Value::UInt).map_err(|_| self.err("invalid number"))
        }
    }
}

// ----------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format!("{f:?}")),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

//! Offline stand-in for `serde_derive`.
//!
//! Derives the `serde::Serialize`/`serde::Deserialize` traits of the
//! in-tree `serde` crate (a `Value`-tree data model) without pulling in
//! `syn`/`quote`: the item is parsed directly from the `proc_macro`
//! token stream and the impl is emitted as source text. Supports the
//! shapes this workspace uses — named/tuple/unit structs and enums
//! with unit, tuple and struct variants — plus the container attribute
//! `#[serde(rename_all = "lowercase"|"UPPERCASE"|"snake_case"|"kebab-case")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Input {
    name: String,
    rename_all: Option<String>,
    kind: Kind,
}

enum Kind {
    /// Named-field struct (field names in declaration order).
    Named(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum (variants in declaration order).
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

// ---------------------------------------------------------------- parsing

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter: Iter = input.into_iter().peekable();
    let mut rename_all = None;
    skip_attrs(&mut iter, &mut rename_all);
    skip_visibility(&mut iter);
    let item_kind = expect_ident(&mut iter)?;
    let name = expect_ident(&mut iter)?;
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde stand-in: generic type `{name}` is not supported"));
    }
    let kind = match item_kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            _ => return Err(format!("serde stand-in: unsupported struct body for `{name}`")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("serde stand-in: malformed enum `{name}`")),
        },
        other => return Err(format!("serde stand-in: cannot derive for `{other}` items")),
    };
    Ok(Input { name, rename_all, kind })
}

fn expect_ident(iter: &mut Iter) -> Result<String, String> {
    match iter.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("serde stand-in: expected identifier, found {other:?}")),
    }
}

/// Skip leading attributes; record `#[serde(rename_all = "...")]`.
fn skip_attrs(iter: &mut Iter, rename_all: &mut Option<String>) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.next() {
            scan_attr(g.stream(), rename_all);
        }
    }
}

/// Inspect one attribute body (`serde(...)`, `doc = "..."`, ...).
fn scan_attr(attr: TokenStream, rename_all: &mut Option<String>) {
    let mut iter = attr.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = iter.next() else { return };
    let mut inner = args.stream().into_iter();
    while let Some(tok) = inner.next() {
        if matches!(&tok, TokenTree::Ident(id) if id.to_string() == "rename_all") {
            // `rename_all = "style"`
            if matches!(inner.next(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                if let Some(TokenTree::Literal(lit)) = inner.next() {
                    *rename_all = Some(lit.to_string().trim_matches('"').to_string());
                }
            }
        }
    }
}

fn skip_visibility(iter: &mut Iter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

/// Field names of a `{ ... }` struct body. Types are skipped with
/// angle-bracket depth tracking so generic arguments' commas do not
/// split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut iter: Iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut ignored = None;
        skip_attrs(&mut iter, &mut ignored);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => return Err(format!("serde stand-in: expected field name, found {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde stand-in: expected `:`, found {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
        if iter.peek().is_none() {
            break;
        }
    }
    Ok(fields)
}

/// Arity of a `( ... )` tuple-struct/variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tok in body {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter: Iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let mut ignored = None;
        skip_attrs(&mut iter, &mut ignored);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde stand-in: expected variant, found {other:?}")),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                iter.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip any explicit discriminant, up to the separating comma.
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                None => break,
                _ => {}
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- renaming

fn rename(style: Option<&str>, name: &str) -> String {
    match style {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => camel_to(name, '_'),
        Some("kebab-case") => camel_to(name, '-'),
        _ => name.to_string(),
    }
}

fn camel_to(name: &str, sep: char) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------- serialize

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let style = item.rename_all.as_deref();
    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let key = rename(style, f);
                    format!(
                        "(::std::string::String::from({key:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let entries: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Arr(vec![{}])", entries.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = rename(style, &v.name);
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{v} => ::serde::Value::Str(\
                             ::std::string::String::from({tag:?}))",
                            v = v.name
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{v}(__f0) => ::serde::Value::Obj(vec![(\
                             ::std::string::String::from({tag:?}), \
                             ::serde::Serialize::to_value(__f0))])",
                            v = v.name
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{v}({binds}) => ::serde::Value::Obj(vec![(\
                                 ::std::string::String::from({tag:?}), \
                                 ::serde::Value::Arr(vec![{vals}]))])",
                                v = v.name,
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => ::serde::Value::Obj(vec![(\
                                 ::std::string::String::from({tag:?}), \
                                 ::serde::Value::Obj(vec![{entries}]))])",
                                v = v.name,
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

// -------------------------------------------------------------- deserialize

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let style = item.rename_all.as_deref();
    let body = match &item.kind {
        Kind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let key = rename(style, f);
                    format!("{f}: ::serde::field(__obj, {key:?})?")
                })
                .collect();
            format!(
                "let __obj = __v.as_obj().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", {name:?}))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::Tuple(n) => {
            let vals: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?")).collect();
            format!(
                "let __arr = __v.as_arr().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", {name:?}))?; \
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{n}-element array\", {name:?})); }} \
                 ::std::result::Result::Ok({name}({}))",
                vals.join(", ")
            )
        }
        Kind::Unit => format!("let _ = __v; ::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_enum_deserialize(name, style, variants),
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

fn gen_enum_deserialize(name: &str, style: Option<&str>, variants: &[Variant]) -> String {
    let unit: Vec<&Variant> = variants.iter().filter(|v| matches!(v.shape, Shape::Unit)).collect();
    let data: Vec<&Variant> = variants.iter().filter(|v| !matches!(v.shape, Shape::Unit)).collect();

    // `"Tag"` form for unit variants.
    let mut str_arm = String::new();
    for v in &unit {
        let tag = rename(style, &v.name);
        str_arm.push_str(&format!(
            "if __s == {tag:?} {{ return ::std::result::Result::Ok({name}::{v}); }} ",
            v = v.name
        ));
    }
    str_arm.push_str(&format!(
        "::std::result::Result::Err(::serde::DeError::unknown_variant(__s, {name:?}))"
    ));

    // `{"Tag": payload}` form for data variants.
    let mut obj_arm = String::new();
    for v in &data {
        let tag = rename(style, &v.name);
        let build = match &v.shape {
            Shape::Unit => unreachable!(),
            Shape::Tuple(1) => format!(
                "::std::result::Result::Ok({name}::{v}(\
                 ::serde::Deserialize::from_value(__inner)?))",
                v = v.name
            ),
            Shape::Tuple(n) => {
                let vals: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __inner.as_arr().ok_or_else(|| \
                     ::serde::DeError::expected(\"array\", {name:?}))?; \
                     if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"{n}-element array\", {name:?})); }} \
                     ::std::result::Result::Ok({name}::{v}({vals}))",
                    v = v.name,
                    vals = vals.join(", ")
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(__fields, {f:?})?"))
                    .collect();
                format!(
                    "let __fields = __inner.as_obj().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", {name:?}))?; \
                     ::std::result::Result::Ok({name}::{v} {{ {inits} }})",
                    v = v.name,
                    inits = inits.join(", ")
                )
            }
        };
        obj_arm.push_str(&format!("if __k == {tag:?} {{ {build} }} else "));
    }
    obj_arm.push_str(&format!(
        "{{ ::std::result::Result::Err(::serde::DeError::unknown_variant(__k, {name:?})) }}"
    ));
    let inner_bind = if data.is_empty() { "_" } else { "__inner" };

    format!(
        "match __v {{ \
         ::serde::Value::Str(__s) => {{ let __s = __s.as_str(); {str_arm} }} \
         ::serde::Value::Obj(__o) if __o.len() == 1 => {{ \
         let (__k, {inner_bind}) = &__o[0]; let __k = __k.as_str(); {obj_arm} }} \
         _ => ::std::result::Result::Err(\
         ::serde::DeError::expected(\"string or single-key object\", {name:?})) }}"
    )
}

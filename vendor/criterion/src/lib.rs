//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with the same calling
//! conventions the workspace's `[[bench]]` targets use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `criterion_group!`/`criterion_main!`). No statistics beyond
//! mean/min over the configured sample count.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20, throughput: None }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), per_sample: self.sample_size };
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up run, then timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.per_sample {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.1} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) => {
            format!(" ({:.1} MiB/s)", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
        }
    });
    println!(
        "{group}/{id}: mean {mean:?}, min {min:?} over {} samples{}",
        samples.len(),
        rate.unwrap_or_default()
    );
}

/// Prevent the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Property tests for the emulator: the interpreter agrees with a
//! pure-Rust oracle on random straight-line ALU programs, and cost
//! accounting obeys its invariants.

use icfgp_asm::{BinaryBuilder, FuncDef, Item};
use icfgp_emu::{run, LoadOptions, Outcome};
use icfgp_isa::{AluOp, Arch, Inst, Reg, SysOp};
use icfgp_obj::Language;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    MovImm(u8, i16),
    Alu(AluOp, u8, u8, u8),
    AluImm(AluOp, u8, u8, i8),
    Mov(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let r = || 8u8..14;
    let alu = || {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
        ]
    };
    prop_oneof![
        (r(), any::<i16>()).prop_map(|(d, v)| Op::MovImm(d, v)),
        (alu(), r(), r(), r()).prop_map(|(o, d, a, b)| Op::Alu(o, d, a, b)),
        (alu(), r(), r(), any::<i8>()).prop_map(|(o, d, s, v)| Op::AluImm(o, d, s, v)),
        (r(), r()).prop_map(|(d, s)| Op::Mov(d, s)),
    ]
}

/// Evaluate the program in pure Rust.
fn oracle(ops: &[Op]) -> i64 {
    let mut regs = [0i64; 16];
    for op in ops {
        match op {
            Op::MovImm(d, v) => regs[*d as usize] = i64::from(*v),
            Op::Alu(o, d, a, b) => {
                regs[*d as usize] = o.eval(regs[*a as usize], regs[*b as usize]);
            }
            Op::AluImm(o, d, s, v) => {
                regs[*d as usize] = o.eval(regs[*s as usize], i64::from(*v));
            }
            Op::Mov(d, s) => regs[*d as usize] = regs[*s as usize],
        }
    }
    regs[8]
}

fn to_items(ops: &[Op]) -> Vec<Item> {
    let mut items: Vec<Item> = ops
        .iter()
        .map(|op| {
            Item::I(match op {
                Op::MovImm(d, v) => Inst::MovImm { dst: Reg(*d), imm: i64::from(*v) },
                Op::Alu(o, d, a, b) => {
                    Inst::Alu { op: *o, dst: Reg(*d), a: Reg(*a), b: Reg(*b) }
                }
                Op::AluImm(o, d, s, v) => Inst::AluImm {
                    op: *o,
                    dst: Reg(*d),
                    src: Reg(*s),
                    imm: i32::from(*v),
                },
                Op::Mov(d, s) => Inst::MovReg { dst: Reg(*d), src: Reg(*s) },
            })
        })
        .collect();
    items.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
    items.push(Item::I(Inst::Halt));
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The interpreter computes exactly what the Rust oracle computes,
    /// on every architecture (same semantic instruction set).
    #[test]
    fn interpreter_matches_oracle(ops in proptest::collection::vec(arb_op(), 1..64),
                                  arch in prop_oneof![
                                      Just(Arch::X64),
                                      Just(Arch::Ppc64le),
                                      Just(Arch::Aarch64)
                                  ]) {
        let mut b = BinaryBuilder::new(arch);
        b.add_function(FuncDef::new("main", Language::C, to_items(&ops)));
        b.set_entry("main");
        let bin = b.build().expect("assembles");
        match run(&bin, &LoadOptions::default()) {
            Outcome::Halted(stats) => {
                prop_assert_eq!(stats.output, vec![oracle(&ops)]);
                prop_assert_eq!(stats.instructions, ops.len() as u64 + 2);
                prop_assert!(stats.cycles >= stats.instructions,
                    "cycles are at least 1 per instruction");
            }
            o => return Err(TestCaseError::fail(format!("{arch}: {o:?}"))),
        }
    }

    /// The same program produces the same counters on repeated runs
    /// (determinism of the whole pipeline).
    #[test]
    fn runs_are_deterministic(ops in proptest::collection::vec(arb_op(), 1..32)) {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("main", Language::C, to_items(&ops)));
        b.set_entry("main");
        let bin = b.build().expect("assembles");
        let a = run(&bin, &LoadOptions::default());
        let b2 = run(&bin, &LoadOptions::default());
        prop_assert_eq!(a.stats(), b2.stats());
    }

    /// Fuel is respected exactly: limiting to N instructions stops at N.
    #[test]
    fn fuel_is_exact(limit in 1u64..20) {
        let mut b = BinaryBuilder::new(Arch::Aarch64);
        b.add_function(FuncDef::new(
            "main",
            Language::C,
            vec![Item::Label("x".into()), Item::I(Inst::Nop), Item::JmpL("x".into())],
        ));
        b.set_entry("main");
        let bin = b.build().expect("assembles");
        let opts = LoadOptions { fuel: limit, ..LoadOptions::default() };
        match run(&bin, &opts) {
            Outcome::OutOfFuel(stats) => prop_assert_eq!(stats.instructions, limit),
            o => return Err(TestCaseError::fail(format!("{o:?}"))),
        }
    }
}

//! Deeper unwinder tests: multi-frame unwinding, nested catch scopes,
//! rethrow, and the frdwarf-style compiled-unwinding cost option.

use icfgp_asm::{epilogue, prologue, BinaryBuilder, FuncDef, Item, UnwindSpec};
use icfgp_emu::{run, CostModel, CrashReason, LoadOptions, Outcome};
use icfgp_isa::{AluOp, Arch, Inst, Reg, SysOp};
use icfgp_obj::{Binary, Language};

fn out(r: u8) -> Item {
    Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(r) })
}

fn movi(r: u8, v: i64) -> Item {
    Item::I(Inst::MovImm { dst: Reg(r), imm: v })
}

/// main → outer_catch → middle (no handler) → thrower: the exception
/// skips the handler-less frame.
fn deep_throw_binary(arch: Arch) -> Binary {
    let mut b = BinaryBuilder::new(arch);
    let mut main = prologue(arch, 32, false);
    main.push(Item::CallF("outer".into()));
    main.push(out(8));
    main.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", Language::Cpp, main));

    let mut o = prologue(arch, 32, false);
    o.push(Item::Label("try_s".into()));
    o.push(Item::CallF("middle".into()));
    o.push(Item::Label("try_e".into()));
    o.push(movi(8, -1)); // not taken
    o.extend(epilogue(arch, 32, false));
    o.push(Item::Label("landing".into()));
    o.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 100 }));
    o.extend(epilogue(arch, 32, false));
    b.add_function(FuncDef::new("outer", Language::Cpp, o).with_unwind(UnwindSpec {
        frame_size: 32,
        ra: None,
        call_sites: vec![("try_s".into(), "try_e".into(), "landing".into())],
    }));

    let mut m = prologue(arch, 64, false);
    m.push(Item::CallF("thrower".into()));
    m.extend(epilogue(arch, 64, false));
    b.add_function(
        FuncDef::new("middle", Language::Cpp, m)
            .with_unwind(UnwindSpec { frame_size: 64, ra: None, call_sites: vec![] }),
    );

    let mut t = prologue(arch, 48, false);
    t.push(movi(9, 7));
    t.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(9) }));
    t.extend(epilogue(arch, 48, false));
    b.add_function(
        FuncDef::new("thrower", Language::Cpp, t)
            .with_unwind(UnwindSpec { frame_size: 48, ra: None, call_sites: vec![] }),
    );
    b.set_entry("main");
    b.build().unwrap()
}

#[test]
fn exception_skips_handlerless_frames() {
    for arch in Arch::ALL {
        let bin = deep_throw_binary(arch);
        match run(&bin, &LoadOptions::default()) {
            Outcome::Halted(s) => {
                assert_eq!(s.output, vec![107], "{arch}: 7 + 100");
                assert!(s.unwind_steps >= 3, "{arch}: walked thrower+middle+outer");
            }
            o => panic!("{arch}: {o:?}"),
        }
    }
}

#[test]
fn compiled_unwinding_is_cheaper_and_equivalent() {
    let bin = deep_throw_binary(Arch::X64);
    let dwarf = match run(&bin, &LoadOptions::default()) {
        Outcome::Halted(s) => s,
        o => panic!("{o:?}"),
    };
    let mut cost = CostModel::default();
    cost.compiled_unwinding = true;
    let opts = LoadOptions { cost, ..LoadOptions::default() };
    match run(&bin, &opts) {
        Outcome::Halted(s) => {
            assert_eq!(s.output, dwarf.output, "semantics unchanged");
            assert!(
                s.cycles < dwarf.cycles,
                "compiled unwinding is cheaper: {} vs {}",
                s.cycles,
                dwarf.cycles
            );
            assert_eq!(s.unwind_steps, dwarf.unwind_steps);
        }
        o => panic!("{o:?}"),
    }
}

/// A catch handler that rethrows: the second throw unwinds to the next
/// outer handler.
#[test]
fn rethrow_reaches_outer_handler() {
    let arch = Arch::X64;
    let mut b = BinaryBuilder::new(arch);
    let mut main = prologue(arch, 32, false);
    main.push(Item::Label("m_try_s".into()));
    main.push(Item::CallF("inner_catch".into()));
    main.push(Item::Label("m_try_e".into()));
    main.push(movi(8, -1));
    main.push(out(8));
    main.push(Item::I(Inst::Halt));
    main.push(Item::Label("m_landing".into()));
    main.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 1000 }));
    main.push(out(8));
    main.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", Language::Cpp, main).with_unwind(UnwindSpec {
        frame_size: 32,
        ra: None,
        call_sites: vec![("m_try_s".into(), "m_try_e".into(), "m_landing".into())],
    }));

    let mut ic = prologue(arch, 32, false);
    ic.push(Item::Label("try_s".into()));
    ic.push(Item::CallF("thrower".into()));
    ic.push(Item::Label("try_e".into()));
    ic.extend(epilogue(arch, 32, false));
    ic.push(Item::Label("landing".into()));
    // Catch, increment, rethrow.
    ic.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 1 }));
    ic.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(8) }));
    b.add_function(FuncDef::new("inner_catch", Language::Cpp, ic).with_unwind(UnwindSpec {
        frame_size: 32,
        ra: None,
        call_sites: vec![("try_s".into(), "try_e".into(), "landing".into())],
    }));

    let mut t = prologue(arch, 16, false);
    t.push(movi(9, 5));
    t.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(9) }));
    t.extend(epilogue(arch, 16, false));
    b.add_function(
        FuncDef::new("thrower", Language::Cpp, t)
            .with_unwind(UnwindSpec { frame_size: 16, ra: None, call_sites: vec![] }),
    );
    b.set_entry("main");
    let bin = b.build().unwrap();
    match run(&bin, &LoadOptions::default()) {
        Outcome::Halted(s) => {
            assert_eq!(s.output, vec![5 + 1 + 1000]);
            assert_eq!(s.throws, 2);
        }
        o => panic!("{o:?}"),
    }
}

/// A throw inside the *handler's own try range* must not re-enter the
/// same handler: the generator never emits throws inside call-site
/// ranges, and the unwinder attributes the throw frame by its own PC.
#[test]
fn throw_outside_callsite_ranges_unwinds_past() {
    let arch = Arch::Aarch64;
    let mut b = BinaryBuilder::new(arch);
    let mut main = prologue(arch, 32, false);
    main.push(Item::CallF("f".into()));
    main.push(out(8));
    main.push(Item::I(Inst::Halt));
    b.add_function(
        FuncDef::new("main", Language::Cpp, main)
            .with_unwind(UnwindSpec { frame_size: 32, ra: None, call_sites: vec![] }),
    );
    // f has a handler covering an *empty* range; its own throw is not
    // inside it, so the exception escapes f and is uncaught.
    let mut f = prologue(arch, 32, false);
    f.push(Item::Label("s".into()));
    f.push(Item::Label("e".into()));
    f.push(movi(9, 3));
    f.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(9) }));
    f.extend(epilogue(arch, 32, false));
    f.push(Item::Label("lp".into()));
    f.extend(epilogue(arch, 32, false));
    b.add_function(FuncDef::new("f", Language::Cpp, f).with_unwind(UnwindSpec {
        frame_size: 32,
        ra: None,
        call_sites: vec![("s".into(), "e".into(), "lp".into())],
    }));
    b.set_entry("main");
    let bin = b.build().unwrap();
    match run(&bin, &LoadOptions::default()) {
        Outcome::Crashed { reason: CrashReason::UncaughtException, .. } => {}
        o => panic!("expected uncaught, got {o:?}"),
    }
}

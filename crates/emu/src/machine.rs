//! The guest machine: loader, interpreter, trap dispatch and the
//! language-runtime unwinder.

use crate::cost::{CostModel, ExecStats};
use crate::icache::ICache;
use crate::memory::Memory;
use crate::runtime::RuntimeLib;
use icfgp_isa::{decode, Addr, Arch, Inst, Reg, SysOp};
use icfgp_obj::{names, Binary, BinaryKind, RaRule, UnwindTable};
use std::collections::HashMap;
use std::fmt;

/// ABI: argument/return/exception register.
pub(crate) const RET_REG: usize = 8;

/// Pseudo return address marking the end of a finalizer call.
const FINI_SENTINEL: u64 = 0xFFFF_FFFF_FFFF_FE00;

/// How to load and run a binary.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Load bias added to every link-time address (PIE only).
    pub bias: u64,
    /// Parse `.trap_map`/`.ra_map` and enable the runtime library
    /// (the `LD_PRELOAD` analog). Required for rewritten binaries that
    /// use trap trampolines or RA translation.
    pub preload_runtime: bool,
    /// Guest stack size in bytes.
    pub stack_size: usize,
    /// Instruction budget before the run is cut off.
    pub fuel: u64,
    /// Cost model.
    pub cost: CostModel,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            bias: 0,
            preload_runtime: false,
            stack_size: 1 << 20,
            fuel: 500_000_000,
            cost: CostModel::default(),
        }
    }
}

/// Why a load failed before any instruction ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A non-zero bias was requested for position-dependent code.
    BiasOnNonPie,
    /// Allocated sections overlap (malformed binary).
    BadLayout(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BiasOnNonPie => {
                write!(f, "cannot rebase a position-dependent binary")
            }
            LoadError::BadLayout(e) => write!(f, "bad section layout: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Why a run crashed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashReason {
    /// Decoding failed at `pc` — wild control flow hit poison bytes or
    /// data (this is what the rewriter's "overwrite `.text` with
    /// illegal bytes" strong test detects).
    IllegalInstruction {
        /// Faulting PC (runtime address).
        pc: u64,
    },
    /// Execution left every executable segment.
    UnmappedExecution {
        /// Faulting PC.
        pc: u64,
    },
    /// A data access touched unmapped or read-only memory.
    BadMemoryAccess {
        /// Faulting address.
        addr: u64,
        /// PC of the access.
        pc: u64,
    },
    /// A trap executed with no trap-map entry (or no runtime loaded).
    UnhandledTrap {
        /// Trap PC.
        pc: u64,
    },
    /// The unwinder found no recipe for a frame's resume address —
    /// exactly how C++ exceptions die in a rewritten binary without RA
    /// translation.
    UnwindFailure {
        /// Untranslatable resume address.
        pc: u64,
    },
    /// An exception unwound past `main`.
    UncaughtException,
    /// The guest aborted (Go-runtime panic analog).
    GuestAbort {
        /// Abort code.
        code: i64,
    },
    /// A misaligned PC on a fixed-width architecture.
    MisalignedPc {
        /// Faulting PC.
        pc: u64,
    },
    /// Loading failed before execution.
    LoadFailed {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CrashReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashReason::IllegalInstruction { pc } => write!(f, "illegal instruction at {pc:#x}"),
            CrashReason::UnmappedExecution { pc } => write!(f, "execution left the image at {pc:#x}"),
            CrashReason::BadMemoryAccess { addr, pc } => {
                write!(f, "bad memory access to {addr:#x} at pc {pc:#x}")
            }
            CrashReason::UnhandledTrap { pc } => write!(f, "unhandled trap at {pc:#x}"),
            CrashReason::UnwindFailure { pc } => write!(f, "cannot unwind through {pc:#x}"),
            CrashReason::UncaughtException => write!(f, "uncaught exception"),
            CrashReason::GuestAbort { code } => write!(f, "guest abort with code {code}"),
            CrashReason::MisalignedPc { pc } => write!(f, "misaligned pc {pc:#x}"),
            CrashReason::LoadFailed { reason } => write!(f, "load failed: {reason}"),
        }
    }
}

/// Result of running a binary.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The program halted normally (finalizers included).
    Halted(ExecStats),
    /// The program crashed.
    Crashed {
        /// What went wrong.
        reason: CrashReason,
        /// Counters up to the crash.
        stats: ExecStats,
    },
    /// The instruction budget ran out (treated as a failure by the
    /// harness — rewritten binaries must terminate).
    OutOfFuel(ExecStats),
}

impl Outcome {
    /// The stats regardless of how the run ended.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        match self {
            Outcome::Halted(s) | Outcome::OutOfFuel(s) => s,
            Outcome::Crashed { stats, .. } => stats,
        }
    }

    /// Whether the program halted normally.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Halted(_))
    }

    /// The output stream if the run succeeded.
    #[must_use]
    pub fn success_output(&self) -> Option<&[i64]> {
        match self {
            Outcome::Halted(s) => Some(&s.output),
            _ => None,
        }
    }
}

/// The guest machine.
#[derive(Debug)]
pub struct Machine {
    arch: Arch,
    gprs: [i64; 32],
    lr: i64,
    tar: i64,
    cmp: (i64, i64),
    pc: u64,
    mem: Memory,
    bias: u64,
    sp_reg: usize,
    runtime: Option<RuntimeLib>,
    unwind: UnwindTable,
    fini_range: Option<(u64, usize)>,
    fini_queue: Vec<u64>,
    cost: CostModel,
    icache: ICache,
    fuel: u64,
    stats: ExecStats,
    decode_cache: HashMap<u64, (Inst, u8)>,
}

impl Machine {
    /// Load `binary` into a fresh machine.
    ///
    /// # Errors
    ///
    /// [`LoadError`] when rebasing position-dependent code or when the
    /// binary's sections overlap.
    pub fn load(binary: &Binary, options: &LoadOptions) -> Result<Machine, LoadError> {
        if options.bias != 0 && !binary.meta.pie {
            return Err(LoadError::BiasOnNonPie);
        }
        binary
            .validate_layout()
            .map_err(|e| LoadError::BadLayout(e.to_string()))?;
        let bias = options.bias;
        let mut mem = Memory::new();
        for sec in binary.sections() {
            let f = sec.flags();
            if !f.alloc || sec.is_empty() {
                continue;
            }
            mem.map(bias + sec.addr(), sec.data().to_vec(), f.write, f.exec);
        }
        // Apply RELATIVE relocations the way the loader would.
        for reloc in binary.runtime_relocations() {
            let value = bias + reloc.addend;
            mem.write_force(bias + reloc.at, &value.to_le_bytes())
                .expect("relocation slot must be mapped");
        }
        // Guest stack, placed far above the image.
        let stack_base = 0x7000_0000u64;
        mem.map(stack_base, vec![0; options.stack_size], true, false);
        let sp = stack_base + options.stack_size as u64 - 64;

        let mut m = Machine {
            arch: binary.arch,
            gprs: [0; 32],
            lr: 0,
            tar: 0,
            cmp: (0, 0),
            pc: bias + binary.entry,
            mem,
            bias,
            sp_reg: binary.arch.sp().0 as usize,
            runtime: options.preload_runtime.then(|| RuntimeLib::from_binary(binary)),
            unwind: binary.unwind.clone(),
            fini_range: binary
                .section(names::FINI_ARRAY)
                .map(|s| (bias + s.addr(), s.len() / 8)),
            fini_queue: Vec::new(),
            cost: options.cost.clone(),
            icache: ICache::new(options.cost.icache),
            fuel: options.fuel,
            stats: ExecStats::default(),
            decode_cache: HashMap::new(),
        };
        m.gprs[m.sp_reg] = sp as i64;
        if binary.kind == BinaryKind::Exec {
            // Sentinel return address for `main`.
            if binary.arch == Arch::X64 {
                m.gprs[m.sp_reg] -= 8;
                let spv = m.gprs[m.sp_reg] as u64;
                m.mem.write(spv, &0u64.to_le_bytes()).expect("stack is writable");
            } else {
                m.lr = 0;
            }
        }
        if let Some(toc) = binary.toc_base {
            m.gprs[2] = (bias + toc) as i64;
        }
        Ok(m)
    }

    /// Current program counter (runtime address).
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Read a GPR.
    #[must_use]
    pub fn gpr(&self, reg: Reg) -> i64 {
        self.gprs[reg.0 as usize]
    }

    /// Set a GPR (test hook).
    pub fn set_gpr(&mut self, reg: Reg, value: i64) {
        self.gprs[reg.0 as usize] = value;
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Guest memory (test hook).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The load bias this machine was created with.
    #[must_use]
    pub fn bias(&self) -> u64 {
        self.bias
    }

    /// Map an additional region into the running machine (dynamic
    /// instrumentation: the injected `.instr`/`.jt_clone`/map
    /// sections).
    ///
    /// # Panics
    ///
    /// Panics when the region overlaps an existing mapping.
    pub fn map_region(&mut self, addr: u64, data: Vec<u8>, writable: bool, executable: bool) {
        self.mem.map(addr, data, writable, executable);
    }

    /// Overwrite bytes in the running image regardless of page
    /// permissions (the dynamic instrumenter's `mprotect`+patch).
    /// Invalidates affected decode-cache entries.
    ///
    /// # Errors
    ///
    /// Returns the faulting address when the range is unmapped.
    pub fn patch_code(&mut self, addr: u64, bytes: &[u8]) -> Result<(), u64> {
        self.mem.write_force(addr, bytes)?;
        // Any cached decode whose instruction could overlap the patch
        // is dropped (instructions are at most 16 bytes).
        let lo = addr.saturating_sub(16);
        let hi = addr + bytes.len() as u64;
        self.decode_cache.retain(|pc, _| *pc < lo || *pc >= hi);
        Ok(())
    }

    /// Redirect the paused program counter (dynamic attach migrates a
    /// paused thread into the relocated code).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Install (or replace) the runtime library's maps — the dynamic
    /// equivalent of `LD_PRELOAD`-ing it at startup.
    pub fn install_runtime(&mut self, runtime: RuntimeLib) {
        self.runtime = Some(runtime);
    }

    /// Run until halt, crash, or fuel exhaustion.
    pub fn run(&mut self) -> Outcome {
        loop {
            if let Some(outcome) = self.step() {
                return outcome;
            }
        }
    }

    /// Execute one instruction; `Some` when the run ended.
    pub fn step(&mut self) -> Option<Outcome> {
        // Pseudo-PCs: normal-exit bookkeeping.
        if self.pc == 0 {
            return Some(self.finish());
        }
        if self.pc == FINI_SENTINEL {
            return match self.fini_queue.pop() {
                Some(next) => {
                    self.enter_fini(next);
                    None
                }
                None => Some(Outcome::Halted(std::mem::take(&mut self.stats))),
            };
        }
        if self.stats.instructions >= self.fuel {
            return Some(Outcome::OutOfFuel(std::mem::take(&mut self.stats)));
        }
        if self.arch.is_fixed_width() && !self.pc.is_multiple_of(4) {
            return Some(self.crash(CrashReason::MisalignedPc { pc: self.pc }));
        }
        let (inst, len) = match self.fetch_decode() {
            Ok(v) => v,
            Err(reason) => return Some(self.crash(reason)),
        };
        self.stats.instructions += 1;
        self.stats.cycles += self.cost.base;
        let misses = self.icache.fetch(self.pc, u64::from(len));
        self.stats.icache_misses += misses;
        self.stats.cycles += misses * self.cost.icache_miss;
        match self.exec(&inst, u64::from(len)) {
            Ok(Flow::Continue) => None,
            Ok(Flow::Halt) => Some(self.finish()),
            Err(reason) => Some(self.crash(reason)),
        }
    }

    fn crash(&mut self, reason: CrashReason) -> Outcome {
        Outcome::Crashed { reason, stats: std::mem::take(&mut self.stats) }
    }

    /// Normal halt: run finalizers, then stop.
    fn finish(&mut self) -> Outcome {
        if self.fini_queue.is_empty() {
            if let Some((addr, count)) = self.fini_range.take() {
                // Read the (possibly rewritten) slots from guest memory.
                let mut targets = Vec::new();
                for i in 0..count {
                    if let Some(v) = self.mem.read_int(addr + 8 * i as u64, 8, false) {
                        targets.push(v as u64);
                    }
                }
                targets.reverse(); // pop() runs them in order
                self.fini_queue = targets;
                if let Some(next) = self.fini_queue.pop() {
                    self.enter_fini(next);
                    // Resume the interpreter loop to run finalizers.
                    self.pc_guard();
                    return match self.run_to_end() {
                        Some(o) => o,
                        None => Outcome::Halted(std::mem::take(&mut self.stats)),
                    };
                }
            }
        }
        Outcome::Halted(std::mem::take(&mut self.stats))
    }

    fn pc_guard(&self) {}

    fn run_to_end(&mut self) -> Option<Outcome> {
        loop {
            if let Some(outcome) = self.step() {
                return Some(outcome);
            }
        }
    }

    fn enter_fini(&mut self, target: u64) {
        if self.arch == Arch::X64 {
            self.gprs[self.sp_reg] -= 8;
            let spv = self.gprs[self.sp_reg] as u64;
            let _ = self.mem.write(spv, &FINI_SENTINEL.to_le_bytes());
        } else {
            self.lr = FINI_SENTINEL as i64;
        }
        self.pc = target;
    }

    fn fetch_decode(&mut self) -> Result<(Inst, u8), CrashReason> {
        if let Some((inst, len)) = self.decode_cache.get(&self.pc) {
            return Ok((inst.clone(), *len));
        }
        let max = self.arch.max_inst_len();
        let bytes = self
            .mem
            .fetch(self.pc, max)
            .ok_or(CrashReason::UnmappedExecution { pc: self.pc })?;
        let (inst, len) =
            decode(bytes, self.arch).map_err(|_| CrashReason::IllegalInstruction { pc: self.pc })?;
        self.decode_cache.insert(self.pc, (inst.clone(), len as u8));
        Ok((inst, len as u8))
    }

    fn ea(&self, addr: &Addr, inst_addr: u64) -> u64 {
        if addr.pc_rel {
            return inst_addr.wrapping_add_signed(addr.disp);
        }
        let mut v = addr.disp;
        if let Some(b) = addr.base {
            v = v.wrapping_add(self.gprs[b.0 as usize]);
        }
        if let Some(i) = addr.index {
            v = v.wrapping_add(self.gprs[i.0 as usize].wrapping_mul(i64::from(addr.scale)));
        }
        v as u64
    }

    fn push(&mut self, value: u64, pc: u64) -> Result<(), CrashReason> {
        self.gprs[self.sp_reg] -= 8;
        let sp = self.gprs[self.sp_reg] as u64;
        self.mem
            .write(sp, &value.to_le_bytes())
            .map_err(|addr| CrashReason::BadMemoryAccess { addr, pc })
    }

    fn pop(&mut self, pc: u64) -> Result<u64, CrashReason> {
        let sp = self.gprs[self.sp_reg] as u64;
        let v = self
            .mem
            .read_int(sp, 8, false)
            .ok_or(CrashReason::BadMemoryAccess { addr: sp, pc })?;
        self.gprs[self.sp_reg] += 8;
        Ok(v as u64)
    }

    /// Transfer to a call target, recording the return address.
    fn do_call(&mut self, target: u64, ret: u64, pc: u64) -> Result<(), CrashReason> {
        if self.arch == Arch::X64 {
            self.push(ret, pc)?;
        } else {
            self.lr = ret as i64;
        }
        self.pc = target;
        self.stats.cycles += self.cost.taken_branch;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, inst: &Inst, len: u64) -> Result<Flow, CrashReason> {
        let pc = self.pc;
        let next = pc + len;
        let g = |m: &Machine, r: Reg| m.gprs[r.0 as usize];
        match inst {
            Inst::Halt => return Ok(Flow::Halt),
            Inst::Nop => self.pc = next,
            Inst::Trap => {
                self.stats.traps += 1;
                self.stats.cycles += self.cost.trap;
                let target = self
                    .runtime
                    .as_ref()
                    .and_then(|rt| rt.trap_map.target(pc - self.bias));
                match target {
                    Some(t) => self.pc = self.bias + t,
                    None => return Err(CrashReason::UnhandledTrap { pc }),
                }
            }
            Inst::MovImm { dst, imm } => {
                self.gprs[dst.0 as usize] = *imm;
                self.pc = next;
            }
            Inst::MovReg { dst, src } => {
                self.gprs[dst.0 as usize] = g(self, *src);
                self.pc = next;
            }
            Inst::Alu { op, dst, a, b } => {
                self.gprs[dst.0 as usize] = op.eval(g(self, *a), g(self, *b));
                self.pc = next;
            }
            Inst::AluImm { op, dst, src, imm } => {
                self.gprs[dst.0 as usize] = op.eval(g(self, *src), i64::from(*imm));
                self.pc = next;
            }
            Inst::OrShl16 { dst, imm } => {
                let v = g(self, *dst);
                self.gprs[dst.0 as usize] = (v << 16) | i64::from(*imm);
                self.pc = next;
            }
            Inst::AddShl16 { dst, src, imm } => {
                self.gprs[dst.0 as usize] = g(self, *src).wrapping_add(i64::from(*imm) << 16);
                self.pc = next;
            }
            Inst::AddImm16 { dst, src, imm } => {
                self.gprs[dst.0 as usize] = g(self, *src).wrapping_add(i64::from(*imm));
                self.pc = next;
            }
            Inst::AdrPage { dst, page_delta } => {
                let page = (pc & !0xFFF).wrapping_add_signed(page_delta << 12);
                self.gprs[dst.0 as usize] = page as i64;
                self.pc = next;
            }
            Inst::Cmp { a, b } => {
                self.cmp = (g(self, *a), g(self, *b));
                self.pc = next;
            }
            Inst::CmpImm { a, imm } => {
                self.cmp = (g(self, *a), i64::from(*imm));
                self.pc = next;
            }
            Inst::Load { dst, addr, width, sign } => {
                let ea = self.ea(addr, pc);
                let v = self
                    .mem
                    .read_int(ea, width.bytes() as usize, *sign)
                    .ok_or(CrashReason::BadMemoryAccess { addr: ea, pc })?;
                self.gprs[dst.0 as usize] = v;
                self.pc = next;
            }
            Inst::Store { src, addr, width } => {
                let ea = self.ea(addr, pc);
                self.mem
                    .write_int(ea, g(self, *src), width.bytes() as usize)
                    .map_err(|addr| CrashReason::BadMemoryAccess { addr, pc })?;
                self.pc = next;
            }
            Inst::Lea { dst, addr } => {
                self.gprs[dst.0 as usize] = self.ea(addr, pc) as i64;
                self.pc = next;
            }
            Inst::Push { src } => {
                let v = g(self, *src) as u64;
                self.push(v, pc)?;
                self.pc = next;
            }
            Inst::Pop { dst } => {
                let v = self.pop(pc)?;
                self.gprs[dst.0 as usize] = v as i64;
                self.pc = next;
            }
            Inst::Jump { offset } => {
                self.pc = pc.wrapping_add_signed(*offset);
                self.stats.cycles += self.cost.taken_branch;
            }
            Inst::JumpCond { cond, offset } => {
                if cond.eval(self.cmp.0, self.cmp.1) {
                    self.pc = pc.wrapping_add_signed(*offset);
                    self.stats.cycles += self.cost.taken_branch;
                } else {
                    self.pc = next;
                }
            }
            Inst::JumpReg { src } => {
                self.pc = g(self, *src) as u64;
                self.stats.cycles += self.cost.indirect_branch;
            }
            Inst::JumpMem { addr } => {
                let ea = self.ea(addr, pc);
                let v = self
                    .mem
                    .read_int(ea, 8, false)
                    .ok_or(CrashReason::BadMemoryAccess { addr: ea, pc })?;
                self.pc = v as u64;
                self.stats.cycles += self.cost.indirect_branch;
            }
            Inst::Call { offset } => {
                self.do_call(pc.wrapping_add_signed(*offset), next, pc)?;
            }
            Inst::CallReg { src } => {
                let t = g(self, *src) as u64;
                self.stats.cycles += self.cost.indirect_branch;
                self.do_call(t, next, pc)?;
            }
            Inst::CallMem { addr } => {
                let ea = self.ea(addr, pc);
                let v = self
                    .mem
                    .read_int(ea, 8, false)
                    .ok_or(CrashReason::BadMemoryAccess { addr: ea, pc })?;
                self.stats.cycles += self.cost.indirect_branch;
                self.do_call(v as u64, next, pc)?;
            }
            Inst::Ret => {
                let ra = if self.arch == Arch::X64 { self.pop(pc)? } else { self.lr as u64 };
                self.pc = ra;
                self.stats.cycles += self.cost.taken_branch;
            }
            Inst::MoveToTar { src } => {
                self.tar = g(self, *src);
                self.pc = next;
            }
            Inst::JumpTar => {
                self.pc = self.tar as u64;
                self.stats.cycles += self.cost.indirect_branch;
            }
            Inst::CallTar => {
                let t = self.tar as u64;
                self.stats.cycles += self.cost.indirect_branch;
                self.do_call(t, next, pc)?;
            }
            Inst::MoveFromLr { dst } => {
                self.gprs[dst.0 as usize] = self.lr;
                self.pc = next;
            }
            Inst::MoveToLr { src } => {
                self.lr = g(self, *src);
                self.pc = next;
            }
            Inst::Sys { op, arg } => {
                let v = g(self, *arg);
                match op {
                    SysOp::Out => {
                        self.stats.output.push(v);
                        self.pc = next;
                    }
                    SysOp::Abort => return Err(CrashReason::GuestAbort { code: v }),
                    SysOp::Throw => {
                        self.stats.throws += 1;
                        self.unwind_throw(v)?;
                    }
                    SysOp::RaTranslate => {
                        let slot = v as u64;
                        let cur = self
                            .mem
                            .read_int(slot, 8, false)
                            .ok_or(CrashReason::BadMemoryAccess { addr: slot, pc })?
                            as u64;
                        if let Some(rt) = &self.runtime {
                            self.stats.ra_translations += 1;
                            self.stats.cycles += self.cost.ra_translate;
                            if let Some(orig) = rt.ra_map.translate(cur.wrapping_sub(self.bias)) {
                                let fixed = self.bias + orig;
                                self.mem
                                    .write(slot, &fixed.to_le_bytes())
                                    .map_err(|addr| CrashReason::BadMemoryAccess { addr, pc })?;
                            }
                        }
                        self.pc = next;
                    }
                }
            }
        }
        Ok(Flow::Continue)
    }

    /// C++-style exception dispatch: walk frames using the *original*
    /// unwind table, translating each resume address through the RA map
    /// when the runtime library is loaded (§6.1).
    fn unwind_throw(&mut self, exception: i64) -> Result<(), CrashReason> {
        let mut pc_cur = self.pc;
        let mut sp_cur = self.gprs[self.sp_reg] as u64;
        let mut top_frame = true;
        loop {
            self.stats.unwind_steps += 1;
            self.stats.cycles += self.cost.unwind_step_cost();
            let mut link_pc = pc_cur.wrapping_sub(self.bias);
            if let Some(rt) = &self.runtime {
                self.stats.ra_translations += 1;
                self.stats.cycles += self.cost.ra_translate;
                link_pc = rt.translate_ra(link_pc);
            }
            // Return addresses point one past the call; look up `ra-1`
            // so the recipe and call-site ranges of the *calling*
            // instruction apply (standard unwinder behaviour).
            let lookup_pc = if top_frame { link_pc } else { link_pc - 1 };
            let entry = self
                .unwind
                .lookup(lookup_pc)
                .ok_or(CrashReason::UnwindFailure { pc: pc_cur })?
                .clone();
            if let Some(lp) = entry.landing_pad_for(lookup_pc) {
                // Resume in the catch frame. The landing pad is an
                // *original-code* address; in a rewritten binary a
                // trampoline there bounces into `.instr`.
                self.pc = self.bias + lp;
                self.gprs[self.sp_reg] = sp_cur as i64;
                self.gprs[RET_REG] = exception;
                return Ok(());
            }
            let ra = match entry.ra {
                RaRule::LinkRegister => {
                    if top_frame {
                        self.lr as u64
                    } else {
                        // A leaf frame cannot be mid-stack.
                        return Err(CrashReason::UnwindFailure { pc: pc_cur });
                    }
                }
                RaRule::StackSlot { offset } => {
                    let slot = sp_cur.wrapping_add_signed(offset);
                    self.mem
                        .read_int(slot, 8, false)
                        .ok_or(CrashReason::BadMemoryAccess { addr: slot, pc: pc_cur })?
                        as u64
                }
            };
            if ra == 0 || ra == FINI_SENTINEL {
                return Err(CrashReason::UncaughtException);
            }
            sp_cur += entry.frame_size + if self.arch == Arch::X64 { 8 } else { 0 };
            pc_cur = ra;
            top_frame = false;
        }
    }
}

enum Flow {
    Continue,
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_asm::{epilogue, prologue, BinaryBuilder, FuncDef, Item, UnwindSpec};
    use icfgp_isa::{AluOp, Cond};
    use icfgp_obj::Language;

    fn run_ok(bin: &Binary) -> ExecStats {
        match crate::run(bin, &LoadOptions::default()) {
            Outcome::Halted(stats) => stats,
            other => panic!("expected halt, got {other:?}"),
        }
    }

    /// fib(10) computed with a loop, on every architecture.
    #[test]
    fn loop_program_runs_everywhere() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            b.add_function(FuncDef::new(
                "main",
                Language::C,
                vec![
                    Item::I(Inst::MovImm { dst: Reg(8), imm: 0 }),
                    Item::I(Inst::MovImm { dst: Reg(9), imm: 1 }),
                    Item::I(Inst::MovImm { dst: Reg(10), imm: 10 }),
                    Item::Label("loop".into()),
                    Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(11), a: Reg(8), b: Reg(9) }),
                    Item::I(Inst::MovReg { dst: Reg(8), src: Reg(9) }),
                    Item::I(Inst::MovReg { dst: Reg(9), src: Reg(11) }),
                    Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(10), src: Reg(10), imm: 1 }),
                    Item::I(Inst::CmpImm { a: Reg(10), imm: 0 }),
                    Item::JccL(Cond::Gt, "loop".into()),
                    Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
                    Item::I(Inst::Halt),
                ],
            ));
            b.set_entry("main");
            let bin = b.build().unwrap();
            let stats = run_ok(&bin);
            assert_eq!(stats.output, vec![55], "fib(10) on {arch}");
            assert!(stats.instructions > 50);
        }
    }

    /// Calls and returns across all three calling conventions.
    #[test]
    fn call_ret_roundtrip() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            let mut main_items = prologue(arch, 16, false);
            main_items.push(Item::I(Inst::MovImm { dst: Reg(8), imm: 20 }));
            main_items.push(Item::CallF("double".into()));
            main_items.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
            main_items.push(Item::I(Inst::Halt));
            b.add_function(FuncDef::new("main", Language::C, main_items));
            let mut dbl = vec![Item::I(Inst::Alu {
                op: AluOp::Add,
                dst: Reg(8),
                a: Reg(8),
                b: Reg(8),
            })];
            dbl.extend(epilogue(arch, 0, true));
            b.add_function(FuncDef::new("double", Language::C, dbl));
            b.set_entry("main");
            let bin = b.build().unwrap();
            assert_eq!(run_ok(&bin).output, vec![40], "on {arch}");
        }
    }

    /// Indirect calls through a function-pointer slot in `.data`,
    /// with PIE relocation applied at a non-zero load bias.
    #[test]
    fn indirect_call_through_relocated_pointer_with_bias() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            b.pie(true);
            let mut main_items = prologue(arch, 16, false);
            main_items.push(Item::LoadFrom {
                dst: Reg(9),
                target: icfgp_asm::RefTarget::Data("fp".into()),
                offset: 0,
                width: icfgp_isa::Width::W8,
                sign: false,
                tmp: Reg(10),
            });
            match arch {
                Arch::Ppc64le => {
                    main_items.push(Item::I(Inst::MoveToTar { src: Reg(9) }));
                    main_items.push(Item::I(Inst::CallTar));
                }
                _ => main_items.push(Item::I(Inst::CallReg { src: Reg(9) })),
            }
            main_items.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
            main_items.push(Item::I(Inst::Halt));
            b.add_function(FuncDef::new("main", Language::C, main_items));
            let mut f = vec![Item::I(Inst::MovImm { dst: Reg(8), imm: 99 })];
            f.extend(epilogue(arch, 0, true));
            b.add_function(FuncDef::new("target", Language::C, f));
            b.push_data(
                Some("fp"),
                icfgp_asm::DataItem::Addr {
                    target: icfgp_asm::RefTarget::Func("target".into()),
                    delta: 0,
                },
            );
            b.set_entry("main");
            let bin = b.build().unwrap();
            let opts = LoadOptions { bias: 0x30_0000, ..LoadOptions::default() };
            match crate::run(&bin, &opts) {
                Outcome::Halted(stats) => assert_eq!(stats.output, vec![99], "on {arch}"),
                other => panic!("{arch}: {other:?}"),
            }
        }
    }

    /// A thrown exception reaches the catch landing pad two frames up.
    #[test]
    fn exception_unwinds_to_landing_pad() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            // main: calls catcher, prints its result.
            let mut main_items = prologue(arch, 32, false);
            main_items.push(Item::CallF("catcher".into()));
            main_items.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
            main_items.extend(epilogue(arch, 32, false));
            main_items.pop(); // drop ret
            main_items.push(Item::I(Inst::Halt));
            b.add_function(FuncDef::new("main", Language::C, main_items));
            // catcher: try { thrower() } catch(e) { return e + 1 }
            let mut c = prologue(arch, 32, false);
            c.push(Item::Label("try_start".into()));
            c.push(Item::CallF("thrower".into()));
            c.push(Item::Label("try_end".into()));
            // Normal path: return 0 (not taken).
            c.push(Item::I(Inst::MovImm { dst: Reg(8), imm: 0 }));
            c.extend(epilogue(arch, 32, false));
            c.push(Item::Label("landing".into()));
            c.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 1 }));
            c.extend(epilogue(arch, 32, false));
            b.add_function(
                FuncDef::new("catcher", Language::Cpp, c).with_unwind(UnwindSpec {
                    frame_size: 32,
                    ra: None,
                    call_sites: vec![("try_start".into(), "try_end".into(), "landing".into())],
                }),
            );
            // thrower: deep frame that throws 41.
            let mut t = prologue(arch, 48, false);
            t.push(Item::I(Inst::MovImm { dst: Reg(9), imm: 41 }));
            t.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(9) }));
            t.extend(epilogue(arch, 48, false));
            b.add_function(
                FuncDef::new("thrower", Language::Cpp, t)
                    .with_unwind(UnwindSpec { frame_size: 48, ra: None, call_sites: vec![] }),
            );
            b.set_entry("main");
            let bin = b.build().unwrap();
            let stats = run_ok(&bin);
            assert_eq!(stats.output, vec![42], "catch got 41, +1, on {arch}");
            assert_eq!(stats.throws, 1);
            assert!(stats.unwind_steps >= 2, "thrower frame + catcher frame");
        }
    }

    /// Without an unwind entry for the thrower, unwinding fails — the
    /// mechanism that breaks rewritten binaries lacking RA translation.
    #[test]
    fn unwind_fails_without_recipe() {
        let arch = Arch::X64;
        let mut b = BinaryBuilder::new(arch);
        let mut t = prologue(arch, 16, false);
        t.push(Item::I(Inst::MovImm { dst: Reg(9), imm: 7 }));
        t.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(9) }));
        t.extend(epilogue(arch, 16, false));
        b.add_function(FuncDef::new("main", Language::Cpp, t)); // no unwind spec
        b.set_entry("main");
        let bin = b.build().unwrap();
        match crate::run(&bin, &LoadOptions::default()) {
            Outcome::Crashed { reason: CrashReason::UnwindFailure { .. }, .. } => {}
            other => panic!("expected unwind failure, got {other:?}"),
        }
    }

    /// An uncaught exception that unwinds past main's sentinel.
    #[test]
    fn uncaught_exception_reported() {
        let arch = Arch::Aarch64;
        let mut b = BinaryBuilder::new(arch);
        let mut t = prologue(arch, 16, false);
        t.push(Item::I(Inst::MovImm { dst: Reg(9), imm: 7 }));
        t.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(9) }));
        t.extend(epilogue(arch, 16, false));
        b.add_function(
            FuncDef::new("main", Language::Cpp, t)
                .with_unwind(UnwindSpec { frame_size: 16, ra: None, call_sites: vec![] }),
        );
        b.set_entry("main");
        let bin = b.build().unwrap();
        match crate::run(&bin, &LoadOptions::default()) {
            Outcome::Crashed { reason: CrashReason::UncaughtException, .. } => {}
            other => panic!("expected uncaught exception, got {other:?}"),
        }
    }

    /// Finalizers registered in `.fini_array` run after `halt`.
    #[test]
    fn finalizers_run_after_halt() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            b.add_function(FuncDef::new(
                "main",
                Language::C,
                vec![
                    Item::I(Inst::MovImm { dst: Reg(8), imm: 1 }),
                    Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
                    Item::I(Inst::Halt),
                ],
            ));
            let mut d = vec![
                Item::I(Inst::MovImm { dst: Reg(8), imm: 2 }),
                Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
            ];
            d.extend(epilogue(arch, 0, true));
            b.add_function(FuncDef::new("dtor", Language::C, d));
            b.add_fini("dtor");
            b.set_entry("main");
            let bin = b.build().unwrap();
            assert_eq!(run_ok(&bin).output, vec![1, 2], "on {arch}");
        }
    }

    /// A bare trap crashes without the runtime library; with a trap map
    /// and the preload flag it transfers control.
    #[test]
    fn trap_dispatch_through_trap_map() {
        use icfgp_obj::{Section, SectionFlags, SectionKind, TrapMap};
        let arch = Arch::X64;
        let mut b = BinaryBuilder::new(arch);
        b.add_function(FuncDef::new(
            "main",
            Language::C,
            vec![Item::I(Inst::Trap), Item::I(Inst::Halt)],
        ));
        b.add_function(FuncDef::new(
            "island",
            Language::C,
            vec![
                Item::I(Inst::MovImm { dst: Reg(8), imm: 5 }),
                Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
                Item::I(Inst::Halt),
            ],
        ));
        b.set_entry("main");
        let mut bin = b.build().unwrap();
        // Without the runtime: crash.
        match crate::run(&bin, &LoadOptions::default()) {
            Outcome::Crashed { reason: CrashReason::UnhandledTrap { .. }, .. } => {}
            other => panic!("expected trap crash, got {other:?}"),
        }
        // Add a trap map redirecting the trap to `island`.
        let mut tm = TrapMap::new();
        tm.insert(bin.entry, bin.function_named("island").unwrap().addr);
        let addr = bin.address_space_end() + 0x1000;
        bin.add_section(Section::new(
            names::TRAP_MAP,
            addr,
            tm.to_bytes(),
            SectionFlags::ro(),
            SectionKind::RuntimeMap,
        ));
        let opts = LoadOptions { preload_runtime: true, ..LoadOptions::default() };
        match crate::run(&bin, &opts) {
            Outcome::Halted(stats) => {
                assert_eq!(stats.output, vec![5]);
                assert_eq!(stats.traps, 1);
                assert!(stats.cycles >= CostModel::default().trap);
            }
            other => panic!("{other:?}"),
        }
    }

    /// Executing poison bytes is an illegal-instruction crash.
    #[test]
    fn poison_bytes_crash() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("main", Language::C, vec![Item::I(Inst::Halt)]));
        b.set_entry("main");
        let mut bin = b.build().unwrap();
        let entry = bin.entry;
        bin.section_mut(".text").unwrap().write(entry, &[0xFF]);
        match crate::run(&bin, &LoadOptions::default()) {
            Outcome::Crashed { reason: CrashReason::IllegalInstruction { .. }, .. } => {}
            other => panic!("expected illegal instruction, got {other:?}"),
        }
    }

    /// Fuel exhaustion is reported, not hung.
    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new(
            "main",
            Language::C,
            vec![Item::Label("x".into()), Item::JmpL("x".into())],
        ));
        b.set_entry("main");
        let bin = b.build().unwrap();
        let opts = LoadOptions { fuel: 10_000, ..LoadOptions::default() };
        assert!(matches!(crate::run(&bin, &opts), Outcome::OutOfFuel(_)));
    }

    /// Rebasing a non-PIE binary is refused.
    #[test]
    fn bias_on_non_pie_rejected() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("main", Language::C, vec![Item::I(Inst::Halt)]));
        b.set_entry("main");
        let bin = b.build().unwrap();
        let opts = LoadOptions { bias: 0x1000, ..LoadOptions::default() };
        assert!(matches!(Machine::load(&bin, &opts), Err(LoadError::BiasOnNonPie)));
    }
}

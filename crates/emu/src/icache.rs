//! Instruction-cache simulation: set-associative, LRU.

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ICacheConfig {
    /// Total capacity in bytes.
    pub size: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Associativity.
    pub ways: u32,
}

impl Default for ICacheConfig {
    fn default() -> ICacheConfig {
        ICacheConfig { size: 32 * 1024, line: 64, ways: 8 }
    }
}

/// A set-associative LRU instruction cache.
///
/// Fetches are tracked per line; an instruction that straddles a line
/// boundary touches both lines. The rewriter's overhead story depends
/// on this: `dir`-mode binaries bounce between `.text` trampolines and
/// `.instr` code, doubling the hot footprint.
#[derive(Debug, Clone)]
pub struct ICache {
    cfg: ICacheConfig,
    line_shift: u32,
    sets: usize,
    /// `tags[set * ways + way]` = line address, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
}

impl ICache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate (zero sizes, line not a
    /// power of two, or ways not dividing the capacity).
    #[must_use]
    pub fn new(cfg: ICacheConfig) -> ICache {
        assert!(cfg.line.is_power_of_two() && cfg.line > 0, "line must be a power of two");
        assert!(cfg.ways > 0 && cfg.size > 0, "non-zero geometry");
        let lines = cfg.size / cfg.line;
        assert!(lines.is_multiple_of(cfg.ways), "ways must divide line count");
        let sets = (lines / cfg.ways) as usize;
        ICache {
            cfg,
            line_shift: cfg.line.trailing_zeros(),
            sets,
            tags: vec![u64::MAX; sets * cfg.ways as usize],
            stamps: vec![0; sets * cfg.ways as usize],
            tick: 0,
        }
    }

    /// Geometry.
    #[must_use]
    pub fn config(&self) -> ICacheConfig {
        self.cfg
    }

    /// Access one line; returns `true` on a miss.
    fn touch_line(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let set = (line_addr as usize) % self.sets;
        let ways = self.cfg.ways as usize;
        let base = set * ways;
        let slots = &mut self.tags[base..base + ways];
        if let Some(w) = slots.iter().position(|t| *t == line_addr) {
            self.stamps[base + w] = self.tick;
            return false;
        }
        // Miss: evict LRU.
        let victim = (0..ways)
            .min_by_key(|w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = line_addr;
        self.stamps[base + victim] = self.tick;
        true
    }

    /// Fetch `len` bytes starting at `addr`; returns the number of line
    /// misses (0, 1 or 2).
    pub fn fetch(&mut self, addr: u64, len: u64) -> u64 {
        let first = addr >> self.line_shift;
        let last = (addr + len.saturating_sub(1)) >> self.line_shift;
        let mut misses = u64::from(self.touch_line(first));
        if last != first {
            misses += u64::from(self.touch_line(last));
        }
        misses
    }

    /// Drop all cached lines.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_fetch_hits() {
        let mut c = ICache::new(ICacheConfig::default());
        assert_eq!(c.fetch(0x1000, 4), 1);
        assert_eq!(c.fetch(0x1000, 4), 0);
        assert_eq!(c.fetch(0x1020, 4), 0, "same line");
        assert_eq!(c.fetch(0x1040, 4), 1, "next line");
    }

    #[test]
    fn straddling_fetch_touches_two_lines() {
        let mut c = ICache::new(ICacheConfig::default());
        assert_eq!(c.fetch(0x103E, 4), 2);
        assert_eq!(c.fetch(0x103E, 4), 0);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2-way, 2 sets of 64-byte lines: capacity 256 B.
        let cfg = ICacheConfig { size: 256, line: 64, ways: 2 };
        let mut c = ICache::new(cfg);
        // Lines 0, 2, 4 all map to set 0 (even line addresses).
        assert_eq!(c.fetch(0, 4), 1);
        assert_eq!(c.fetch(128, 4), 1);
        assert_eq!(c.fetch(0, 4), 0, "still resident");
        assert_eq!(c.fetch(256, 4), 1, "evicts line 128 (LRU)");
        assert_eq!(c.fetch(0, 4), 0);
        assert_eq!(c.fetch(128, 4), 1, "was evicted");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = ICacheConfig::default();
        let mut c = ICache::new(cfg);
        let span = u64::from(cfg.size) * 2;
        // First pass: all cold.
        let mut misses = 0;
        for addr in (0..span).step_by(cfg.line as usize) {
            misses += c.fetch(addr, 4);
        }
        assert_eq!(misses, span / u64::from(cfg.line));
        // Second pass over double-capacity set still misses everywhere
        // (LRU + sequential sweep = worst case).
        let mut second = 0;
        for addr in (0..span).step_by(cfg.line as usize) {
            second += c.fetch(addr, 4);
        }
        assert_eq!(second, span / u64::from(cfg.line));
    }

    #[test]
    fn flush_forgets() {
        let mut c = ICache::new(ICacheConfig::default());
        c.fetch(0x1000, 4);
        c.flush();
        assert_eq!(c.fetch(0x1000, 4), 1);
    }
}

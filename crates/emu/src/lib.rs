#![warn(missing_docs)]
//! Deterministic emulator and cycle cost model — the evaluation
//! substrate standing in for the paper's real hardware.
//!
//! The emulator executes [`icfgp_obj::Binary`] images for any of the
//! three architecture models and produces an [`Outcome`]: the observable
//! output stream (the correctness oracle for rewriting) plus
//! [`ExecStats`] under a [`CostModel`] that prices exactly the
//! mechanisms the paper's overhead numbers come from:
//!
//! * an **instruction-cache simulation** (default 32 KiB, 8-way, 64 B
//!   lines) — the `.text`↔`.instr` ping-pong of patched binaries
//!   pollutes it;
//! * **trap-trampoline cost** (signal delivery, default 3000 cycles) —
//!   why trampoline placement analysis matters (§7, Diogenes §9);
//! * **unwind-step and RA-translation cost** — why runtime RA
//!   translation is near-free compared to call-frame unwinding (§6);
//! * taken/indirect branch penalties — why bouncing through
//!   trampolines costs even when the i-cache is warm.
//!
//! The emulator also hosts the model of the paper's **runtime library**
//! (injected via `LD_PRELOAD` in the real system): when
//! [`LoadOptions::preload_runtime`] is set, the `.trap_map` and
//! `.ra_map` sections of a rewritten binary are parsed and
//!
//! * trap instructions listed in the trap map transfer control instead
//!   of crashing, and
//! * the unwinder translates every frame's return address through the
//!   RA map before looking up unwind recipes, and the
//!   [`icfgp_isa::SysOp::RaTranslate`] instruction (emitted into
//!   Go-style `findfunc` instrumentation) rewrites stack slots.
//!
//! # Example
//!
//! ```
//! use icfgp_asm::{BinaryBuilder, FuncDef, Item};
//! use icfgp_isa::{Arch, Inst, Reg, SysOp};
//! use icfgp_obj::Language;
//! use icfgp_emu::{run, LoadOptions, Outcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = BinaryBuilder::new(Arch::Aarch64);
//! b.add_function(FuncDef::new("main", Language::C, vec![
//!     Item::I(Inst::MovImm { dst: Reg(8), imm: 41 }),
//!     Item::I(Inst::AluImm { op: icfgp_isa::AluOp::Add, dst: Reg(8), src: Reg(8), imm: 1 }),
//!     Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
//!     Item::I(Inst::Halt),
//! ]));
//! b.set_entry("main");
//! let bin = b.build()?;
//! match run(&bin, &LoadOptions::default()) {
//!     Outcome::Halted(stats) => assert_eq!(stats.output, vec![42]),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

mod cost;
mod icache;
mod machine;
mod memory;
mod runtime;

pub use cost::{CostModel, ExecStats};
pub use icache::{ICache, ICacheConfig};
pub use machine::{CrashReason, LoadError, LoadOptions, Machine, Outcome};
pub use memory::Memory;
pub use runtime::RuntimeLib;

use icfgp_obj::Binary;

/// Load and run a binary to completion under `options`.
///
/// Convenience wrapper over [`Machine::load`] + [`Machine::run`]; a
/// load failure is reported as a crashed outcome with zero stats.
#[must_use]
pub fn run(binary: &Binary, options: &LoadOptions) -> Outcome {
    match Machine::load(binary, options) {
        Ok(mut m) => m.run(),
        Err(e) => Outcome::Crashed {
            reason: CrashReason::LoadFailed { reason: e.to_string() },
            stats: ExecStats::default(),
        },
    }
}

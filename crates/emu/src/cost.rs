//! The cycle cost model.

use crate::icache::ICacheConfig;
use serde::{Deserialize, Serialize};

/// Cycle prices for the mechanisms binary rewriting perturbs.
///
/// The *shape* of the paper's results (which rewriting mode wins, by
/// roughly what factor) is driven by these mechanisms, not by the exact
/// constants; the defaults are ballpark figures for a modern
/// out-of-order core with OS signal delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Baseline cycles per retired instruction.
    pub base: u64,
    /// Extra cycles for a taken branch (redirect penalty).
    pub taken_branch: u64,
    /// Extra cycles for an indirect branch or call.
    pub indirect_branch: u64,
    /// Extra cycles for an instruction-cache miss.
    pub icache_miss: u64,
    /// Cycles for trap-based trampoline dispatch (signal delivery,
    /// handler lookup, resume).
    pub trap: u64,
    /// Cycles per call-frame unwind step (DWARF recipe lookup plus
    /// register-state update) — intentionally two orders of magnitude
    /// above [`CostModel::ra_translate`], matching §6's argument.
    pub unwind_step: u64,
    /// Cycles per runtime return-address translation (one sorted-map
    /// lookup).
    pub ra_translate: u64,
    /// frdwarf-style "compiled" unwinding (§2.3): the unwind recipes
    /// are compiled to straight-line code, making a frame step about
    /// 10× cheaper than interpreting DWARF. RA translation composes
    /// with it unchanged — unlike DWARF-rewriting approaches, which
    /// have nothing to rewrite here.
    pub compiled_unwinding: bool,
    /// Instruction-cache geometry.
    pub icache: ICacheConfig,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            base: 1,
            taken_branch: 1,
            indirect_branch: 3,
            icache_miss: 30,
            trap: 3000,
            unwind_step: 200,
            ra_translate: 20,
            compiled_unwinding: false,
            icache: ICacheConfig::default(),
        }
    }
}

/// Counters accumulated over one program run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Total model cycles.
    pub cycles: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Trap trampolines taken.
    pub traps: u64,
    /// Unwind steps performed (frames walked).
    pub unwind_steps: u64,
    /// Runtime RA translations performed.
    pub ra_translations: u64,
    /// Exceptions thrown.
    pub throws: u64,
    /// The observable output stream (`Sys Out` values).
    pub output: Vec<i64>,
}

impl CostModel {
    /// The effective per-frame unwind cost under the configured
    /// unwinding technique.
    #[must_use]
    pub fn unwind_step_cost(&self) -> u64 {
        if self.compiled_unwinding {
            (self.unwind_step / 10).max(1)
        } else {
            self.unwind_step
        }
    }
}

impl ExecStats {
    /// Relative slowdown of `self` versus a baseline run
    /// (`0.0` = identical, `0.05` = 5% slower).
    ///
    /// # Panics
    ///
    /// Panics if the baseline recorded zero cycles.
    #[must_use]
    pub fn overhead_vs(&self, baseline: &ExecStats) -> f64 {
        assert!(baseline.cycles > 0, "baseline ran zero cycles");
        self.cycles as f64 / baseline.cycles as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sanely() {
        let c = CostModel::default();
        assert!(c.trap > c.icache_miss);
        assert!(c.unwind_step > c.ra_translate, "RA translation must be cheap vs unwinding");
        assert!(c.icache_miss > c.taken_branch);
    }

    #[test]
    fn overhead_math() {
        let base = ExecStats { cycles: 1000, ..ExecStats::default() };
        let slow = ExecStats { cycles: 1050, ..ExecStats::default() };
        assert!((slow.overhead_vs(&base) - 0.05).abs() < 1e-9);
        assert!((base.overhead_vs(&base)).abs() < 1e-9);
    }
}

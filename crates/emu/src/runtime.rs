//! The model of the paper's runtime library.
//!
//! In the real system a small library is `LD_PRELOAD`-ed into the
//! rewritten binary. It (a) handles trap signals by looking the
//! faulting PC up in a trap map and redirecting to the relocated code,
//! and (b) wraps the unwinder's step function so every frame's return
//! address is translated from `.instr` back to original `.text` before
//! unwind recipes are consulted. Here the library is data: the maps,
//! parsed from the rewritten binary's sections at load time.

use icfgp_obj::{names, Binary, RaMap, TrapMap};

/// Parsed runtime-library state for one loaded binary.
#[derive(Debug, Clone, Default)]
pub struct RuntimeLib {
    /// Trap-trampoline address → relocated target (link-time addresses).
    pub trap_map: TrapMap,
    /// Relocated return address → original return address.
    pub ra_map: RaMap,
}

impl RuntimeLib {
    /// Extract the runtime maps from a rewritten binary's sections.
    ///
    /// Returns an empty library for an unrewritten binary (no
    /// `.trap_map`/`.ra_map` sections), which behaves exactly like not
    /// preloading at all.
    #[must_use]
    pub fn from_binary(binary: &Binary) -> RuntimeLib {
        let trap_map = binary
            .section(names::TRAP_MAP)
            .and_then(|s| TrapMap::from_bytes(s.data()))
            .unwrap_or_default();
        let ra_map = binary
            .section(names::RA_MAP)
            .and_then(|s| RaMap::from_bytes(s.data()))
            .unwrap_or_default();
        RuntimeLib { trap_map, ra_map }
    }

    /// Translate a (link-time) return address through the RA map,
    /// passing unknown addresses through unchanged — the behaviour §6
    /// specifies for unwinding across uninstrumented binaries.
    #[must_use]
    pub fn translate_ra(&self, link_addr: u64) -> u64 {
        self.ra_map.translate(link_addr).unwrap_or(link_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_isa::Arch;
    use icfgp_obj::{Section, SectionFlags, SectionKind};

    #[test]
    fn missing_sections_yield_empty_maps() {
        let bin = Binary::new(Arch::X64);
        let rt = RuntimeLib::from_binary(&bin);
        assert!(rt.trap_map.is_empty());
        assert!(rt.ra_map.is_empty());
        assert_eq!(rt.translate_ra(0x1234), 0x1234);
    }

    #[test]
    fn maps_parse_from_sections() {
        let mut bin = Binary::new(Arch::X64);
        let mut ra = RaMap::new();
        ra.insert(0x9000, 0x1000);
        let mut tm = TrapMap::new();
        tm.insert(0x1004, 0x9004);
        bin.add_section(Section::new(
            names::RA_MAP,
            0x20000,
            ra.to_bytes(),
            SectionFlags::ro(),
            SectionKind::RuntimeMap,
        ));
        bin.add_section(Section::new(
            names::TRAP_MAP,
            0x21000,
            tm.to_bytes(),
            SectionFlags::ro(),
            SectionKind::RuntimeMap,
        ));
        let rt = RuntimeLib::from_binary(&bin);
        assert_eq!(rt.translate_ra(0x9000), 0x1000);
        assert_eq!(rt.translate_ra(0x9001), 0x9001);
        assert_eq!(rt.trap_map.target(0x1004), Some(0x9004));
    }
}

//! The guest address space: a handful of permissioned segments.

/// One mapped region.
#[derive(Debug, Clone)]
struct Segment {
    start: u64,
    data: Vec<u8>,
    writable: bool,
    executable: bool,
}

impl Segment {
    fn end(&self) -> u64 {
        self.start + self.data.len() as u64
    }
}

/// A sparse guest address space.
///
/// Reads/writes are bounds- and permission-checked; out-of-segment
/// access returns `None`, which the machine turns into a crash — this
/// is how wild control flow in a badly rewritten binary is detected.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    segments: Vec<Segment>,
}

impl Memory {
    /// An empty address space.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Map a region. Keeps segments sorted by start address.
    ///
    /// # Panics
    ///
    /// Panics when the new segment overlaps an existing one.
    pub fn map(&mut self, start: u64, data: Vec<u8>, writable: bool, executable: bool) {
        let seg = Segment { start, data, writable, executable };
        for s in &self.segments {
            assert!(
                seg.end() <= s.start || seg.start >= s.end(),
                "segment {:#x}..{:#x} overlaps {:#x}..{:#x}",
                seg.start,
                seg.end(),
                s.start,
                s.end()
            );
        }
        let pos = self.segments.partition_point(|s| s.start < seg.start);
        self.segments.insert(pos, seg);
    }

    fn segment(&self, addr: u64) -> Option<&Segment> {
        let pos = self.segments.partition_point(|s| s.start <= addr);
        let s = self.segments.get(pos.checked_sub(1)?)?;
        (addr < s.end()).then_some(s)
    }

    fn segment_mut(&mut self, addr: u64) -> Option<&mut Segment> {
        let pos = self.segments.partition_point(|s| s.start <= addr);
        let s = self.segments.get_mut(pos.checked_sub(1)?)?;
        (addr < s.end()).then_some(s)
    }

    /// Read `len` bytes; `None` when the range leaves its segment.
    #[must_use]
    pub fn read(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let s = self.segment(addr)?;
        if addr + len as u64 > s.end() {
            return None;
        }
        let off = (addr - s.start) as usize;
        Some(&s.data[off..off + len])
    }

    /// Read bytes for instruction fetch; requires an executable
    /// segment. Returns as many bytes as available up to `len`.
    #[must_use]
    pub fn fetch(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let s = self.segment(addr)?;
        if !s.executable {
            return None;
        }
        let off = (addr - s.start) as usize;
        let avail = s.data.len() - off;
        Some(&s.data[off..off + len.min(avail)])
    }

    /// Read a little-endian value of `width` bytes, sign- or
    /// zero-extended to i64.
    #[must_use]
    pub fn read_int(&self, addr: u64, width: usize, sign: bool) -> Option<i64> {
        let bytes = self.read(addr, width)?;
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(bytes);
        let v = u64::from_le_bytes(buf);
        Some(if sign {
            let shift = 64 - width as u32 * 8;
            ((v as i64) << shift) >> shift
        } else {
            v as i64
        })
    }

    /// Write bytes; `Err(addr)` on an unmapped or read-only range.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), u64> {
        let s = self.segment_mut(addr).ok_or(addr)?;
        if !s.writable || addr + bytes.len() as u64 > s.end() {
            return Err(addr);
        }
        let off = (addr - s.start) as usize;
        s.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Write the low `width` bytes of `value` little-endian.
    pub fn write_int(&mut self, addr: u64, value: i64, width: usize) -> Result<(), u64> {
        self.write(addr, &value.to_le_bytes()[..width])
    }

    /// Write ignoring the segment's write permission — loader-only
    /// (applying relocations to read-only pages, like `ld.so` does
    /// before re-protecting them).
    pub fn write_force(&mut self, addr: u64, bytes: &[u8]) -> Result<(), u64> {
        let s = self.segment_mut(addr).ok_or(addr)?;
        if addr + bytes.len() as u64 > s.end() {
            return Err(addr);
        }
        let off = (addr - s.start) as usize;
        s.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Whether `addr` is inside a writable segment.
    #[must_use]
    pub fn is_writable(&self, addr: u64) -> bool {
        self.segment(addr).is_some_and(|s| s.writable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new();
        m.map(0x1000, vec![0xAA; 256], false, true);
        m.map(0x2000, vec![0; 256], true, false);
        m
    }

    #[test]
    fn read_write_permissions() {
        let mut m = mem();
        assert!(m.read(0x1000, 4).is_some());
        assert_eq!(m.write(0x1000, &[0]), Err(0x1000), "code is read-only");
        assert!(m.write(0x2000, &[1, 2, 3]).is_ok());
        assert_eq!(m.read(0x2000, 3).unwrap(), &[1, 2, 3]);
        assert_eq!(m.write(0x3000, &[0]), Err(0x3000), "unmapped");
    }

    #[test]
    fn fetch_requires_exec() {
        let m = mem();
        assert!(m.fetch(0x1000, 10).is_some());
        assert!(m.fetch(0x2000, 10).is_none(), "data is not executable");
        // Fetch near the segment end is truncated, not rejected.
        assert_eq!(m.fetch(0x10FE, 10).unwrap().len(), 2);
    }

    #[test]
    fn int_roundtrip_signed() {
        let mut m = mem();
        m.write_int(0x2000, -2, 2).unwrap();
        assert_eq!(m.read_int(0x2000, 2, true), Some(-2));
        assert_eq!(m.read_int(0x2000, 2, false), Some(0xFFFE));
        m.write_int(0x2008, i64::MIN, 8).unwrap();
        assert_eq!(m.read_int(0x2008, 8, false), Some(i64::MIN));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_map_panics() {
        let mut m = mem();
        m.map(0x10FF, vec![0; 16], true, false);
    }

    #[test]
    fn cross_segment_read_rejected() {
        let m = mem();
        assert!(m.read(0x10F0, 64).is_none());
    }
}

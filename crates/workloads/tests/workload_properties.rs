//! Workload-level properties: every named workload is deterministic,
//! runnable, and carries the structural features its experiment needs.

use icfgp_emu::{run, LoadOptions, Outcome};
use icfgp_isa::Arch;
use icfgp_obj::Language;
use icfgp_workloads::{
    docker_like, driverlib_like, firefox_like, spec_params, spec_suite, switch_demo, generate,
    SPEC_NAMES,
};

#[test]
fn suite_runs_on_all_architectures() {
    for arch in [Arch::Ppc64le, Arch::Aarch64] {
        for bench in spec_suite(arch, false) {
            match run(&bench.workload.binary, &LoadOptions::default()) {
                Outcome::Halted(s) => {
                    assert!(!s.output.is_empty(), "{arch}/{}", bench.name);
                    assert!(s.instructions > 500, "{arch}/{}: too trivial", bench.name);
                }
                o => panic!("{arch}/{}: {o:?}", bench.name),
            }
        }
    }
}

#[test]
fn pie_suite_runs_at_bias() {
    for bench in spec_suite(Arch::X64, true).into_iter().take(5) {
        let opts = LoadOptions { bias: 0x40_0000, ..LoadOptions::default() };
        assert!(
            run(&bench.workload.binary, &opts).is_success(),
            "{} at bias",
            bench.name
        );
    }
}

#[test]
fn exception_benchmarks_throw() {
    for name in ["620.omnetpp_s", "623.xalancbmk_s"] {
        let w = generate(&spec_params(name, Arch::X64, false));
        match run(&w.binary, &LoadOptions::default()) {
            Outcome::Halted(s) => {
                assert!(s.throws > 0, "{name} must exercise exceptions");
                assert!(s.unwind_steps > 0, "{name}");
            }
            o => panic!("{name}: {o:?}"),
        }
        assert!(w.binary.uses_exceptions(), "{name} carries unwind call sites");
    }
}

#[test]
fn fortran_benchmarks_do_not_use_exceptions() {
    let fortran: Vec<&str> = SPEC_NAMES
        .iter()
        .copied()
        .filter(|n| {
            generate(&spec_params(n, Arch::X64, false))
                .languages
                .contains(&Language::Fortran)
        })
        .collect();
    assert_eq!(fortran.len(), 8, "the paper's Fortran count");
    for name in fortran {
        let w = generate(&spec_params(name, Arch::X64, false));
        assert!(!w.binary.uses_exceptions(), "{name}");
    }
}

#[test]
fn docker_like_structure() {
    let w = docker_like(Arch::X64, 1, 30);
    assert!(w.binary.meta.pie, "Go binaries are PIE");
    assert!(w.binary.meta.has_go_runtime());
    let tab = w.binary.pclntab.as_ref().expect("pclntab present");
    assert!(tab.len() >= 4, "runtime functions covered");
    // The traceback functions are marked for §6.2 instrumentation.
    let marked = w
        .binary
        .functions()
        .filter(|f| f.attrs.is_go_traceback)
        .count();
    assert_eq!(marked, 2, "findfunc + pcvalue");
    // No jump tables anywhere (dir == jt on Go, §8.2).
    let a = icfgp_cfg::analyze(&w.binary, &icfgp_cfg::AnalysisConfig::default());
    assert_eq!(a.funcs.values().map(|f| f.jump_tables.len()).sum::<usize>(), 0);
}

#[test]
fn firefox_like_structure() {
    let w = firefox_like(Arch::X64, 1);
    assert!(w.binary.meta.pie);
    assert!(w.binary.meta.has_symbol_versioning, "what breaks Egalito");
    assert!(w.binary.uses_exceptions());
    assert!(w.binary.functions().count() > 200);
}

#[test]
fn driverlib_density() {
    let (w, targets) = driverlib_like(Arch::X64, 500, 50);
    // Densely packed: no padding between consecutive functions.
    let funcs: Vec<_> = w.binary.functions().collect();
    let padded = funcs.windows(2).filter(|p| p[1].addr > p[0].end()).count();
    assert_eq!(padded, 0, "driver libraries are packed (no scratch padding)");
    assert_eq!(targets.len(), 52, "APIs + sync + main");
}

#[test]
fn switch_demo_covers_every_case() {
    for arch in Arch::ALL {
        let w = switch_demo(arch, false);
        match run(&w.binary, &LoadOptions::default()) {
            Outcome::Halted(s) => {
                // 7 dispatches: cases 0..=4 then two out-of-range.
                assert_eq!(s.output.len(), 7, "{arch}");
                for c in 0..5 {
                    assert!(s.output.contains(&(100 + c)), "{arch}: case {c} ran");
                }
                assert!(s.output.contains(&-1), "{arch}: default ran");
            }
            o => panic!("{arch}: {o:?}"),
        }
    }
}

//! The deterministic program generator.
//!
//! # The generated ABI
//!
//! * arguments/returns in `r8`..`r11`, `r8` is the return value;
//! * scratch registers `r9`..`r13` (never live across calls — callers
//!   spill to their own frame around every call);
//! * `r14`/`r15` are *instrumentation-reserved*: generated code never
//!   touches them, so rewriter-emitted payloads and long-branch
//!   sequences may clobber them freely;
//! * frames are small (≤ 256 bytes) so RISC load/store displacements
//!   always fit.

use icfgp_asm::patterns::{
    emit_indirect_call_via_stack, emit_indirect_tailcall, emit_switch, switch_table_item,
    SwitchHardness, SwitchSpec,
};
use icfgp_asm::{
    epilogue, prologue, BinaryBuilder, DataItem, EntryKind, FuncDef, Item, RefTarget, SectionSizes,
    UnwindSpec,
};
use icfgp_isa::{Addr, AluOp, Arch, Cond, Inst, Reg, SysOp, Width};
use icfgp_obj::{Binary, Language};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which jump-table idiom a switch function uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchFlavor {
    /// The architecture's default idiom (x64: 8-byte absolute in
    /// `.rodata`; ppc64le: 8-byte absolute inline in `.text`; aarch64:
    /// 1-byte scaled inline).
    ArchDefault,
    /// 4-byte table-relative entries in `.rodata` (position
    /// independent; common under `-fPIC`).
    Relative4,
}

/// Generator parameters. Everything is deterministic in `seed`.
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Workload name (becomes part of the report).
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Target architecture.
    pub arch: Arch,
    /// Position independent?
    pub pie: bool,
    /// Source languages to tag functions with (round-robin).
    pub languages: Vec<Language>,
    /// Leaf arithmetic kernels.
    pub compute_funcs: usize,
    /// Inner iterations of each kernel (hotness).
    pub kernel_iters: u32,
    /// Extra straight-line ALU instructions per kernel loop body
    /// (inflates the hot-code footprint for i-cache experiments).
    pub kernel_body: usize,
    /// Switch/jump-table dispatch functions.
    pub switch_funcs: usize,
    /// Cases per switch.
    pub switch_cases: usize,
    /// Dispatches per call of each switch function (interpreter-style
    /// hot dispatch loops; 1 = a single dispatch per call).
    pub switch_inner_iters: u32,
    /// Hardness classes assigned to switches, cycled.
    pub switch_hardness: Vec<SwitchHardness>,
    /// Table idiom.
    pub switch_flavor: SwitchFlavor,
    /// Function-pointer tables (vtable-style indirect call sites).
    pub fnptr_tables: usize,
    /// Methods per table.
    pub fnptr_targets: usize,
    /// Functions that materialise a function pointer, *store it to a
    /// stack slot*, reload it and call through it. The pointer escapes
    /// the definition slice (`FpEvidence::CodeMaterialisation {
    /// escapes: true }`) — the soundness auditor's `ICFGP-A003`
    /// trigger. Requires at least one compute kernel to point at.
    pub fnptr_escapes: usize,
    /// Emit a C++-style try/throw/catch scenario.
    pub exceptions: bool,
    /// Throw on iterations where `arg % 16 == 0` (hot-path exceptions).
    pub exception_rate: bool,
    /// Emit an x64 indirect call through stack memory (the SRBI call
    /// emulation bug trigger, §8.1).
    pub stack_indirect_call: bool,
    /// Tiny 2-byte functions called from the hot loop.
    pub tiny_funcs: usize,
    /// Frameless functions ending in indirect tail calls (the §5.1
    /// gap-heuristic scenario).
    pub tailcall_funcs: usize,
    /// Outer iterations of the main workload loop.
    pub outer_iters: u32,
    /// Retain link-time relocations.
    pub link_time_relocs: bool,
    /// Symbol-versioning metadata flag.
    pub symbol_versioning: bool,
    /// Strip symbol names.
    pub stripped: bool,
    /// Extra synthetic dynamic-linking section bytes.
    pub extra_sections: SectionSizes,
    /// Cold filler functions (never called; inflate text size and
    /// distance).
    pub filler_funcs: usize,
    /// Size class of each filler function, in instructions.
    pub filler_insts: usize,
    /// Fleet-variant knob: 0 generates the pristine binary; a
    /// non-zero value deterministically renames a few filler
    /// functions (same-length names, so the layout is unchanged) and
    /// swaps the positions of a few filler bodies — a near-identical
    /// sibling of the `perturb = 0` binary, as produced by successive
    /// builds in a build farm. Only fillers move, so every other
    /// function keeps its address and bytes.
    pub perturb: u64,
}

impl GenParams {
    /// A small, fast default workload.
    #[must_use]
    pub fn small(name: &str, arch: Arch, seed: u64) -> GenParams {
        GenParams {
            name: name.to_string(),
            seed,
            arch,
            pie: false,
            languages: vec![Language::C],
            compute_funcs: 3,
            kernel_iters: 40,
            kernel_body: 0,
            switch_funcs: 2,
            switch_cases: 6,
            switch_inner_iters: 1,
            switch_hardness: vec![SwitchHardness::Easy],
            switch_flavor: SwitchFlavor::ArchDefault,
            fnptr_tables: 1,
            fnptr_targets: 4,
            fnptr_escapes: 0,
            exceptions: false,
            exception_rate: false,
            stack_indirect_call: false,
            tiny_funcs: 1,
            tailcall_funcs: 1,
            outer_iters: 60,
            link_time_relocs: false,
            symbol_versioning: false,
            stripped: false,
            extra_sections: SectionSizes::default(),
            filler_funcs: 0,
            filler_insts: 64,
            perturb: 0,
        }
    }
}

/// A generated workload: the binary plus metadata the harness uses.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name.
    pub name: String,
    /// The binary.
    pub binary: Binary,
    /// Languages present.
    pub languages: Vec<Language>,
}

const SP_ACC: i64 = 8; // main's accumulator spill slot
const SP_IDX: i64 = 16; // main's loop counter spill slot

/// Generate a workload from `params`.
///
/// # Panics
///
/// Panics if the generated program fails to assemble — that is a bug
/// in the generator, not an input condition.
#[must_use]
pub fn generate(params: &GenParams) -> Workload {
    let arch = params.arch;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut b = BinaryBuilder::new(arch);
    b.pie(params.pie);
    b.link_time_relocs(params.link_time_relocs);
    b.symbol_versioning(params.symbol_versioning);
    b.stripped(params.stripped);
    b.section_sizes(params.extra_sections);
    let lang = |i: usize| params.languages[i % params.languages.len().max(1)];

    // Call sites main will drive: (function name, needs_catch_wrap).
    let mut sites: Vec<String> = Vec::new();

    // ----- compute kernels --------------------------------------------
    for i in 0..params.compute_funcs {
        let name = format!("compute{i}");
        let c1 = rng.gen_range(3i64..60);
        let c2 = rng.gen_range(1i64..6);
        let mut items = vec![
            Item::MovWide { dst: Reg(9), imm: i64::from(params.kernel_iters) },
            Item::Label("k".into()),
            Item::I(Inst::AluImm { op: AluOp::Mul, dst: Reg(8), src: Reg(8), imm: 3 }),
        ];
        items.push(Item::I(Inst::AluImm {
            op: AluOp::Add,
            dst: Reg(8),
            src: Reg(8),
            imm: c1 as i32,
        }));
        items.push(Item::I(Inst::AluImm {
            op: AluOp::Shr,
            dst: Reg(10),
            src: Reg(8),
            imm: c2 as i32,
        }));
        items.push(Item::I(Inst::Alu { op: AluOp::Xor, dst: Reg(8), a: Reg(8), b: Reg(10) }));
        for j in 0..params.kernel_body {
            let r = Reg(10 + (j % 3) as u8);
            items.push(Item::I(Inst::AluImm {
                op: if j % 2 == 0 { AluOp::Add } else { AluOp::Xor },
                dst: r,
                src: r,
                imm: (j % 120) as i32 + 1,
            }));
        }
        items.push(Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(9), src: Reg(9), imm: 1 }));
        items.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
        items.push(Item::JccL(Cond::Gt, "k".into()));
        items.extend(epilogue(arch, 0, true));
        b.add_function(FuncDef::new(&name, lang(i), items));
        sites.push(name);
    }

    // ----- switch dispatchers -------------------------------------------
    for i in 0..params.switch_funcs {
        let name = format!("dispatch{i}");
        let hardness = params.switch_hardness[i % params.switch_hardness.len().max(1)];
        let (entry_width, kind, inline) = match params.switch_flavor {
            SwitchFlavor::Relative4 => (4, EntryKind::Relative, false),
            SwitchFlavor::ArchDefault => match arch {
                Arch::X64 => (8, EntryKind::Absolute, false),
                Arch::Ppc64le => (8, EntryKind::Absolute, true),
                Arch::Aarch64 => (1, EntryKind::RelativeScaled, true),
            },
        };
        // Spilled-index switches need an absolute table (three-register
        // dance); keep the generator honest about that pattern too.
        let (entry_width, kind, inline) = if hardness.spills_index() {
            (8, EntryKind::Absolute, arch != Arch::X64)
        } else {
            (entry_width, kind, inline)
        };
        let cases = params.switch_cases;
        let mask = cases.next_power_of_two() as i32 - 1;
        let mut items = prologue(arch, 32, true);
        // Interpreter-style dispatch loop: r13 counts down, r8 is the
        // evolving "opcode stream" value; each iteration dispatches.
        items.push(Item::MovWide { dst: Reg(13), imm: i64::from(params.switch_inner_iters.max(1)) });
        items.push(Item::Label("interp".into()));
        items.push(Item::I(Inst::MovReg { dst: Reg(12), src: Reg(8) }));
        // idx = arg & mask (out-of-range values hit the default).
        items.push(Item::I(Inst::AluImm { op: AluOp::And, dst: Reg(8), src: Reg(8), imm: mask }));
        let spec = SwitchSpec {
            idx_reg: Reg(8),
            table_name: format!("{name}_jt"),
            case_labels: (0..cases).map(|c| format!("c{c}")).collect(),
            default_label: "def".into(),
            entry_width,
            kind,
            inline,
            hardness,
            spill_slot: 8,
            scratch: (Reg(9), Reg(10)),
            mem_indirect: false,
        };
        emit_switch(&mut items, arch, &spec);
        for c in 0..cases {
            items.push(Item::Label(format!("c{c}")));
            let k = rng.gen_range(1i64..200);
            items.push(Item::I(Inst::AluImm {
                op: AluOp::Add,
                dst: Reg(8),
                src: Reg(8),
                imm: (k + c as i64) as i32,
            }));
            items.push(Item::JmpL("join".into()));
        }
        items.push(Item::Label("def".into()));
        items.push(Item::I(Inst::AluImm { op: AluOp::Xor, dst: Reg(8), src: Reg(8), imm: 0x55 }));
        items.push(Item::Label("join".into()));
        // Fold the pre-dispatch value back in and advance the stream.
        items.push(Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(8), a: Reg(8), b: Reg(12) }));
        items.push(Item::I(Inst::AluImm { op: AluOp::Mul, dst: Reg(8), src: Reg(8), imm: 5 }));
        items.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 3 }));
        items.push(Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(13), src: Reg(13), imm: 1 }));
        items.push(Item::I(Inst::CmpImm { a: Reg(13), imm: 0 }));
        items.push(Item::JccL(Cond::Gt, "interp".into()));
        items.extend(epilogue(arch, 32, true));
        b.add_function(FuncDef::new(&name, lang(i + 1), items));
        if !inline {
            b.push_rodata(Some(&format!("{name}_jt")), switch_table_item(&name, &spec));
            // A string-literal neighbour: the known data boundary that
            // bounds table-end extension (§5.1 Assumption 2).
            b.push_rodata(
                Some(&format!("{name}_str")),
                DataItem::Bytes(format!("{name}-end").into_bytes()),
            );
        }
        // Wrap: dispatch is driven with the raw argument.
        sites.push(name);
    }

    // ----- function-pointer tables -----------------------------------------
    for t in 0..params.fnptr_tables {
        let n = params.fnptr_targets.max(1);
        for m in 0..n {
            let name = format!("method{t}_{m}");
            let k = rng.gen_range(1i64..99);
            let mut items = vec![Item::I(Inst::AluImm {
                op: AluOp::Add,
                dst: Reg(8),
                src: Reg(8),
                imm: (k + m as i64) as i32,
            })];
            items.extend(epilogue(arch, 0, true));
            b.add_function(FuncDef::new(&name, lang(t + m), items));
        }
        let vt_name = format!("vt{t}");
        for m in 0..n {
            b.push_data(
                if m == 0 { Some(vt_name.as_str()) } else { None },
                DataItem::Addr {
                    target: RefTarget::Func(format!("method{t}_{m}")),
                    delta: 0,
                },
            );
        }
        // caller: idx = arg & (n_pow2 - 1); bounded to n by a compare;
        // loads vt[idx] and calls it.
        let name = format!("call_vt{t}");
        let mask = n.next_power_of_two() as i32 - 1;
        let mut items = prologue(arch, 32, false);
        items.push(Item::I(Inst::MovReg { dst: Reg(9), src: Reg(8) }));
        items.push(Item::I(Inst::AluImm { op: AluOp::And, dst: Reg(9), src: Reg(9), imm: mask }));
        items.push(Item::I(Inst::CmpImm { a: Reg(9), imm: n as i32 - 1 }));
        items.push(Item::JccL(Cond::ULe, "ok".into()));
        items.push(Item::I(Inst::MovImm { dst: Reg(9), imm: 0 }));
        items.push(Item::Label("ok".into()));
        // slot address = vt + idx*8
        items.push(Item::LoadAddr { dst: Reg(10), target: RefTarget::Data(format!("vt{t}")), delta: 0 });
        items.push(Item::I(Inst::Load {
            dst: Reg(11),
            addr: Addr::base_index(Reg(10), Reg(9), 8),
            width: Width::W8,
            sign: false,
        }));
        if arch == Arch::Ppc64le {
            items.push(Item::I(Inst::MoveToTar { src: Reg(11) }));
            items.push(Item::I(Inst::CallTar));
        } else {
            items.push(Item::I(Inst::CallReg { src: Reg(11) }));
        }
        items.extend(epilogue(arch, 32, false));
        b.add_function(FuncDef::new(&name, lang(t + 2), items));
        sites.push(name);
    }

    // ----- memory-escaping function pointers --------------------------------
    assert!(
        params.fnptr_escapes == 0 || params.compute_funcs > 0,
        "fnptr_escapes needs a compute kernel to point at"
    );
    for e in 0..params.fnptr_escapes {
        let target = format!("compute{}", e % params.compute_funcs.max(1));
        let name = format!("escape{e}");
        let mut items = prologue(arch, 32, false);
        // Materialise &target, park it in a frame slot, reload and
        // call through it: the pointer's consumers are behind memory,
        // so the definition escapes the analysis slice.
        items.push(Item::LoadAddr {
            dst: Reg(10),
            target: RefTarget::Func(target),
            delta: 0,
        });
        items.push(Item::I(Inst::Store {
            src: Reg(10),
            addr: Addr::base_disp(arch.sp(), 8),
            width: Width::W8,
        }));
        items.push(Item::I(Inst::Load {
            dst: Reg(11),
            addr: Addr::base_disp(arch.sp(), 8),
            width: Width::W8,
            sign: false,
        }));
        if arch == Arch::Ppc64le {
            items.push(Item::I(Inst::MoveToTar { src: Reg(11) }));
            items.push(Item::I(Inst::CallTar));
        } else {
            items.push(Item::I(Inst::CallReg { src: Reg(11) }));
        }
        items.extend(epilogue(arch, 32, false));
        b.add_function(FuncDef::new(&name, lang(e + 3), items));
        sites.push(name);
    }

    // ----- exceptions ----------------------------------------------------------
    if params.exceptions {
        let mut t = prologue(arch, 48, false);
        // Deterministic throw cadence: a global counter, every 16th
        // call throws.
        t.push(Item::LoadFrom {
            dst: Reg(9),
            target: RefTarget::Data("exc_ctr".into()),
            offset: 0,
            width: Width::W8,
            sign: false,
            tmp: Reg(10),
        });
        t.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 1 }));
        t.push(Item::StoreTo {
            src: Reg(9),
            target: RefTarget::Data("exc_ctr".into()),
            offset: 0,
            width: Width::W8,
            tmp: Reg(10),
        });
        t.push(Item::I(Inst::AluImm { op: AluOp::And, dst: Reg(9), src: Reg(9), imm: 15 }));
        t.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
        t.push(Item::JccL(Cond::Ne, "no_throw".into()));
        t.push(Item::I(Inst::Sys { op: SysOp::Throw, arg: Reg(8) }));
        t.push(Item::Label("no_throw".into()));
        t.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 3 }));
        t.extend(epilogue(arch, 48, false));
        b.add_function(
            FuncDef::new("thrower", Language::Cpp, t)
                .with_unwind(UnwindSpec { frame_size: 48, ra: None, call_sites: vec![] }),
        );
        let mut c = prologue(arch, 32, false);
        c.push(Item::Label("try_s".into()));
        c.push(Item::CallF("thrower".into()));
        c.push(Item::Label("try_e".into()));
        c.extend(epilogue(arch, 32, false));
        c.push(Item::Label("landing".into()));
        c.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 1000 }));
        c.extend(epilogue(arch, 32, false));
        b.add_function(FuncDef::new("catcher", Language::Cpp, c).with_unwind(UnwindSpec {
            frame_size: 32,
            ra: None,
            call_sites: vec![("try_s".into(), "try_e".into(), "landing".into())],
        }));
        b.push_data(Some("exc_ctr"), DataItem::Zeros(8));
        sites.push("catcher".to_string());
    }

    // ----- x64 stack-indirect call (the SRBI emulation bug trigger) -------------
    if params.stack_indirect_call {
        let mut items = prologue(arch, 48, false);
        emit_indirect_call_via_stack(&mut items, arch, "si_fp", 24, (Reg(9), Reg(10)));
        items.extend(epilogue(arch, 48, false));
        b.add_function(FuncDef::new("stack_call", lang(3), items));
        let mut t = vec![Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 17 })];
        t.extend(epilogue(arch, 0, true));
        b.add_function(FuncDef::new("si_target", lang(3), t));
        b.push_data(
            Some("si_fp"),
            DataItem::Addr { target: RefTarget::Func("si_target".into()), delta: 0 },
        );
        sites.push("stack_call".to_string());
    }

    // ----- tiny + tail-call functions ------------------------------------------
    for i in 0..params.tiny_funcs {
        let name = format!("tiny{i}");
        let mut items = vec![Item::I(Inst::Nop)];
        items.extend(epilogue(arch, 0, true));
        b.add_function(FuncDef::new(&name, lang(i), items));
        sites.push(name);
    }
    for i in 0..params.tailcall_funcs {
        let name = format!("hop{i}");
        let slot = format!("hop{i}_fp");
        let target = format!("compute{}", i % params.compute_funcs.max(1));
        let mut items = vec![Item::I(Inst::AluImm {
            op: AluOp::Xor,
            dst: Reg(8),
            src: Reg(8),
            imm: 0x11,
        })];
        emit_indirect_tailcall(&mut items, arch, &slot, (Reg(9), Reg(10)));
        b.add_function(FuncDef::new(&name, lang(i + 4), items));
        if params.compute_funcs > 0 {
            b.push_data(
                Some(&slot),
                DataItem::Addr { target: RefTarget::Func(target), delta: 0 },
            );
            sites.push(name);
        }
    }

    // ----- cold filler ------------------------------------------------------------
    // Emission order and names, optionally perturbed: fillers are
    // interchangeable in size (every immediate stays one byte wide on
    // x64), so swapping bodies and renaming with same-length names
    // moves *which* code sits at an address without moving any other
    // function — the near-identical-fleet-sibling scenario.
    let mut filler_order: Vec<usize> = (0..params.filler_funcs).collect();
    let mut filler_renamed: Vec<bool> = vec![false; params.filler_funcs];
    if params.perturb > 0 && params.filler_funcs > 1 {
        let mut prng = SmallRng::seed_from_u64(0x9E37_79B9 ^ params.perturb);
        for _ in 0..2 {
            let a = prng.gen_range(0..params.filler_funcs);
            let b = prng.gen_range(0..params.filler_funcs);
            filler_order.swap(a, b);
        }
        for _ in 0..2 {
            let r = prng.gen_range(0..params.filler_funcs);
            filler_renamed[r] = true;
        }
    }
    for &i in &filler_order {
        let name = if filler_renamed[i] { format!("kold{i}") } else { format!("cold{i}") };
        let mut items = Vec::with_capacity(params.filler_insts + 2);
        for j in 0..params.filler_insts {
            let r = Reg(9 + (j % 4) as u8);
            items.push(Item::I(Inst::AluImm {
                op: AluOp::Add,
                dst: r,
                src: r,
                imm: ((i * 7 + j) % 100) as i32,
            }));
        }
        items.extend(epilogue(arch, 0, true));
        b.add_function(FuncDef::new(&name, lang(i), items));
    }

    // ----- main -------------------------------------------------------------------
    let mut main = prologue(arch, 64, false);
    main.push(Item::MovWide { dst: Reg(8), imm: 0x1234_5678 }); // acc
    main.push(Item::MovWide { dst: Reg(9), imm: i64::from(params.outer_iters) });
    main.push(Item::Label("outer".into()));
    main.push(spill(arch, Reg(9), SP_IDX));
    for site in &sites {
        // arg = acc; acc = f(arg) folded.
        main.push(spill(arch, Reg(8), SP_ACC));
        main.push(Item::CallF(site.clone()));
        main.push(reload(arch, Reg(10), SP_ACC));
        main.push(Item::I(Inst::Alu { op: AluOp::Xor, dst: Reg(8), a: Reg(8), b: Reg(10) }));
        main.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 1 }));
    }
    main.push(reload(arch, Reg(9), SP_IDX));
    main.push(Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(9), src: Reg(9), imm: 1 }));
    main.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
    main.push(Item::JccL(Cond::Gt, "outer".into()));
    main.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
    main.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", lang(0), main));
    b.set_entry("main");

    let binary = b.build().unwrap_or_else(|e| panic!("workload {} failed to build: {e}", params.name));
    Workload { name: params.name.clone(), binary, languages: params.languages.clone() }
}

fn spill(arch: Arch, reg: Reg, slot: i64) -> Item {
    Item::I(Inst::Store { src: reg, addr: Addr::base_disp(arch.sp(), slot), width: Width::W8 })
}

fn reload(arch: Arch, reg: Reg, slot: i64) -> Item {
    Item::I(Inst::Load {
        dst: reg,
        addr: Addr::base_disp(arch.sp(), slot),
        width: Width::W8,
        sign: false,
    })
}


#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_emu::{run, LoadOptions, Outcome};

    #[test]
    fn small_workload_runs_on_every_arch() {
        for arch in Arch::ALL {
            let w = generate(&GenParams::small("t", arch, 7));
            match run(&w.binary, &LoadOptions::default()) {
                Outcome::Halted(stats) => {
                    assert_eq!(stats.output.len(), 1, "{arch}");
                    assert!(stats.instructions > 1000, "{arch}: hot loop ran");
                }
                o => panic!("{arch}: {o:?}"),
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenParams::small("t", Arch::X64, 9));
        let b = generate(&GenParams::small("t", Arch::X64, 9));
        assert_eq!(a.binary, b.binary);
        let c = generate(&GenParams::small("t", Arch::X64, 10));
        assert_ne!(a.binary, c.binary, "different seed, different binary");
    }

    #[test]
    fn exception_workload_throws_and_catches() {
        let mut p = GenParams::small("exc", Arch::X64, 3);
        p.exceptions = true;
        p.outer_iters = 64;
        let w = generate(&p);
        match run(&w.binary, &LoadOptions::default()) {
            Outcome::Halted(stats) => assert!(stats.throws > 0, "some iterations throw"),
            o => panic!("{o:?}"),
        }
    }
}

//! The named evaluation workloads: the SPEC-CPU-2017-like suite, the
//! firefox-like library, and the driver-library for the Diogenes case
//! study.

use crate::gen::{generate, GenParams, SwitchFlavor, Workload};
use icfgp_asm::patterns::SwitchHardness;
use icfgp_asm::{epilogue, prologue, BinaryBuilder, FuncDef, Item, SectionSizes};
use icfgp_isa::{Arch, Cond, Inst, Reg, SysOp};
use icfgp_obj::Language;

/// The 19 SPEC-CPU-2017-like benchmark names (627.cam4_s is excluded,
/// as in the paper).
pub const SPEC_NAMES: [&str; 19] = [
    "600.perlbench_s",
    "602.gcc_s",
    "603.bwaves_s",
    "605.mcf_s",
    "607.cactuBSSN_s",
    "619.lbm_s",
    "620.omnetpp_s",
    "621.wrf_s",
    "623.xalancbmk_s",
    "625.x264_s",
    "628.pop2_s",
    "631.deepsjeng_s",
    "638.imagick_s",
    "641.leela_s",
    "644.nab_s",
    "648.exchange2_s",
    "649.fotonik3d_s",
    "654.roms_s",
    "657.xz_s",
];

/// One benchmark of the suite.
#[derive(Debug, Clone)]
pub struct SpecBench {
    /// Benchmark name.
    pub name: &'static str,
    /// The generated workload.
    pub workload: Workload,
}

/// Languages per benchmark: 8 with Fortran components, 2 with C++
/// exceptions (620.omnetpp, 623.xalancbmk), matching the paper's
/// composition. The name↔feature mapping is synthetic; only the
/// *counts* are load-bearing for the reproduction.
fn languages_of(name: &str) -> Vec<Language> {
    match name {
        "603.bwaves_s" | "607.cactuBSSN_s" | "619.lbm_s" | "621.wrf_s" | "628.pop2_s"
        | "648.exchange2_s" | "649.fotonik3d_s" | "654.roms_s" => {
            vec![Language::Fortran, Language::C]
        }
        "620.omnetpp_s" | "623.xalancbmk_s" => vec![Language::Cpp],
        "631.deepsjeng_s" | "641.leela_s" => vec![Language::Cpp, Language::C],
        _ => vec![Language::C],
    }
}

/// Benchmarks whose jump tables carry the deceptive-bound pattern on
/// this architecture (different compilers emit different code — the
/// knob that reproduces the per-architecture SRBI pass counts of
/// Table 3: 13/15/14 passing).
fn deceptive_on(name: &str, arch: Arch) -> bool {
    match arch {
        Arch::X64 => {
            matches!(name, "602.gcc_s" | "625.x264_s" | "657.xz_s" | "641.leela_s")
        }
        Arch::Ppc64le => matches!(name, "602.gcc_s" | "600.perlbench_s"),
        Arch::Aarch64 => matches!(name, "602.gcc_s" | "657.xz_s" | "638.imagick_s"),
    }
}

/// Benchmarks with one truly unanalyzable dispatch on this
/// architecture (bounds *our* coverage below 100%, as the ppc64le and
/// aarch64 rows of Table 3 show).
fn unanalyzable_on(name: &str, arch: Arch) -> bool {
    match arch {
        Arch::X64 => false,
        Arch::Ppc64le => matches!(name, "607.cactuBSSN_s" | "621.wrf_s"),
        Arch::Aarch64 => matches!(name, "628.pop2_s"),
    }
}

/// Benchmarks whose switches spill their index (SRBI's analysis fails
/// them — coverage loss without wrong rewriting).
fn spilled_on(name: &str) -> bool {
    matches!(
        name,
        "600.perlbench_s" | "605.mcf_s" | "631.deepsjeng_s" | "644.nab_s" | "654.roms_s"
    )
}

/// Generator parameters for one benchmark.
#[must_use]
pub fn spec_params(name: &'static str, arch: Arch, pie: bool) -> GenParams {
    let idx = SPEC_NAMES.iter().position(|n| *n == name).unwrap_or(0);
    let seed = 0xC0FFEE ^ (idx as u64) << 8 ^ u64::from(pie);
    let languages = languages_of(name);
    let exceptions = languages.contains(&Language::Cpp)
        && matches!(name, "620.omnetpp_s" | "623.xalancbmk_s");
    // Special hardness classes go first so they are assigned even to
    // benchmarks with few switches.
    let mut hardness = Vec::new();
    if deceptive_on(name, arch) {
        hardness.push(SwitchHardness::DeceptiveBound);
    }
    if unanalyzable_on(name, arch) {
        hardness.push(SwitchHardness::Unanalyzable);
    }
    if spilled_on(name) {
        hardness.push(SwitchHardness::SpilledIndex);
    }
    hardness.push(SwitchHardness::Easy);
    hardness.push(SwitchHardness::CopiedBound);
    // Rough per-benchmark character: switch-heavy front-ends with
    // interpreter-style dispatch loops, compute Fortran kernels,
    // pointer-heavy codecs.
    let (switches, compute, fnptr, cases, dispatch_iters) = match name {
        "600.perlbench_s" => (6, 2, 2, 12, 40),
        "602.gcc_s" => (8, 2, 2, 16, 40),
        "605.mcf_s" => (2, 4, 1, 6, 4),
        "620.omnetpp_s" | "623.xalancbmk_s" => (4, 3, 3, 8, 10),
        "625.x264_s" | "638.imagick_s" => (3, 5, 3, 8, 4),
        "657.xz_s" => (4, 3, 1, 6, 8),
        "631.deepsjeng_s" | "641.leela_s" => (3, 4, 2, 8, 8),
        _ => (2, 6, 1, 6, 1), // Fortran-ish: compute heavy
    };
    GenParams {
        name: name.to_string(),
        seed,
        arch,
        pie,
        languages,
        compute_funcs: compute,
        kernel_iters: 60,
        kernel_body: 0,
        switch_funcs: switches,
        switch_cases: cases,
        switch_inner_iters: dispatch_iters,
        switch_hardness: hardness,
        switch_flavor: if pie && arch == Arch::X64 {
            SwitchFlavor::Relative4
        } else {
            SwitchFlavor::ArchDefault
        },
        fnptr_tables: fnptr,
        fnptr_targets: 4,
        fnptr_escapes: 0,
        exceptions,
        exception_rate: exceptions,
        stack_indirect_call: exceptions && arch == Arch::X64,
        tiny_funcs: 2,
        tailcall_funcs: 2,
        outer_iters: 50,
        link_time_relocs: false,
        symbol_versioning: false,
        stripped: false,
        extra_sections: SectionSizes { extra_dynsym: 512, extra_dynstr: 256, extra_rela: 256 },
        filler_funcs: 6,
        filler_insts: 48,
        perturb: 0,
    }
}

/// Generate the whole suite for one architecture.
#[must_use]
pub fn spec_suite(arch: Arch, pie: bool) -> Vec<SpecBench> {
    SPEC_NAMES
        .iter()
        .map(|name| SpecBench { name, workload: generate(&spec_params(name, arch, pie)) })
        .collect()
}

/// The firefox-like binary: a large mixed C++/Rust code base with
/// symbol versioning, exceptions, destructors, and a few functions
/// even our analysis cannot resolve (coverage just below 100%, §8.2).
///
/// `scale` multiplies the function counts (1 = a few hundred
/// functions; the experiments use larger values).
#[must_use]
pub fn firefox_like(arch: Arch, scale: usize) -> Workload {
    let scale = scale.max(1);
    let mut p = GenParams {
        name: "firefox-libxul".to_string(),
        seed: 0xF1EF0,
        arch,
        pie: true,
        languages: vec![Language::Cpp, Language::Rust, Language::C],
        compute_funcs: 32 * scale,
        kernel_iters: 30,
        kernel_body: 0,
        switch_funcs: 10 * scale,
        switch_cases: 10,
        switch_inner_iters: 6,
        switch_hardness: vec![
            SwitchHardness::Easy,
            SwitchHardness::CopiedBound,
            SwitchHardness::SpilledIndex,
            SwitchHardness::Easy,
            SwitchHardness::Easy,
            SwitchHardness::Easy,
            SwitchHardness::Easy,
            SwitchHardness::Easy,
            SwitchHardness::Easy,
            // One in ten dispatchers is beyond any analysis: the
            // 99.93% coverage of §8.2.
            SwitchHardness::Unanalyzable,
        ],
        switch_flavor: SwitchFlavor::ArchDefault,
        fnptr_tables: 6 * scale,
        fnptr_targets: 6,
        fnptr_escapes: scale,
        exceptions: true,
        exception_rate: true,
        stack_indirect_call: false,
        tiny_funcs: 8 * scale,
        tailcall_funcs: 4 * scale,
        outer_iters: 40,
        link_time_relocs: false,
        symbol_versioning: true, // what breaks Egalito on libxul.so
        stripped: false,
        extra_sections: SectionSizes {
            extra_dynsym: 16 * 1024,
            extra_dynstr: 8 * 1024,
            extra_rela: 8 * 1024,
        },
        filler_funcs: 120 * scale,
        filler_insts: 96,
        perturb: 0,
    };
    if arch == Arch::X64 && p.switch_flavor == SwitchFlavor::ArchDefault {
        p.switch_flavor = SwitchFlavor::Relative4; // PIE build
    }
    let mut w = generate(&p);
    w.name = "firefox-libxul".to_string();
    w
}

/// The libcuda-like driver library for the Diogenes case study (§9):
/// `total_funcs` mostly-cold stripped functions, `api_funcs` public
/// entry points that call a hidden internal synchronisation function
/// whose body is a dense chain of tiny (sub-branch-size) blocks — the
/// trap-storm trigger for per-block placement.
///
/// Returns the workload plus the entry addresses of the functions
/// Diogenes instruments (the API functions and the sync function).
#[must_use]
pub fn driverlib_like(arch: Arch, total_funcs: usize, api_funcs: usize) -> (Workload, Vec<u64>) {
    let total_funcs = total_funcs.max(api_funcs + 2);
    let mut b = BinaryBuilder::new(arch);
    b.pie(true);
    b.stripped(false); // keep names for the harness
    b.symbol_versioning(true); // breaks Egalito on libcuda.so (§9)
    // Driver libraries are densely packed: no inter-function padding,
    // so a per-block rewriter finds no nearby scratch space.
    b.func_align(arch.inst_align().max(1));

    // The hidden synchronisation function: a spin loop over a dense
    // chain of single-branch blocks (each conditional is its own tiny
    // block).
    let mut sync = prologue(arch, 32, true);
    sync.push(Item::I(Inst::MovImm { dst: Reg(9), imm: 1 })); // single pass
    sync.push(Item::Label("spin".into()));
    sync.push(Item::I(Inst::CmpImm { a: Reg(8), imm: 7 }));
    for i in 0..6 {
        sync.push(Item::Label(format!("b{i}")));
        sync.push(Item::JccL(Cond::Eq, "hit".into()));
    }
    sync.push(Item::Label("hit".into()));
    sync.push(Item::I(Inst::AluImm {
        op: icfgp_isa::AluOp::Add,
        dst: Reg(8),
        src: Reg(8),
        imm: 1,
    }));
    sync.push(Item::I(Inst::AluImm {
        op: icfgp_isa::AluOp::Sub,
        dst: Reg(9),
        src: Reg(9),
        imm: 1,
    }));
    sync.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
    sync.push(Item::JccL(Cond::Gt, "spin".into()));
    sync.extend(epilogue(arch, 32, true));
    b.add_function(FuncDef::new("cu_sync_internal", Language::C, sync));

    // Public API functions: wrappers that poll the sync function in a
    // tight loop (drivers spin on synchronisation). The block falling
    // through each call is a 2-byte jump: under call emulation every
    // *return* from the sync lands there, and a per-block rewriter
    // must squeeze a trampoline into those 2 bytes — the trap-storm
    // mechanism of §9.
    for i in 0..api_funcs {
        let mut f = prologue(arch, 32, false);
        f.push(Item::I(Inst::AluImm {
            op: icfgp_isa::AluOp::Xor,
            dst: Reg(8),
            src: Reg(8),
            imm: (i % 127) as i32,
        }));
        f.push(Item::I(Inst::MovImm { dst: Reg(9), imm: 20 }));
        f.push(Item::Label("poll".into()));
        f.push(Item::I(Inst::Store {
            src: Reg(9),
            addr: icfgp_isa::Addr::base_disp(arch.sp(), 8),
            width: icfgp_isa::Width::W8,
        }));
        f.push(Item::CallF("cu_sync_internal".into()));
        f.push(Item::JmpL("cont0".into()));
        f.push(Item::Label("cont0".into()));
        f.push(Item::CallF("cu_sync_internal".into()));
        f.push(Item::JmpL("cont".into()));
        f.push(Item::Label("cont".into()));
        f.push(Item::I(Inst::Load {
            dst: Reg(9),
            addr: icfgp_isa::Addr::base_disp(arch.sp(), 8),
            width: icfgp_isa::Width::W8,
            sign: false,
        }));
        f.push(Item::I(Inst::AluImm {
            op: icfgp_isa::AluOp::Sub,
            dst: Reg(9),
            src: Reg(9),
            imm: 1,
        }));
        f.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
        f.push(Item::JccL(Cond::Gt, "poll".into()));
        f.extend(epilogue(arch, 32, false));
        b.add_function(FuncDef::new(format!("cuAPI{i}"), Language::C, f));
    }

    // Cold internals.
    for i in 0..total_funcs.saturating_sub(api_funcs + 2) {
        let mut f = Vec::with_capacity(10);
        for j in 0..6 {
            let r = Reg(9 + (j % 4) as u8);
            f.push(Item::I(Inst::AluImm {
                op: icfgp_isa::AluOp::Add,
                dst: r,
                src: r,
                imm: ((i + j) % 100) as i32,
            }));
        }
        f.extend(epilogue(arch, 0, true));
        b.add_function(FuncDef::new(format!("internal{i}"), Language::C, f));
    }

    // Driver main: the Diogenes identification test loop.
    let mut m = prologue(arch, 32, false);
    m.push(Item::MovWide { dst: Reg(9), imm: 60 });
    m.push(Item::Label("loop".into()));
    m.push(Item::I(Inst::Store {
        src: Reg(9),
        addr: icfgp_isa::Addr::base_disp(arch.sp(), 8),
        width: icfgp_isa::Width::W8,
    }));
    for i in 0..4usize {
        m.push(Item::CallF(format!("cuAPI{}", i % api_funcs.max(1))));
    }
    m.push(Item::I(Inst::Load {
        dst: Reg(9),
        addr: icfgp_isa::Addr::base_disp(arch.sp(), 8),
        width: icfgp_isa::Width::W8,
        sign: false,
    }));
    m.push(Item::I(Inst::AluImm {
        op: icfgp_isa::AluOp::Sub,
        dst: Reg(9),
        src: Reg(9),
        imm: 1,
    }));
    m.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
    m.push(Item::JccL(Cond::Gt, "loop".into()));
    m.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
    m.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", Language::C, m));
    b.set_entry("main");

    let binary = b.build().unwrap_or_else(|e| panic!("driverlib failed to build: {e}"));
    let mut targets: Vec<u64> = binary
        .functions()
        .filter(|s| s.name.starts_with("cuAPI") || s.name == "cu_sync_internal" || s.name == "main")
        .map(|s| s.addr)
        .collect();
    targets.sort_unstable();
    let w = Workload {
        name: "libcuda-like".to_string(),
        binary,
        languages: vec![Language::C, Language::Cpp],
    };
    (w, targets)
}

/// A small demonstration binary with one easy switch whose `main`
/// sweeps *every* table index (plus out-of-range ones). Used by the
/// Figure 2 experiment and the examples: every table entry is
/// exercised, so under-approximated edges are guaranteed to be hit.
#[must_use]
pub fn switch_demo(arch: Arch, pie: bool) -> Workload {
    use icfgp_asm::patterns::{emit_switch, switch_table_item, SwitchSpec};
    use icfgp_asm::{DataItem, EntryKind};
    use icfgp_isa::{Addr, AluOp, Width};

    let (width, kind, inline) = match arch {
        Arch::X64 => (8, EntryKind::Absolute, false),
        Arch::Ppc64le => (8, EntryKind::Absolute, true),
        Arch::Aarch64 => (1, EntryKind::RelativeScaled, true),
    };
    let (width, kind) = if pie && !inline { (8, EntryKind::Absolute) } else { (width, kind) };
    let mut b = BinaryBuilder::new(arch);
    b.pie(pie);
    let cases = 5usize;
    let mut items = prologue(arch, 32, true);
    let spec = SwitchSpec {
        idx_reg: Reg(8),
        table_name: "demo_jt".into(),
        case_labels: (0..cases).map(|i| format!("case{i}")).collect(),
        default_label: "default".into(),
        entry_width: width,
        kind,
        inline,
        hardness: SwitchHardness::Easy,
        spill_slot: 8,
        scratch: (Reg(9), Reg(10)),
        mem_indirect: false,
    };
    emit_switch(&mut items, arch, &spec);
    for i in 0..cases {
        items.push(Item::Label(format!("case{i}")));
        items.push(Item::I(Inst::MovImm { dst: Reg(8), imm: 100 + i as i64 }));
        items.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
        items.push(Item::JmpL("end".into()));
    }
    items.push(Item::Label("default".into()));
    items.push(Item::I(Inst::MovImm { dst: Reg(8), imm: -1 }));
    items.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
    items.push(Item::Label("end".into()));
    items.extend(epilogue(arch, 32, true));
    b.add_function(FuncDef::new("dispatch", Language::C, items));
    if !inline {
        b.push_rodata(Some("demo_jt"), switch_table_item("dispatch", &spec));
        b.push_rodata(Some("demo_jt_end"), DataItem::Zeros(16));
    }
    let mut main = prologue(arch, 32, false);
    main.push(Item::I(Inst::MovImm { dst: Reg(9), imm: 0 }));
    main.push(Item::Label("loop".into()));
    main.push(Item::I(Inst::Store {
        src: Reg(9),
        addr: Addr::base_disp(arch.sp(), 8),
        width: Width::W8,
    }));
    main.push(Item::I(Inst::MovReg { dst: Reg(8), src: Reg(9) }));
    main.push(Item::CallF("dispatch".into()));
    main.push(Item::I(Inst::Load {
        dst: Reg(9),
        addr: Addr::base_disp(arch.sp(), 8),
        width: Width::W8,
        sign: false,
    }));
    main.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 1 }));
    main.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 7 }));
    main.push(Item::JccL(Cond::Lt, "loop".into()));
    main.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", Language::C, main));
    b.set_entry("main");
    let binary = b.build().unwrap_or_else(|e| panic!("switch_demo failed to build: {e}"));
    Workload { name: "switch-demo".into(), binary, languages: vec![Language::C] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_emu::{run, LoadOptions, Outcome};

    #[test]
    fn spec_names_count_and_composition() {
        assert_eq!(SPEC_NAMES.len(), 19);
        let fortran = SPEC_NAMES.iter().filter(|n| {
            languages_of(n).contains(&Language::Fortran)
        });
        assert_eq!(fortran.count(), 8, "8 Fortran-containing benchmarks");
        let exc = SPEC_NAMES
            .iter()
            .filter(|n| matches!(**n, "620.omnetpp_s" | "623.xalancbmk_s"))
            .count();
        assert_eq!(exc, 2);
    }

    #[test]
    fn every_spec_bench_runs_on_x64() {
        for bench in spec_suite(Arch::X64, false) {
            match run(&bench.workload.binary, &LoadOptions::default()) {
                Outcome::Halted(stats) => {
                    assert!(!stats.output.is_empty(), "{}", bench.name);
                }
                o => panic!("{}: {o:?}", bench.name),
            }
        }
    }

    #[test]
    fn firefox_like_runs() {
        let w = firefox_like(Arch::X64, 1);
        assert!(w.binary.meta.has_symbol_versioning);
        assert!(w.binary.meta.has_exceptions());
        assert!(w.binary.functions().count() > 200);
        match run(&w.binary, &LoadOptions::default()) {
            Outcome::Halted(stats) => assert!(!stats.output.is_empty()),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn driverlib_shape_and_run() {
        let (w, targets) = driverlib_like(Arch::X64, 400, 30);
        assert_eq!(w.binary.functions().count(), 400);
        assert_eq!(targets.len(), 32, "30 APIs + sync + main");
        match run(&w.binary, &LoadOptions::default()) {
            Outcome::Halted(stats) => assert_eq!(stats.output.len(), 1),
            o => panic!("{o:?}"),
        }
    }
}

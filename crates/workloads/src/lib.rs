#![warn(missing_docs)]
//! Seeded synthetic workloads: the evaluation substrate's "SPEC CPU
//! 2017", "Firefox", "Docker" and "libcuda" stand-ins.
//!
//! Every workload is produced by the deterministic generator in
//! [`gen`], which emits exactly the compiler constructs the paper's
//! analyses target — per-architecture jump-table idioms (including
//! ppc64le in-code tables and aarch64 compact tables), function-pointer
//! tables, C++-style exception scenarios, frameless indirect tail
//! calls, spilled switch indices, tiny functions — plus a `main` that
//! drives a hot loop over them and emits an output checksum, which is
//! the correctness oracle for rewriting.
//!
//! * [`spec_suite`] — the 19 SPEC-CPU-2017-like benchmarks (8 with
//!   Fortran components, 2 with C++ exceptions, per the paper);
//! * [`firefox_like`] — a large shared-library-style binary with mixed
//!   C++/Rust features and symbol versioning;
//! * [`docker_like`] — a Go-style PIE with `.pclntab`, an in-binary
//!   traceback runtime (`findfunc`/`pcvalue`), GC safepoints and the
//!   `&goexit + 1` pattern;
//! * [`driverlib_like`] — a stripped many-function library with a hot
//!   internal synchronisation function made of tiny blocks (the
//!   Diogenes case study).

pub mod gen;
mod gobin;
mod named;

pub use gen::{generate, GenParams, SwitchFlavor, Workload};
pub use gobin::docker_like;
pub use named::{driverlib_like, firefox_like, spec_params, spec_suite, switch_demo, SpecBench, SPEC_NAMES};

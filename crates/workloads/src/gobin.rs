//! The Go-style binary (`docker`-like): a PIE carrying its own stack
//! unwinder.
//!
//! Structure (all "Go" functions share a fixed frame size so the
//! traceback walker can step):
//!
//! * `go_main → go_worker1 → go_worker2 → gc_poll → go_traceback`;
//! * `go_traceback` walks its own call stack: for every frame it calls
//!   `go_findfunc(pc)` (panics via `Sys::Abort` on a miss — Go's
//!   "unknown return pc") and `go_pcvalue(pc)` (frame size), folding
//!   the function ids into an *observable* checksum;
//! * `go_findfunc`/`go_pcvalue` linearly scan the `.pclntab` image in
//!   memory — they are the functions §6.2 instruments with RA
//!   translation (marked [`icfgp_obj::SymbolAttrs::is_go_traceback`]);
//! * the `&goexit + 1` function-pointer pattern of Listing 1 is
//!   included verbatim;
//! * no jump tables anywhere — Go's compiler doesn't emit them, which
//!   is why `dir` and `jt` behave identically on this binary (§8.2).

use crate::gen::Workload;
use icfgp_asm::{epilogue, prologue, BinaryBuilder, DataItem, FuncDef, Item, RefTarget};
use icfgp_isa::{Addr, AluOp, Arch, Cond, Inst, Reg, SysOp, Width};
use icfgp_obj::{Language, SymbolAttrs};

/// Shared Go frame size.
const F: i64 = 64;

fn store(arch: Arch, reg: Reg, slot: i64) -> Item {
    Item::I(Inst::Store { src: reg, addr: Addr::base_disp(arch.sp(), slot), width: Width::W8 })
}

fn load(arch: Arch, reg: Reg, slot: i64) -> Item {
    Item::I(Inst::Load {
        dst: reg,
        addr: Addr::base_disp(arch.sp(), slot),
        width: Width::W8,
        sign: false,
    })
}

/// Go call: arg goes to the caller's outgoing slot `[sp+0]`.
fn go_call(arch: Arch, callee: &str, arg: Reg) -> Vec<Item> {
    vec![store(arch, arg, 0), Item::CallF(callee.to_string())]
}

/// Read the incoming stack argument (post-prologue).
fn go_arg(arch: Arch, dst: Reg) -> Item {
    let off = if arch == Arch::X64 { F + 8 } else { F };
    load(arch, dst, off)
}

/// Generate the docker-like Go workload.
///
/// # Panics
///
/// Panics if the generated program fails to assemble (generator bug).
#[must_use]
pub fn docker_like(arch: Arch, seed: u64, iters: u32) -> Workload {
    let _ = seed; // structure is fixed; the seed names the variant
    let mut b = BinaryBuilder::new(arch);
    b.pie(true);

    // goexit: nop at entry (the +1 skips it).
    let mut goexit = vec![Item::I(Inst::Nop), Item::I(Inst::AluImm {
        op: AluOp::Add,
        dst: Reg(8),
        src: Reg(8),
        imm: 5,
    })];
    goexit.extend(epilogue(arch, 0, true));
    b.add_function(FuncDef::new("goexit", Language::Go, goexit));

    // go_worker2: computes; calls gc_poll when arg & 7 == 0.
    let mut w2 = prologue(arch, F as u64, false);
    w2.push(go_arg(arch, Reg(8)));
    // Compute kernel: the bulk of a realistic service's work.
    w2.push(Item::I(Inst::MovImm { dst: Reg(11), imm: 60 }));
    w2.push(Item::Label("kern".into()));
    w2.push(Item::I(Inst::AluImm { op: AluOp::Mul, dst: Reg(8), src: Reg(8), imm: 13 }));
    w2.push(Item::I(Inst::AluImm { op: AluOp::Xor, dst: Reg(8), src: Reg(8), imm: 0x3f }));
    w2.push(Item::I(Inst::AluImm { op: AluOp::Shr, dst: Reg(12), src: Reg(8), imm: 3 }));
    w2.push(Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(8), a: Reg(8), b: Reg(12) }));
    w2.push(Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(11), src: Reg(11), imm: 1 }));
    w2.push(Item::I(Inst::CmpImm { a: Reg(11), imm: 0 }));
    w2.push(Item::JccL(Cond::Gt, "kern".into()));
    // GC safepoint cadence: a global allocation counter, every 4th.
    w2.push(Item::LoadFrom {
        dst: Reg(9),
        target: RefTarget::Data("gc_ctr".into()),
        offset: 0,
        width: Width::W8,
        sign: false,
        tmp: Reg(10),
    });
    w2.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 1 }));
    w2.push(Item::StoreTo {
        src: Reg(9),
        target: RefTarget::Data("gc_ctr".into()),
        offset: 0,
        width: Width::W8,
        tmp: Reg(10),
    });
    w2.push(Item::I(Inst::AluImm { op: AluOp::And, dst: Reg(9), src: Reg(9), imm: 3 }));
    w2.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
    w2.push(Item::JccL(Cond::Ne, "no_gc".into()));
    w2.push(store(arch, Reg(8), 8));
    w2.extend(go_call(arch, "gc_poll", Reg(8)));
    w2.push(load(arch, Reg(9), 8));
    w2.push(Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(8), a: Reg(8), b: Reg(9) }));
    w2.push(Item::Label("no_gc".into()));
    w2.extend(epilogue(arch, F as u64, false));
    b.add_function(FuncDef::new("go_worker2", Language::Go, w2));

    // go_worker1: transform, call worker2, fold.
    let mut w1 = prologue(arch, F as u64, false);
    w1.push(go_arg(arch, Reg(8)));
    w1.push(store(arch, Reg(8), 8));
    w1.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 101 }));
    w1.extend(go_call(arch, "go_worker2", Reg(8)));
    w1.push(load(arch, Reg(9), 8));
    w1.push(Item::I(Inst::Alu { op: AluOp::Xor, dst: Reg(8), a: Reg(8), b: Reg(9) }));
    w1.extend(epilogue(arch, F as u64, false));
    b.add_function(FuncDef::new("go_worker1", Language::Go, w1));

    // gc_poll: run a traceback (the GC stack scan), fold its checksum.
    let mut gp = prologue(arch, F as u64, false);
    gp.push(go_arg(arch, Reg(8)));
    gp.push(store(arch, Reg(8), 8));
    gp.extend(go_call(arch, "go_traceback", Reg(8)));
    gp.push(load(arch, Reg(9), 8));
    gp.push(Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(8), a: Reg(8), b: Reg(9) }));
    gp.extend(epilogue(arch, F as u64, false));
    b.add_function(FuncDef::new("gc_poll", Language::Go, gp));

    // go_traceback: walk the stack.
    // Locals: pc -> [sp+8], sp_cursor -> [sp+16], acc -> [sp+24].
    let mut tb = prologue(arch, F as u64, false);
    let sp = arch.sp();
    if arch == Arch::X64 {
        // Own RA at [sp+F]; caller frame begins at sp+F+8.
        tb.push(load(arch, Reg(9), F));
        tb.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(10), src: sp, imm: (F + 8) as i32 }));
    } else {
        // Own RA spilled by the prologue at [sp+F-8].
        tb.push(load(arch, Reg(9), F - 8));
        tb.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(10), src: sp, imm: F as i32 }));
    }
    tb.push(store(arch, Reg(9), 8)); // pc
    tb.push(store(arch, Reg(10), 16)); // sp_cursor
    tb.push(Item::I(Inst::MovImm { dst: Reg(11), imm: 0 }));
    tb.push(store(arch, Reg(11), 24)); // acc
    tb.push(Item::Label("walk".into()));
    tb.push(load(arch, Reg(9), 8));
    tb.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
    tb.push(Item::JccL(Cond::Eq, "done".into()));
    // id = findfunc(pc); 0 => panic ("unknown return pc").
    tb.extend(go_call(arch, "go_findfunc", Reg(9)));
    tb.push(Item::I(Inst::CmpImm { a: Reg(8), imm: 0 }));
    tb.push(Item::JccL(Cond::Ne, "found".into()));
    tb.push(Item::I(Inst::MovImm { dst: Reg(8), imm: 0x60 })); // panic code
    tb.push(Item::I(Inst::Sys { op: SysOp::Abort, arg: Reg(8) }));
    tb.push(Item::Label("found".into()));
    // acc = acc * 7 + id
    tb.push(load(arch, Reg(11), 24));
    tb.push(Item::I(Inst::AluImm { op: AluOp::Mul, dst: Reg(11), src: Reg(11), imm: 7 }));
    tb.push(Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(11), a: Reg(11), b: Reg(8) }));
    tb.push(store(arch, Reg(11), 24));
    // f = pcvalue(pc)
    tb.push(load(arch, Reg(9), 8));
    tb.extend(go_call(arch, "go_pcvalue", Reg(9)));
    // step: pc = [sp_cursor + f - (risc: 8)], sp_cursor += f (+8 on x64)
    tb.push(load(arch, Reg(10), 16));
    tb.push(Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(12), a: Reg(10), b: Reg(8) }));
    if arch == Arch::X64 {
        tb.push(Item::I(Inst::Load {
            dst: Reg(9),
            addr: Addr::base_only(Reg(12)),
            width: Width::W8,
            sign: false,
        }));
        tb.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(12), src: Reg(12), imm: 8 }));
    } else {
        tb.push(Item::I(Inst::Load {
            dst: Reg(9),
            addr: Addr::base_disp(Reg(12), -8),
            width: Width::W8,
            sign: false,
        }));
    }
    tb.push(store(arch, Reg(9), 8));
    tb.push(store(arch, Reg(12), 16));
    tb.push(Item::JmpL("walk".into()));
    tb.push(Item::Label("done".into()));
    tb.push(load(arch, Reg(8), 24));
    tb.extend(epilogue(arch, F as u64, false));
    b.add_function(FuncDef::new("go_traceback", Language::Go, tb));

    // go_findfunc(pc): scan the pclntab image; return id or 0.
    let traceback_attrs = SymbolAttrs { is_go_traceback: true, ..SymbolAttrs::default() };
    let mut ff = prologue(arch, F as u64, true);
    ff.push(go_arg(arch, Reg(8)));
    ff.push(Item::LoadAddr { dst: Reg(9), target: RefTarget::Data("__pclntab".into()), delta: 0 });
    ff.push(Item::I(Inst::Load {
        dst: Reg(10),
        addr: Addr::base_only(Reg(9)),
        width: Width::W8,
        sign: false,
    })); // n
    ff.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 8 })); // e
    ff.push(Item::Label("scan".into()));
    ff.push(Item::I(Inst::CmpImm { a: Reg(10), imm: 0 }));
    ff.push(Item::JccL(Cond::Le, "miss".into()));
    ff.push(Item::I(Inst::Load {
        dst: Reg(11),
        addr: Addr::base_only(Reg(9)),
        width: Width::W8,
        sign: false,
    })); // start
    ff.push(Item::I(Inst::Load {
        dst: Reg(12),
        addr: Addr::base_disp(Reg(9), 8),
        width: Width::W8,
        sign: false,
    })); // end
    ff.push(Item::I(Inst::Cmp { a: Reg(8), b: Reg(11) }));
    ff.push(Item::JccL(Cond::ULt, "next".into()));
    ff.push(Item::I(Inst::Cmp { a: Reg(8), b: Reg(12) }));
    ff.push(Item::JccL(Cond::UGe, "next".into()));
    ff.push(Item::I(Inst::Load {
        dst: Reg(8),
        addr: Addr::base_disp(Reg(9), 16),
        width: Width::W8,
        sign: false,
    })); // id
    ff.extend(epilogue(arch, F as u64, true));
    ff.push(Item::Label("next".into()));
    ff.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 32 }));
    ff.push(Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(10), src: Reg(10), imm: 1 }));
    ff.push(Item::JmpL("scan".into()));
    ff.push(Item::Label("miss".into()));
    ff.push(Item::I(Inst::MovImm { dst: Reg(8), imm: 0 }));
    ff.extend(epilogue(arch, F as u64, true));
    b.add_function(FuncDef::new("go_findfunc", Language::Go, ff).with_attrs(traceback_attrs));

    // go_pcvalue(pc): same scan, returning the frame size.
    let mut pv = prologue(arch, F as u64, true);
    pv.push(go_arg(arch, Reg(8)));
    pv.push(Item::LoadAddr { dst: Reg(9), target: RefTarget::Data("__pclntab".into()), delta: 0 });
    pv.push(Item::I(Inst::Load {
        dst: Reg(10),
        addr: Addr::base_only(Reg(9)),
        width: Width::W8,
        sign: false,
    }));
    pv.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 8 }));
    pv.push(Item::Label("scan".into()));
    pv.push(Item::I(Inst::CmpImm { a: Reg(10), imm: 0 }));
    pv.push(Item::JccL(Cond::Le, "miss".into()));
    pv.push(Item::I(Inst::Load {
        dst: Reg(11),
        addr: Addr::base_only(Reg(9)),
        width: Width::W8,
        sign: false,
    }));
    pv.push(Item::I(Inst::Load {
        dst: Reg(12),
        addr: Addr::base_disp(Reg(9), 8),
        width: Width::W8,
        sign: false,
    }));
    pv.push(Item::I(Inst::Cmp { a: Reg(8), b: Reg(11) }));
    pv.push(Item::JccL(Cond::ULt, "next".into()));
    pv.push(Item::I(Inst::Cmp { a: Reg(8), b: Reg(12) }));
    pv.push(Item::JccL(Cond::UGe, "next".into()));
    pv.push(Item::I(Inst::Load {
        dst: Reg(8),
        addr: Addr::base_disp(Reg(9), 24),
        width: Width::W8,
        sign: false,
    }));
    pv.extend(epilogue(arch, F as u64, true));
    pv.push(Item::Label("next".into()));
    pv.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 32 }));
    pv.push(Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(10), src: Reg(10), imm: 1 }));
    pv.push(Item::JmpL("scan".into()));
    pv.push(Item::Label("miss".into()));
    pv.push(Item::MovWide { dst: Reg(8), imm: F });
    pv.extend(epilogue(arch, F as u64, true));
    b.add_function(FuncDef::new("go_pcvalue", Language::Go, pv).with_attrs(traceback_attrs));

    // go_main: the Listing 1 pattern once, then the hot loop. The
    // increment skips the nop at goexit's entry: one byte on x64, one
    // 4-byte word on the fixed-width architectures.
    let skip: i32 = if arch == Arch::X64 { 1 } else { 4 };
    let mut m = prologue(arch, F as u64, false);
    // vtab[0] = *goexit_fp + skip
    m.push(Item::LoadFrom {
        dst: Reg(9),
        target: RefTarget::Data("goexit_fp".into()),
        offset: 0,
        width: Width::W8,
        sign: false,
        tmp: Reg(10),
    });
    m.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: skip }));
    m.push(Item::StoreTo {
        src: Reg(9),
        target: RefTarget::Data("go_vtab".into()),
        offset: 0,
        width: Width::W8,
        tmp: Reg(10),
    });
    // Call through the vtab once.
    m.push(Item::I(Inst::MovImm { dst: Reg(8), imm: 2 }));
    m.push(Item::LoadFrom {
        dst: Reg(11),
        target: RefTarget::Data("go_vtab".into()),
        offset: 0,
        width: Width::W8,
        sign: false,
        tmp: Reg(10),
    });
    if arch == Arch::Ppc64le {
        m.push(Item::I(Inst::MoveToTar { src: Reg(11) }));
        m.push(Item::I(Inst::CallTar));
    } else {
        m.push(Item::I(Inst::CallReg { src: Reg(11) }));
    }
    // Hot loop.
    m.push(Item::MovWide { dst: Reg(9), imm: i64::from(iters) });
    m.push(Item::Label("outer".into()));
    m.push(store(arch, Reg(9), 16));
    m.push(store(arch, Reg(8), 24));
    m.extend(go_call(arch, "go_worker1", Reg(8)));
    m.push(load(arch, Reg(10), 24));
    m.push(Item::I(Inst::Alu { op: AluOp::Xor, dst: Reg(8), a: Reg(8), b: Reg(10) }));
    // Hot interface-method dispatch through the function table — the
    // unrewritten-pointer bounce that dominates §8.2's Docker overhead.
    m.push(store(arch, Reg(8), 24));
    m.push(Item::LoadFrom {
        dst: Reg(11),
        target: RefTarget::Data("go_vtab".into()),
        offset: 0,
        width: Width::W8,
        sign: false,
        tmp: Reg(10),
    });
    if arch == Arch::Ppc64le {
        m.push(Item::I(Inst::MoveToTar { src: Reg(11) }));
        m.push(Item::I(Inst::CallTar));
    } else {
        m.push(Item::I(Inst::CallReg { src: Reg(11) }));
    }
    m.push(load(arch, Reg(10), 24));
    m.push(Item::I(Inst::Alu { op: AluOp::Add, dst: Reg(8), a: Reg(8), b: Reg(10) }));
    m.push(load(arch, Reg(9), 16));
    m.push(Item::I(Inst::AluImm { op: AluOp::Sub, dst: Reg(9), src: Reg(9), imm: 1 }));
    m.push(Item::I(Inst::CmpImm { a: Reg(9), imm: 0 }));
    m.push(Item::JccL(Cond::Gt, "outer".into()));
    m.push(Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }));
    m.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("go_main", Language::Go, m));

    b.push_data(
        Some("goexit_fp"),
        DataItem::Addr { target: RefTarget::Func("goexit".into()), delta: 0 },
    );
    b.push_data(Some("go_vtab"), DataItem::Zeros(8));
    b.push_data(Some("gc_ctr"), DataItem::Zeros(8));
    b.set_go_functable(vec![
        ("go_main".to_string(), F as u64),
        ("go_worker1".to_string(), F as u64),
        ("go_worker2".to_string(), F as u64),
        ("gc_poll".to_string(), F as u64),
        ("goexit".to_string(), 0),
    ]);
    b.set_entry("go_main");
    let binary = b.build().unwrap_or_else(|e| panic!("docker-like failed to build: {e}"));
    Workload { name: "docker-like".to_string(), binary, languages: vec![Language::Go] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_emu::{run, LoadOptions, Outcome};

    #[test]
    fn docker_like_runs_with_tracebacks() {
        for arch in Arch::ALL {
            let w = docker_like(arch, 1, 40);
            match run(&w.binary, &LoadOptions::default()) {
                Outcome::Halted(stats) => {
                    assert_eq!(stats.output.len(), 1, "{arch}");
                    assert!(stats.instructions > 2000, "{arch}: tracebacks ran");
                }
                o => panic!("{arch}: {o:?}"),
            }
        }
    }

    #[test]
    fn traceback_checksum_is_stable() {
        let a = run(&docker_like(Arch::X64, 1, 40).binary, &LoadOptions::default());
        let b = run(&docker_like(Arch::X64, 1, 40).binary, &LoadOptions::default());
        assert_eq!(a.stats().output, b.stats().output);
    }
}

//! Property tests for the binary container's data structures.

use icfgp_obj::{
    Binary, GoFuncEntry, GoFuncTable, RaMap, Section, SectionFlags, SectionKind, TrapMap,
    UnwindEntry, UnwindTable,
};
use icfgp_isa::Arch;
use icfgp_obj::RaRule;
use proptest::prelude::*;

proptest! {
    /// RaMap serialisation round-trips and lookups agree with a naive
    /// map for arbitrary pair sets.
    #[test]
    fn ra_map_roundtrip(pairs in proptest::collection::btree_map(any::<u64>(), any::<u64>(), 0..64)) {
        let mut m = RaMap::new();
        for (k, v) in &pairs {
            m.insert(*k, *v);
        }
        let rt = RaMap::from_bytes(&m.to_bytes()).expect("roundtrip");
        prop_assert_eq!(&rt, &m);
        for (k, v) in &pairs {
            prop_assert_eq!(m.translate(*k), Some(*v));
        }
        // A key absent from the input is absent from the map.
        let probe = pairs.keys().copied().max().unwrap_or(0).wrapping_add(1);
        if !pairs.contains_key(&probe) {
            prop_assert_eq!(m.translate(probe), None);
        }
    }

    #[test]
    fn trap_map_roundtrip(pairs in proptest::collection::btree_map(any::<u64>(), any::<u64>(), 0..64)) {
        let mut m = TrapMap::new();
        for (k, v) in &pairs {
            m.insert(*k, *v);
        }
        let rt = TrapMap::from_bytes(&m.to_bytes()).expect("roundtrip");
        prop_assert_eq!(rt, m.clone());
        for (k, v) in &pairs {
            prop_assert_eq!(m.target(*k), Some(*v));
        }
    }

    /// GoFuncTable `find` returns the entry whose [start, end) contains
    /// the probe, for arbitrary non-overlapping range sets.
    #[test]
    fn go_table_find(starts in proptest::collection::btree_set(0u64..1_000_000, 1..32),
                     probe in 0u64..1_100_000) {
        let starts: Vec<u64> = starts.into_iter().collect();
        let mut table = GoFuncTable::new();
        let mut ranges = Vec::new();
        for (i, w) in starts.windows(2).enumerate() {
            let (s, next) = (w[0], w[1]);
            let e = s + ((next - s) / 2).max(1);
            table.push(GoFuncEntry { start: s, end: e, func_id: i as u64 + 1, frame_size: 32 });
            ranges.push((s, e, i as u64 + 1));
        }
        let expected = ranges
            .iter()
            .find(|(s, e, _)| probe >= *s && probe < *e)
            .map(|(_, _, id)| *id);
        prop_assert_eq!(table.find(probe).map(|e| e.func_id), expected);
        // Serialisation preserves semantics.
        let rt = GoFuncTable::from_bytes(&table.to_bytes()).expect("roundtrip");
        prop_assert_eq!(rt.find(probe).map(|e| e.func_id), expected);
    }

    /// UnwindTable lookup returns the covering entry for arbitrary
    /// non-overlapping function ranges.
    #[test]
    fn unwind_lookup(starts in proptest::collection::btree_set(0u64..1_000_000, 2..32),
                     probe in 0u64..1_100_000) {
        let starts: Vec<u64> = starts.into_iter().collect();
        let mut table = UnwindTable::new();
        let mut ranges = Vec::new();
        for w in starts.windows(2) {
            let (s, next) = (w[0], w[1]);
            let e = s + ((next - s) / 2).max(1);
            table.push(UnwindEntry {
                start: s,
                end: e,
                frame_size: 16,
                ra: RaRule::StackSlot { offset: 8 },
                call_sites: vec![],
            });
            ranges.push((s, e));
        }
        let expected = ranges.iter().find(|(s, e)| probe >= *s && probe < *e).map(|(s, _)| *s);
        prop_assert_eq!(table.lookup(probe).map(|e| e.start), expected);
    }

    /// Section reads/writes are exact and bounds-checked.
    #[test]
    fn section_rw(addr in 0x1000u64..0x1100, len in 1usize..16, fill in any::<u8>()) {
        let mut s = Section::new(
            ".t",
            0x1000,
            vec![0; 0x100],
            SectionFlags::rw(),
            SectionKind::Data,
        );
        let bytes = vec![fill; len];
        let fits = addr + len as u64 <= s.end();
        prop_assert_eq!(s.write(addr, &bytes), fits);
        if fits {
            prop_assert_eq!(s.read(addr, len).unwrap(), &bytes[..]);
        } else {
            prop_assert!(s.read(addr, len).is_none());
        }
    }

    /// Binary::read_u64/write_u64 round-trip anywhere inside a section.
    #[test]
    fn binary_u64_rw(off in 0u64..0xF8, v in any::<u64>()) {
        let mut b = Binary::new(Arch::X64);
        b.add_section(Section::new(
            ".data",
            0x2000,
            vec![0; 0x100],
            SectionFlags::rw(),
            SectionKind::Data,
        ));
        b.write_u64(0x2000 + off, v).expect("in range");
        prop_assert_eq!(b.read_u64(0x2000 + off).expect("readable"), v);
    }
}

//! Rewriter-emitted runtime maps: `.ra_map` and `.trap_map`.
//!
//! Both are sorted key→value tables of link-time addresses serialised
//! as `count: u64` followed by `(key: u64, value: u64)` pairs. The
//! runtime library (modelled inside the emulator) parses them at load
//! time:
//!
//! * [`RaMap`] — relocated return address (in `.instr`) → original
//!   return address (in `.text`). Consulted once per frame step during
//!   unwinding (§6, "Runtime Return Address Translation").
//! * [`TrapMap`] — trap-trampoline address (in `.text`) → relocated
//!   target (in `.instr`). Consulted by the trap-signal handler.

use serde::{Deserialize, Serialize};

/// A sorted address→address table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrMap {
    pairs: Vec<(u64, u64)>,
}

impl AddrMap {
    fn push(&mut self, key: u64, value: u64) {
        let pos = self.pairs.partition_point(|(k, _)| *k < key);
        self.pairs.insert(pos, (key, value));
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.pairs
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.pairs.len() * 16);
        out.extend_from_slice(&(self.pairs.len() as u64).to_le_bytes());
        for (k, v) in &self.pairs {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn from_bytes(bytes: &[u8]) -> Option<AddrMap> {
        let count = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
        let mut map = AddrMap::default();
        for i in 0..count {
            let off = 8 + i * 16;
            let chunk = bytes.get(off..off + 16)?;
            let k = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
            let v = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
            map.push(k, v);
        }
        Some(map)
    }

    /// Keys recorded more than once with *different* values — a
    /// malformed table (the runtime lookup would pick one
    /// arbitrarily). Duplicate identical pairs are tolerated.
    fn conflicting_keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for w in self.pairs.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 && out.last() != Some(&w[0].0) {
                out.push(w[0].0);
            }
        }
        out
    }

    /// Values shared by entries with *distinct* keys (the map is not
    /// injective). Harmless for some producers (payload insertion can
    /// split one original return address across two relocated sites),
    /// so callers usually report these as warnings.
    fn colliding_values(&self) -> Vec<u64> {
        let mut keys_of: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> =
            std::collections::BTreeMap::new();
        for (k, v) in &self.pairs {
            keys_of.entry(*v).or_default().insert(*k);
        }
        keys_of
            .into_iter()
            .filter(|(_, ks)| ks.len() > 1)
            .map(|(v, _)| v)
            .collect()
    }
}

/// Relocated→original return-address map (`.ra_map` contents).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaMap(AddrMap);

impl RaMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> RaMap {
        RaMap::default()
    }

    /// Record that the relocated call at return address `relocated`
    /// corresponds to original return address `original`.
    pub fn insert(&mut self, relocated: u64, original: u64) {
        self.0.push(relocated, original);
    }

    /// Translate a relocated return address; `None` when the address is
    /// not a recorded relocated call site (the caller then passes the
    /// input through unchanged, which is how unwinding through
    /// uninstrumented binaries keeps working).
    #[must_use]
    pub fn translate(&self, relocated: u64) -> Option<u64> {
        self.0.get(relocated)
    }

    /// Number of recorded pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.pairs.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.pairs.is_empty()
    }

    /// Serialise to the `.ra_map` section layout.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Parse the `.ra_map` section layout.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<RaMap> {
        AddrMap::from_bytes(bytes).map(RaMap)
    }

    /// The sorted `(relocated, original)` pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.0.pairs
    }

    /// Relocated addresses recorded more than once with different
    /// originals — a malformed map.
    #[must_use]
    pub fn conflicting_keys(&self) -> Vec<u64> {
        self.0.conflicting_keys()
    }

    /// Original addresses reached from more than one distinct
    /// relocated address (the map is not injective).
    #[must_use]
    pub fn colliding_values(&self) -> Vec<u64> {
        self.0.colliding_values()
    }
}

/// Trap-trampoline→target map (`.trap_map` contents).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrapMap(AddrMap);

impl TrapMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> TrapMap {
        TrapMap::default()
    }

    /// Record that the trap instruction at `trap_addr` transfers to
    /// `target`.
    pub fn insert(&mut self, trap_addr: u64, target: u64) {
        self.0.push(trap_addr, target);
    }

    /// Target for a trap at `trap_addr`; `None` means the trap is not
    /// one of ours and the program genuinely crashed.
    #[must_use]
    pub fn target(&self, trap_addr: u64) -> Option<u64> {
        self.0.get(trap_addr)
    }

    /// Number of trap trampolines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.pairs.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.pairs.is_empty()
    }

    /// Serialise to the `.trap_map` section layout.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Parse the `.trap_map` section layout.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<TrapMap> {
        AddrMap::from_bytes(bytes).map(TrapMap)
    }

    /// The sorted `(trap address, target)` pairs.
    #[must_use]
    pub fn pairs(&self) -> &[(u64, u64)] {
        &self.0.pairs
    }

    /// Trap addresses recorded more than once with different targets —
    /// a malformed map.
    #[must_use]
    pub fn conflicting_keys(&self) -> Vec<u64> {
        self.0.conflicting_keys()
    }

    /// Targets shared by more than one distinct trap address (the map
    /// is not injective).
    #[must_use]
    pub fn colliding_values(&self) -> Vec<u64> {
        self.0.colliding_values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ra_map_roundtrip_and_lookup() {
        let mut m = RaMap::new();
        m.insert(0x9000, 0x1000);
        m.insert(0x8000, 0x1100);
        assert_eq!(m.translate(0x9000), Some(0x1000));
        assert_eq!(m.translate(0x8000), Some(0x1100));
        assert_eq!(m.translate(0x7000), None);
        let rt = RaMap::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(rt, m);
        assert_eq!(rt.len(), 2);
    }

    #[test]
    fn trap_map_roundtrip_and_lookup() {
        let mut m = TrapMap::new();
        m.insert(0x1004, 0x9004);
        assert_eq!(m.target(0x1004), Some(0x9004));
        assert_eq!(m.target(0x1005), None);
        assert_eq!(TrapMap::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn empty_map_serialises() {
        let m = RaMap::new();
        assert!(m.is_empty());
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(RaMap::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn truncated_bytes_rejected() {
        let mut m = TrapMap::new();
        m.insert(1, 2);
        let bytes = m.to_bytes();
        assert!(TrapMap::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }
}

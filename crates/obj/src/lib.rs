#![warn(missing_docs)]
//! The binary container: an ELF-shaped object model for the synthetic
//! architectures.
//!
//! A [`Binary`] holds the structural features the paper's rewriter
//! manipulates:
//!
//! * [`Section`]s (`.text`, `.rodata`, `.data`, `.dynsym`, `.dynstr`,
//!   `.rela_dyn`, and — after rewriting — `.instr`, `.ra_map`,
//!   `.trap_map` and renamed originals);
//! * function [`Symbol`]s with sizes and per-function attributes;
//! * [`Relocation`]s (RELATIVE slots that the loader rebases for PIE);
//! * a DWARF-style [`UnwindTable`] (`.eh_frame` analog) that rewriting
//!   deliberately leaves untouched — runtime RA translation exists so
//!   that the *original* unwind data keeps working;
//! * an optional Go-style function table ([`GoFuncTable`], the
//!   `.pclntab` analog) for binaries whose language runtime walks its
//!   own stack;
//! * [`Metadata`] recording language features and which relocation
//!   classes survive in the binary (link-time relocations are normally
//!   stripped — the BOLT comparison hinges on this).
//!
//! # Example
//!
//! ```
//! use icfgp_obj::{Binary, Section, SectionFlags, SectionKind};
//! use icfgp_isa::Arch;
//!
//! let mut bin = Binary::new(Arch::X64);
//! bin.add_section(Section::new(
//!     ".text",
//!     0x40_0000,
//!     vec![0u8; 64],
//!     SectionFlags::exec(),
//!     SectionKind::Text,
//! ));
//! assert_eq!(bin.loaded_size(), 64);
//! assert!(bin.section(".text").is_some());
//! ```

mod binary;
mod maps;
mod pclntab;
mod reloc;
mod section;
mod symbol;
mod unwind;

pub use binary::{Binary, BinaryKind, Metadata, ObjError};
pub use maps::{RaMap, TrapMap};
pub use pclntab::{GoFuncEntry, GoFuncTable};
pub use reloc::{RelocKind, Relocation};
pub use section::{names, Section, SectionFlags, SectionKind};
pub use symbol::{Language, Symbol, SymbolAttrs, SymbolKind};
pub use unwind::{CallSiteEntry, RaRule, UnwindEntry, UnwindTable};

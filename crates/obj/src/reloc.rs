//! Relocation records.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Relocation classes the paper's related work distinguishes (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelocKind {
    /// Run-time RELATIVE relocation: the loader writes
    /// `load_base + addend` into the 8-byte slot at `at`. Present in
    /// PIE binaries; Egalito/RetroWrite-style IR lowering *requires*
    /// these, our rewriter merely exploits them when present.
    Relative,
    /// Link-time relocation retained via `-Wl,-q`. Normally stripped;
    /// BOLT requires them for function reordering.
    LinkTime,
}

/// One relocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Relocation {
    /// Virtual address of the 8-byte slot being relocated.
    pub at: u64,
    /// Link-time target value (an address within the binary).
    pub addend: u64,
    /// Relocation class.
    pub kind: RelocKind,
}

impl Relocation {
    /// A run-time RELATIVE relocation.
    #[must_use]
    pub fn relative(at: u64, addend: u64) -> Relocation {
        Relocation { at, addend, kind: RelocKind::Relative }
    }

    /// A link-time relocation.
    #[must_use]
    pub fn link_time(at: u64, addend: u64) -> Relocation {
        Relocation { at, addend, kind: RelocKind::LinkTime }
    }
}

impl fmt::Display for Relocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: R_{:?} {:#x}", self.at, self.kind, self.addend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = Relocation::relative(0x3000, 0x1000);
        assert_eq!(r.kind, RelocKind::Relative);
        let l = Relocation::link_time(0x3000, 0x1000);
        assert_eq!(l.kind, RelocKind::LinkTime);
        assert!(r.to_string().contains("R_Relative"));
    }
}

//! Sections: named, addressed byte ranges with permissions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Well-known section names used across the workspace.
pub mod names {
    /// Original machine code.
    pub const TEXT: &str = ".text";
    /// Read-only data (jump tables, string literals).
    pub const RODATA: &str = ".rodata";
    /// Writable data.
    pub const DATA: &str = ".data";
    /// Dynamic symbol table.
    pub const DYNSYM: &str = ".dynsym";
    /// Dynamic string table.
    pub const DYNSTR: &str = ".dynstr";
    /// Dynamic relocation records.
    pub const RELA_DYN: &str = ".rela_dyn";
    /// DWARF-style unwind information (kept unmodified by rewriting).
    pub const EH_FRAME: &str = ".eh_frame";
    /// Go-style function table backing the in-binary unwinder.
    pub const PCLNTAB: &str = ".pclntab";
    /// Finalizer (destructor) function-pointer array.
    pub const FINI_ARRAY: &str = ".fini_array";
    /// Relocated code + instrumentation emitted by rewriting.
    pub const INSTR: &str = ".instr";
    /// Relocated→original return-address map emitted by rewriting.
    pub const RA_MAP: &str = ".ra_map";
    /// Trap-trampoline address→target map emitted by rewriting.
    pub const TRAP_MAP: &str = ".trap_map";
    /// Cloned jump tables emitted by `jt`/`func-ptr` rewriting.
    pub const JT_CLONE: &str = ".jt_clone";
    /// Prefix applied to sections renamed into scratch space
    /// (`.dynsym` → `.old.dynsym` and so on).
    pub const OLD_PREFIX: &str = ".old";
}

/// What a section semantically contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SectionKind {
    /// Executable code.
    Text,
    /// Read-only data.
    ReadOnlyData,
    /// Writable data.
    Data,
    /// Dynamic-linking metadata (symbols, strings, relocation records).
    DynamicMeta,
    /// Unwind metadata.
    Unwind,
    /// Rewriter-emitted runtime maps (`.ra_map`, `.trap_map`).
    RuntimeMap,
    /// Scratch space: a renamed, no-longer-referenced original section
    /// that trampolines may be installed into.
    Scratch,
}

/// Section permissions. Mirrors ELF's `SHF_ALLOC`/`SHF_WRITE`/
/// `SHF_EXECINSTR` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SectionFlags {
    /// Loaded into memory at run time (counted by `size`-style tools).
    pub alloc: bool,
    /// Writable at run time.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl SectionFlags {
    /// Allocated + executable (code).
    #[must_use]
    pub fn exec() -> SectionFlags {
        SectionFlags { alloc: true, write: false, exec: true }
    }

    /// Allocated + read-only.
    #[must_use]
    pub fn ro() -> SectionFlags {
        SectionFlags { alloc: true, write: false, exec: false }
    }

    /// Allocated + writable.
    #[must_use]
    pub fn rw() -> SectionFlags {
        SectionFlags { alloc: true, write: true, exec: false }
    }

    /// Not loaded at run time (debug-style sections).
    #[must_use]
    pub fn unloaded() -> SectionFlags {
        SectionFlags { alloc: false, write: false, exec: false }
    }
}

/// A named byte range at a fixed link-time virtual address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Section {
    name: String,
    addr: u64,
    data: Vec<u8>,
    flags: SectionFlags,
    kind: SectionKind,
}

impl Section {
    /// Create a section.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        addr: u64,
        data: Vec<u8>,
        flags: SectionFlags,
        kind: SectionKind,
    ) -> Section {
        Section { name: name.into(), addr, data, flags, kind }
    }

    /// Section name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the section (used to retire `.dynsym` and friends into
    /// scratch space).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Link-time virtual start address.
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Move the section to a new virtual address.
    pub fn set_addr(&mut self, addr: u64) {
        self.addr = addr;
    }

    /// One-past-the-end virtual address.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.addr + self.data.len() as u64
    }

    /// Section size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the section is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Section contents.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable section contents.
    pub fn data_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Permissions.
    #[must_use]
    pub fn flags(&self) -> SectionFlags {
        self.flags
    }

    /// Change permissions.
    pub fn set_flags(&mut self, flags: SectionFlags) {
        self.flags = flags;
    }

    /// Semantic kind.
    #[must_use]
    pub fn kind(&self) -> SectionKind {
        self.kind
    }

    /// Change the semantic kind (e.g. retiring a section to scratch).
    pub fn set_kind(&mut self, kind: SectionKind) {
        self.kind = kind;
    }

    /// Whether `addr` lies inside this section.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }

    /// Read `len` bytes at virtual address `addr`.
    #[must_use]
    pub fn read(&self, addr: u64, len: usize) -> Option<&[u8]> {
        if !self.contains(addr) || addr + len as u64 > self.end() {
            return None;
        }
        let off = (addr - self.addr) as usize;
        Some(&self.data[off..off + len])
    }

    /// Overwrite bytes at virtual address `addr`. Returns `false` when
    /// the range falls outside the section.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> bool {
        if !self.contains(addr) || addr + bytes.len() as u64 > self.end() {
            return false;
        }
        let off = (addr - self.addr) as usize;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        true
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:#010x}..{:#010x} ({} bytes){}{}{}",
            self.name,
            self.addr,
            self.end(),
            self.len(),
            if self.flags.alloc { " A" } else { "" },
            if self.flags.write { "W" } else { "" },
            if self.flags.exec { "X" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec() -> Section {
        Section::new(".text", 0x1000, vec![0xAA; 16], SectionFlags::exec(), SectionKind::Text)
    }

    #[test]
    fn contains_and_bounds() {
        let s = sec();
        assert!(s.contains(0x1000));
        assert!(s.contains(0x100F));
        assert!(!s.contains(0x1010));
        assert!(!s.contains(0xFFF));
        assert_eq!(s.end(), 0x1010);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = sec();
        assert!(s.write(0x1004, &[1, 2, 3]));
        assert_eq!(s.read(0x1004, 3), Some(&[1u8, 2, 3][..]));
        // Out-of-bounds writes are rejected and leave data untouched.
        assert!(!s.write(0x100E, &[9, 9, 9]));
        assert_eq!(s.read(0x100E, 2), Some(&[0xAA, 0xAA][..]));
        assert_eq!(s.read(0x100E, 3), None);
    }

    #[test]
    fn display_shows_perms() {
        let s = sec();
        let d = s.to_string();
        assert!(d.contains(".text"), "{d}");
        assert!(d.ends_with("AX"), "{d}");
    }
}

//! Go-style function table (`.pclntab` analog).
//!
//! Go binaries carry a table mapping PC ranges to function metadata;
//! the runtime's traceback code (`runtime.findfunc`, `runtime.pcvalue`)
//! walks it when scanning stacks for garbage collection or panics. The
//! table is *data consumed by guest code*, so its byte layout matters:
//! workload generators serialise it into `.data`, and the generated
//! `findfunc` routine reads it with ordinary loads.
//!
//! Layout: `count: u64` followed by 32-byte entries
//! `{ start: u64, end: u64, func_id: u64, frame_size: u64 }`.
//! In PIE binaries the `start`/`end` words carry RELATIVE relocations.

use serde::{Deserialize, Serialize};

/// One function's entry in the Go-style table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GoFuncEntry {
    /// Function start address (link-time).
    pub start: u64,
    /// One-past-the-end address.
    pub end: u64,
    /// Stable function identifier reported by `findfunc`.
    pub func_id: u64,
    /// Frame size the traceback walker uses to step to the caller.
    pub frame_size: u64,
}

/// The whole table, sorted by start address.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GoFuncTable {
    entries: Vec<GoFuncEntry>,
}

/// Size in bytes of one serialised entry.
pub const ENTRY_SIZE: usize = 32;

impl GoFuncTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> GoFuncTable {
        GoFuncTable::default()
    }

    /// Add an entry (keeps the table sorted by start address).
    pub fn push(&mut self, entry: GoFuncEntry) {
        let pos = self.entries.partition_point(|e| e.start < entry.start);
        self.entries.insert(pos, entry);
    }

    /// Look up the function containing `pc` (the `findfunc` semantic).
    #[must_use]
    pub fn find(&self, pc: u64) -> Option<&GoFuncEntry> {
        let pos = self.entries.partition_point(|e| e.start <= pc);
        let e = self.entries.get(pos.checked_sub(1)?)?;
        (pc < e.end).then_some(e)
    }

    /// All entries.
    #[must_use]
    pub fn entries(&self) -> &[GoFuncEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialise into the in-memory layout guest code reads.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.entries.len() * ENTRY_SIZE);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.start.to_le_bytes());
            out.extend_from_slice(&e.end.to_le_bytes());
            out.extend_from_slice(&e.func_id.to_le_bytes());
            out.extend_from_slice(&e.frame_size.to_le_bytes());
        }
        out
    }

    /// Parse the in-memory layout back into a table.
    ///
    /// Returns `None` for malformed input.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<GoFuncTable> {
        let count = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?) as usize;
        let mut table = GoFuncTable::new();
        for i in 0..count {
            let off = 8 + i * ENTRY_SIZE;
            let chunk = bytes.get(off..off + ENTRY_SIZE)?;
            let word = |j: usize| {
                u64::from_le_bytes(chunk[j * 8..(j + 1) * 8].try_into().expect("8-byte slice"))
            };
            table.push(GoFuncEntry {
                start: word(0),
                end: word(1),
                func_id: word(2),
                frame_size: word(3),
            });
        }
        Some(table)
    }

    /// Byte offsets (within the serialised form) of every word that
    /// holds an address and therefore needs a RELATIVE relocation in
    /// PIE binaries: the `start` and `end` fields of each entry.
    #[must_use]
    pub fn address_slot_offsets(&self) -> Vec<(usize, u64)> {
        let mut out = Vec::with_capacity(self.entries.len() * 2);
        for (i, e) in self.entries.iter().enumerate() {
            let base = 8 + i * ENTRY_SIZE;
            out.push((base, e.start));
            out.push((base + 8, e.end));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> GoFuncTable {
        let mut t = GoFuncTable::new();
        t.push(GoFuncEntry { start: 0x2000, end: 0x2100, func_id: 2, frame_size: 48 });
        t.push(GoFuncEntry { start: 0x1000, end: 0x1080, func_id: 1, frame_size: 32 });
        t
    }

    #[test]
    fn find_semantics() {
        let t = table();
        assert_eq!(t.find(0x1000).unwrap().func_id, 1);
        assert_eq!(t.find(0x107F).unwrap().func_id, 1);
        assert!(t.find(0x1080).is_none()); // gap between functions
        assert_eq!(t.find(0x2050).unwrap().func_id, 2);
        assert!(t.find(0x2100).is_none());
    }

    #[test]
    fn bytes_roundtrip() {
        let t = table();
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), 8 + 2 * ENTRY_SIZE);
        let parsed = GoFuncTable::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn relocation_slots() {
        let t = table();
        let slots = t.address_slot_offsets();
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0], (8, 0x1000));
        assert_eq!(slots[1], (16, 0x1080));
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(GoFuncTable::from_bytes(&[1, 0, 0]).is_none());
        // Claims one entry but provides no entry bytes.
        assert!(GoFuncTable::from_bytes(&1u64.to_le_bytes()).is_none());
    }
}

//! The [`Binary`] container tying sections, symbols, relocations and
//! metadata together.

use crate::pclntab::GoFuncTable;
use crate::reloc::{RelocKind, Relocation};
use crate::section::{names, Section, SectionKind};
use crate::symbol::{Language, Symbol, SymbolKind};
use crate::unwind::UnwindTable;
use icfgp_isa::Arch;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Executable or shared library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryKind {
    /// A main executable with an entry point.
    Exec,
    /// A shared library (always position independent).
    SharedLib,
}

/// Binary-level metadata: which language features and relocation
/// classes are present. These flags gate which rewriters can process
/// the binary at all (Table 1 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Metadata {
    /// Position-independent (loader may rebase; RELATIVE relocations
    /// describe every absolute address slot).
    pub pie: bool,
    /// Link-time relocations were retained (`-Wl,-q`); BOLT-style
    /// function reordering requires this.
    pub has_link_time_relocs: bool,
    /// Symbol-versioning metadata is present (common in C++/Rust
    /// shared libraries; Egalito-style IR lowering chokes on it).
    pub has_symbol_versioning: bool,
    /// Languages present in the binary.
    pub languages: BTreeSet<Language>,
    /// Symbol names were stripped.
    pub stripped: bool,
}

impl Metadata {
    /// Whether any compilation unit uses C++-style exceptions.
    #[must_use]
    pub fn has_exceptions(&self) -> bool {
        self.languages.contains(&Language::Cpp) || self.languages.contains(&Language::Rust)
    }

    /// Whether the binary embeds a Go runtime (in-binary traceback).
    #[must_use]
    pub fn has_go_runtime(&self) -> bool {
        self.languages.contains(&Language::Go)
    }
}

/// Errors from [`Binary`] consistency operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are named self-descriptively and shown by Display
pub enum ObjError {
    /// Two allocated sections overlap in the address space.
    OverlappingSections { a: String, b: String },
    /// A read or write touched an address no section maps.
    Unmapped { addr: u64 },
    /// A named section does not exist.
    NoSuchSection { name: String },
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::OverlappingSections { a, b } => {
                write!(f, "sections {a} and {b} overlap")
            }
            ObjError::Unmapped { addr } => write!(f, "address {addr:#x} is not mapped"),
            ObjError::NoSuchSection { name } => write!(f, "no section named {name}"),
        }
    }
}

impl std::error::Error for ObjError {}

/// A complete binary: the rewriter's input and output type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Binary {
    /// Target architecture.
    pub arch: Arch,
    /// Executable or shared library.
    pub kind: BinaryKind,
    /// Entry-point address (link-time); meaningless for libraries.
    pub entry: u64,
    /// Sections, in insertion order.
    sections: Vec<Section>,
    /// Symbols, kept sorted by address.
    symbols: Vec<Symbol>,
    /// Relocation records (`.rela_dyn` analog plus retained link-time
    /// relocations).
    pub relocations: Vec<Relocation>,
    /// DWARF-style unwind table (`.eh_frame` analog).
    pub unwind: UnwindTable,
    /// Go-style function table, when the binary embeds a Go runtime.
    pub pclntab: Option<GoFuncTable>,
    /// Feature metadata.
    pub meta: Metadata,
    /// ppc64le TOC anchor (link-time value the loader materialises into
    /// `r2`, plus load bias). `None` on other architectures.
    pub toc_base: Option<u64>,
}

impl Binary {
    /// An empty binary for `arch`.
    #[must_use]
    pub fn new(arch: Arch) -> Binary {
        Binary {
            arch,
            kind: BinaryKind::Exec,
            entry: 0,
            sections: Vec::new(),
            symbols: Vec::new(),
            relocations: Vec::new(),
            unwind: UnwindTable::new(),
            pclntab: None,
            meta: Metadata::default(),
            toc_base: None,
        }
    }

    // ----- sections ------------------------------------------------

    /// Append a section.
    pub fn add_section(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// All sections.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Mutable access to all sections.
    pub fn sections_mut(&mut self) -> &mut Vec<Section> {
        &mut self.sections
    }

    /// Find a section by name.
    #[must_use]
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name() == name)
    }

    /// Find a section by name, mutably.
    pub fn section_mut(&mut self, name: &str) -> Option<&mut Section> {
        self.sections.iter_mut().find(|s| s.name() == name)
    }

    /// Find the section containing `addr`.
    #[must_use]
    pub fn section_at(&self, addr: u64) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// Find the section containing `addr`, mutably.
    pub fn section_at_mut(&mut self, addr: u64) -> Option<&mut Section> {
        self.sections.iter_mut().find(|s| s.contains(addr))
    }

    /// Read `len` bytes at a virtual address, crossing no section
    /// boundary.
    ///
    /// # Errors
    ///
    /// [`ObjError::Unmapped`] when the range is not fully inside one
    /// section.
    pub fn read(&self, addr: u64, len: usize) -> Result<&[u8], ObjError> {
        self.section_at(addr)
            .and_then(|s| s.read(addr, len))
            .ok_or(ObjError::Unmapped { addr })
    }

    /// Read a little-endian u64 at a virtual address.
    ///
    /// # Errors
    ///
    /// [`ObjError::Unmapped`] when the range is not mapped.
    pub fn read_u64(&self, addr: u64) -> Result<u64, ObjError> {
        let b = self.read(addr, 8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Overwrite bytes at a virtual address.
    ///
    /// # Errors
    ///
    /// [`ObjError::Unmapped`] when the range is not fully inside one
    /// section.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), ObjError> {
        let sec = self.section_at_mut(addr).ok_or(ObjError::Unmapped { addr })?;
        if sec.write(addr, bytes) {
            Ok(())
        } else {
            Err(ObjError::Unmapped { addr })
        }
    }

    /// Write a little-endian u64 at a virtual address.
    ///
    /// # Errors
    ///
    /// [`ObjError::Unmapped`] when the range is not mapped.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), ObjError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Highest one-past-the-end address of any section (where new
    /// sections get appended).
    #[must_use]
    pub fn address_space_end(&self) -> u64 {
        self.sections.iter().map(Section::end).max().unwrap_or(0)
    }

    /// Sum of allocated section sizes — what binutils' `size` reports.
    /// The paper's "size increase" columns compare this before/after
    /// rewriting.
    #[must_use]
    pub fn loaded_size(&self) -> u64 {
        self.sections
            .iter()
            .filter(|s| s.flags().alloc)
            .map(|s| s.len() as u64)
            .sum()
    }

    /// Verify that no two allocated sections overlap.
    ///
    /// # Errors
    ///
    /// [`ObjError::OverlappingSections`] naming the first offending
    /// pair.
    pub fn validate_layout(&self) -> Result<(), ObjError> {
        let mut ranges: Vec<&Section> =
            self.sections.iter().filter(|s| s.flags().alloc && !s.is_empty()).collect();
        ranges.sort_by_key(|s| s.addr());
        for w in ranges.windows(2) {
            if w[0].end() > w[1].addr() {
                return Err(ObjError::OverlappingSections {
                    a: w[0].name().to_string(),
                    b: w[1].name().to_string(),
                });
            }
        }
        Ok(())
    }

    // ----- symbols --------------------------------------------------

    /// Add a symbol (kept sorted by address).
    pub fn add_symbol(&mut self, symbol: Symbol) {
        let pos = self.symbols.partition_point(|s| s.addr < symbol.addr);
        self.symbols.insert(pos, symbol);
    }

    /// All symbols, sorted by address.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Mutable access to the symbols (callers must preserve ordering).
    pub fn symbols_mut(&mut self) -> &mut Vec<Symbol> {
        &mut self.symbols
    }

    /// Function symbols, sorted by address.
    pub fn functions(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter().filter(|s| s.kind == SymbolKind::Func)
    }

    /// The function symbol whose range contains `addr`.
    #[must_use]
    pub fn function_at(&self, addr: u64) -> Option<&Symbol> {
        let pos = self.symbols.partition_point(|s| s.addr <= addr);
        self.symbols[..pos]
            .iter()
            .rev()
            .find(|s| s.kind == SymbolKind::Func && s.contains(addr))
    }

    /// The function symbol starting exactly at `addr`.
    #[must_use]
    pub fn function_starting_at(&self, addr: u64) -> Option<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.kind == SymbolKind::Func && s.addr == addr)
    }

    /// Look up a function by name.
    #[must_use]
    pub fn function_named(&self, name: &str) -> Option<&Symbol> {
        self.symbols
            .iter()
            .find(|s| s.kind == SymbolKind::Func && s.name == name)
    }

    // ----- relocations ----------------------------------------------

    /// Run-time (RELATIVE) relocations.
    pub fn runtime_relocations(&self) -> impl Iterator<Item = &Relocation> {
        self.relocations.iter().filter(|r| r.kind == RelocKind::Relative)
    }

    /// Whether an address is the site of a RELATIVE relocation.
    #[must_use]
    pub fn relocation_at(&self, addr: u64) -> Option<&Relocation> {
        self.relocations.iter().find(|r| r.at == addr)
    }

    // ----- convenience ----------------------------------------------

    /// The `.text` section.
    ///
    /// # Errors
    ///
    /// [`ObjError::NoSuchSection`] when the binary has no `.text`.
    pub fn text(&self) -> Result<&Section, ObjError> {
        self.section(names::TEXT)
            .ok_or_else(|| ObjError::NoSuchSection { name: names::TEXT.to_string() })
    }

    /// Sections retired to scratch space (renamed originals).
    pub fn scratch_sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter().filter(|s| s.kind() == SectionKind::Scratch)
    }

    /// Whether the binary actually *uses* exception handling: some
    /// unwind entry has call sites with landing pads. (Presence of C++
    /// code alone does not imply exception use.)
    #[must_use]
    pub fn uses_exceptions(&self) -> bool {
        self.unwind.entries().iter().any(|e| !e.call_sites.is_empty())
    }

    /// A one-line-per-section layout dump (used by the Figure 1
    /// regeneration binary).
    #[must_use]
    pub fn layout_dump(&self) -> String {
        let mut sorted: Vec<&Section> = self.sections.iter().collect();
        sorted.sort_by_key(|s| s.addr());
        let mut out = String::new();
        for s in sorted {
            out.push_str(&s.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::SectionFlags;

    fn bin() -> Binary {
        let mut b = Binary::new(Arch::X64);
        b.add_section(Section::new(
            names::TEXT,
            0x1000,
            vec![0; 0x100],
            SectionFlags::exec(),
            SectionKind::Text,
        ));
        b.add_section(Section::new(
            names::RODATA,
            0x2000,
            vec![0; 0x80],
            SectionFlags::ro(),
            SectionKind::ReadOnlyData,
        ));
        b.add_symbol(Symbol::func("b", 0x1080, 0x80, Language::C));
        b.add_symbol(Symbol::func("a", 0x1000, 0x80, Language::C));
        b
    }

    #[test]
    fn symbols_stay_sorted() {
        let b = bin();
        let names: Vec<&str> = b.functions().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn function_lookup() {
        let b = bin();
        assert_eq!(b.function_at(0x1000).unwrap().name, "a");
        assert_eq!(b.function_at(0x10FF).unwrap().name, "b");
        assert!(b.function_at(0x1100).is_none());
        assert_eq!(b.function_starting_at(0x1080).unwrap().name, "b");
        assert!(b.function_starting_at(0x1081).is_none());
        assert_eq!(b.function_named("b").unwrap().addr, 0x1080);
    }

    #[test]
    fn read_write_u64() {
        let mut b = bin();
        b.write_u64(0x2000, 0xDEAD_BEEF).unwrap();
        assert_eq!(b.read_u64(0x2000).unwrap(), 0xDEAD_BEEF);
        assert!(b.read_u64(0x3000).is_err());
        // Cross-section reads are rejected.
        assert!(b.read(0x10FC, 8).is_err());
    }

    #[test]
    fn loaded_size_counts_alloc_only() {
        let mut b = bin();
        assert_eq!(b.loaded_size(), 0x180);
        b.add_section(Section::new(
            ".debug",
            0x9000,
            vec![0; 0x1000],
            SectionFlags::unloaded(),
            SectionKind::ReadOnlyData,
        ));
        assert_eq!(b.loaded_size(), 0x180);
    }

    #[test]
    fn overlap_detection() {
        let mut b = bin();
        assert!(b.validate_layout().is_ok());
        b.add_section(Section::new(
            ".bad",
            0x1080,
            vec![0; 0x10],
            SectionFlags::ro(),
            SectionKind::Data,
        ));
        assert!(matches!(
            b.validate_layout(),
            Err(ObjError::OverlappingSections { .. })
        ));
    }

    #[test]
    fn metadata_feature_queries() {
        let mut m = Metadata::default();
        assert!(!m.has_exceptions());
        m.languages.insert(Language::Rust);
        assert!(m.has_exceptions());
        m.languages.insert(Language::Go);
        assert!(m.has_go_runtime());
    }
}

//! The DWARF-style unwind table (`.eh_frame` analog).
//!
//! Rewriting leaves this table untouched: its ranges describe the
//! *original* code layout. Runtime RA translation (§6 of the paper)
//! maps relocated return addresses back to original ones *before* the
//! unwinder consults this table, which is exactly why the table can
//! stay unmodified.

use serde::{Deserialize, Serialize};

/// Where a frame's return address lives while the function is on the
/// stack (post-prologue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaRule {
    /// RISC leaf functions: the return address is still in `lr`.
    LinkRegister,
    /// The return address was stored at `sp + offset`.
    StackSlot {
        /// Byte offset from the frame's steady-state stack pointer.
        offset: i64,
    },
}

/// One exception call-site record (LSDA analog): calls within
/// `[start, end)` whose exceptions this frame can catch resume at
/// `landing_pad`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CallSiteEntry {
    /// Start of the covered call-site range (link-time address).
    pub start: u64,
    /// One-past-the-end of the covered range.
    pub end: u64,
    /// Handler (catch-block) address control resumes at.
    pub landing_pad: u64,
}

/// Unwind recipe for one function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnwindEntry {
    /// Function start (link-time address).
    pub start: u64,
    /// One-past-the-end of the function.
    pub end: u64,
    /// Bytes the prologue subtracts from the stack pointer.
    pub frame_size: u64,
    /// Where the return address lives post-prologue.
    pub ra: RaRule,
    /// Exception call-site table; empty for functions that cannot
    /// catch.
    pub call_sites: Vec<CallSiteEntry>,
}

impl UnwindEntry {
    /// Whether `pc` falls inside this function's range.
    #[must_use]
    pub fn contains(&self, pc: u64) -> bool {
        pc >= self.start && pc < self.end
    }

    /// Landing pad for an exception raised while `pc` was the frame's
    /// resume address, if this frame catches it.
    #[must_use]
    pub fn landing_pad_for(&self, pc: u64) -> Option<u64> {
        self.call_sites
            .iter()
            .find(|cs| pc >= cs.start && pc < cs.end)
            .map(|cs| cs.landing_pad)
    }
}

/// The whole `.eh_frame` analog: per-function unwind recipes, sorted by
/// start address.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnwindTable {
    entries: Vec<UnwindEntry>,
}

impl UnwindTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> UnwindTable {
        UnwindTable::default()
    }

    /// Add an entry (keeps the table sorted by start address).
    pub fn push(&mut self, entry: UnwindEntry) {
        let pos = self.entries.partition_point(|e| e.start < entry.start);
        self.entries.insert(pos, entry);
    }

    /// Look up the recipe covering `pc`.
    ///
    /// Returns `None` for a PC the table does not describe — for a
    /// rewritten binary without RA translation this is precisely how
    /// unwinding through `.instr` return addresses fails.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> Option<&UnwindEntry> {
        let pos = self.entries.partition_point(|e| e.start <= pc);
        let e = self.entries.get(pos.checked_sub(1)?)?;
        e.contains(pc).then_some(e)
    }

    /// All entries, sorted by start address.
    #[must_use]
    pub fn entries(&self) -> &[UnwindEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start: u64, end: u64) -> UnwindEntry {
        UnwindEntry {
            start,
            end,
            frame_size: 32,
            ra: RaRule::StackSlot { offset: 24 },
            call_sites: vec![],
        }
    }

    #[test]
    fn lookup_sorted_insertion() {
        let mut t = UnwindTable::new();
        t.push(entry(0x2000, 0x3000));
        t.push(entry(0x1000, 0x2000));
        assert_eq!(t.entries()[0].start, 0x1000);
        assert_eq!(t.lookup(0x1FFF).unwrap().start, 0x1000);
        assert_eq!(t.lookup(0x2000).unwrap().start, 0x2000);
        assert!(t.lookup(0x3000).is_none());
        assert!(t.lookup(0x0FFF).is_none());
    }

    #[test]
    fn landing_pads() {
        let mut e = entry(0x1000, 0x2000);
        e.call_sites.push(CallSiteEntry { start: 0x1100, end: 0x1120, landing_pad: 0x1F00 });
        assert_eq!(e.landing_pad_for(0x1105), Some(0x1F00));
        assert_eq!(e.landing_pad_for(0x1120), None);
        assert_eq!(e.landing_pad_for(0x1000), None);
    }

    #[test]
    fn lookup_gap_between_entries() {
        let mut t = UnwindTable::new();
        t.push(entry(0x1000, 0x1100));
        t.push(entry(0x2000, 0x2100));
        assert!(t.lookup(0x1800).is_none());
    }
}

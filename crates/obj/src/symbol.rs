//! Symbols: named address ranges, mainly functions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Source language a function was (notionally) compiled from. Drives
/// which language-runtime features the emulator exercises and which
/// failure modes baseline rewriters hit.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Language {
    /// Plain C: no unwinding requirements.
    C,
    /// C++: may throw/catch exceptions through the DWARF-style unwinder.
    Cpp,
    /// Fortran: computed gotos but no unwinding requirements.
    Fortran,
    /// Rust: like C++ for unwinding purposes, plus symbol versioning.
    Rust,
    /// Go: the language runtime itself walks the stack (traceback).
    Go,
}

/// What a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymbolKind {
    /// A function (an instrumentation unit for the rewriter).
    Func,
    /// A data object.
    Object,
}

/// Per-function attributes that analyses and the emulator consult.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymbolAttrs {
    /// Function may participate in C++-style exception handling
    /// (has unwind call-site entries with landing pads).
    pub has_eh: bool,
    /// Registered in `.fini_array` (runs during finalization; the
    /// Firefox experiment's `dir`-mode failure involves trap
    /// trampolines in such functions).
    pub is_finalizer: bool,
    /// Part of the Go runtime's traceback machinery
    /// (`runtime.findfunc` / `runtime.pcvalue` analogs); the rewriter
    /// instruments these entries with RA translation.
    pub is_go_traceback: bool,
}

/// A named address range in the binary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Symbol {
    /// Symbol name; empty for stripped locals.
    pub name: String,
    /// Start virtual address (link-time).
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Kind of entity named.
    pub kind: SymbolKind,
    /// Source language of the defining compilation unit.
    pub language: Language,
    /// Extra per-function attributes.
    pub attrs: SymbolAttrs,
}

impl Symbol {
    /// Construct a function symbol.
    #[must_use]
    pub fn func(name: impl Into<String>, addr: u64, size: u64, language: Language) -> Symbol {
        Symbol {
            name: name.into(),
            addr,
            size,
            kind: SymbolKind::Func,
            language,
            attrs: SymbolAttrs::default(),
        }
    }

    /// Construct a data-object symbol.
    #[must_use]
    pub fn object(name: impl Into<String>, addr: u64, size: u64) -> Symbol {
        Symbol {
            name: name.into(),
            addr,
            size,
            kind: SymbolKind::Object,
            language: Language::C,
            attrs: SymbolAttrs::default(),
        }
    }

    /// One-past-the-end address.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.addr + self.size
    }

    /// Whether `addr` lies inside the symbol's range.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x}..{:#010x} {:?} {}",
            self.addr,
            self.end(),
            self.kind,
            if self.name.is_empty() { "<stripped>" } else { &self.name }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges() {
        let s = Symbol::func("f", 0x1000, 0x40, Language::Cpp);
        assert!(s.contains(0x1000));
        assert!(s.contains(0x103F));
        assert!(!s.contains(0x1040));
        assert_eq!(s.end(), 0x1040);
    }

    #[test]
    fn stripped_display() {
        let s = Symbol::func("", 0x1000, 8, Language::C);
        assert!(s.to_string().contains("<stripped>"));
    }
}

//! The graceful-degradation ladder: verify-driven per-function mode
//! lowering.
//!
//! A rewrite under a faulty analysis can be unsound — dropped
//! jump-table targets, corrupt liveness, latent analysis bugs. Instead
//! of shipping an unsound binary or aborting the whole rewrite, the
//! ladder runs a counterexample-guided loop:
//!
//! ```text
//!   full(func-ptr) ──► full(jt) ──► full(dir) ──► trap-only ──► skip
//! ```
//!
//! Each round rewrites, verifies with [`verify_rewrite`] (the strict
//! re-analysis is the oracle), attributes every error diagnostic to
//! the function it occurred in, and lowers each offending function one
//! rung. The loop converges because ranks strictly decrease and are
//! bounded below by skip; a round with errors but no attributable
//! victim is [`LadderError::NoConvergence`].
//!
//! Every function's journey is recorded as a [`FuncDisposition`]
//! (requested mode, achieved mode, the steps taken and why), and the
//! configured [`DegradationPolicy`](icfgp_core::DegradationPolicy)
//! turns the count of functions below the floor into a pass/fail
//! budget verdict.

use crate::{verify_rewrite, VerifyError, VerifyReport};
use icfgp_cfg::AnalysisFailure;
use icfgp_core::journal::{JournalDemotion, JournalReplay, RoundRecord, RunJournal};
use icfgp_core::{
    apply_audit_gate, FuncMode, GateSummary, Instrumentation, RewriteCache, RewriteConfig,
    RewriteError, RewriteOutcome, RewriteStats, Rewriter, SkipReason, SpanKind, TraceEvent,
};
use icfgp_obj::Binary;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Upper bound on verify→lower→rewrite rounds. Each round lowers every
/// offending function at least one rung and there are five rungs, so
/// any converging ladder finishes well within this.
pub const MAX_ROUNDS: usize = 12;

/// One rung descent of one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderStep {
    /// Mode before the step.
    pub from: FuncMode,
    /// Mode after the step.
    pub to: FuncMode,
    /// The verifier diagnostic that forced the step.
    pub reason: String,
}

/// What finally happened to one point-selected function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncDisposition {
    /// Function entry address.
    pub entry: u64,
    /// The mode originally requested for it.
    pub requested: FuncMode,
    /// The mode it was actually rewritten under in the final round.
    pub achieved: FuncMode,
    /// Ladder steps taken, in order.
    pub steps: Vec<LadderStep>,
    /// The analysis failure, for functions skipped by analysis.
    pub failure: Option<AnalysisFailure>,
}

/// Result of a converged ladder run.
#[derive(Debug, Clone)]
pub struct LadderOutcome {
    /// The final (verified-clean) rewrite.
    pub outcome: RewriteOutcome,
    /// The final verification report (zero errors).
    pub verify: VerifyReport,
    /// Per-function dispositions, by entry address.
    pub dispositions: Vec<FuncDisposition>,
    /// Rewrite→verify rounds executed (1 = clean first try).
    pub rounds: usize,
    /// Functions whose achieved mode is below the policy floor.
    pub below_floor: usize,
    /// Whether `below_floor` exceeds the configured error budget.
    pub budget_exceeded: bool,
    /// Per-round cache counters and timings, in round order. With a
    /// shared [`RewriteCache`], rounds after the first re-analyse
    /// nothing and re-rewrite only the demoted functions.
    pub round_stats: Vec<RewriteStats>,
    /// The predictive-gate summary, when `config.audit_gate` was set:
    /// the audit verdicts and every starting rung the gate installed
    /// before round one.
    pub gate: Option<GateSummary>,
    /// Rounds replayed from a journal instead of executed (0 for a
    /// cold run). `rounds` includes them, so a resumed run reports the
    /// same total as its uninterrupted twin while having executed only
    /// `rounds - resumed_rounds` of them.
    pub resumed_rounds: usize,
}

impl LadderOutcome {
    /// Whether every function achieved its requested mode.
    #[must_use]
    pub fn fully_clean(&self) -> bool {
        self.dispositions.iter().all(|d| d.achieved == d.requested)
    }

    /// Dispositions that degraded below their request.
    pub fn degraded(&self) -> impl Iterator<Item = &FuncDisposition> {
        self.dispositions.iter().filter(|d| d.achieved < d.requested)
    }
}

/// Why the ladder could not produce a verified rewrite at all.
#[derive(Debug, Clone, PartialEq)]
pub enum LadderError {
    /// The rewriter itself failed (unencodable construct etc.); there
    /// is no output binary to degrade.
    Rewrite(RewriteError),
    /// Verification could not run (missing artifacts).
    Verify(VerifyError),
    /// A round still had errors but none could be attributed to a
    /// lowerable function.
    NoConvergence {
        /// Rounds executed before giving up.
        rounds: usize,
        /// The error diagnostics that remained.
        remaining_errors: Vec<String>,
    },
    /// The run was deliberately aborted by the supervisor's
    /// [`Supervisor::abort_after_rounds`] knob after journaling and
    /// flushing — the chaos kill campaign's in-process stand-in for
    /// SIGKILL at a journal boundary. Resume with the journal to
    /// finish the run.
    Interrupted {
        /// Total rounds journaled (replayed + executed) before the
        /// abort.
        rounds: usize,
    },
}

impl fmt::Display for LadderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadderError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
            LadderError::Verify(e) => write!(f, "verification could not run: {e}"),
            LadderError::NoConvergence { rounds, remaining_errors } => write!(
                f,
                "ladder did not converge after {rounds} rounds; {} unattributable error(s)",
                remaining_errors.len()
            ),
            LadderError::Interrupted { rounds } => write!(
                f,
                "run interrupted after {rounds} journaled round(s); resume to finish"
            ),
        }
    }
}

impl std::error::Error for LadderError {}

impl From<RewriteError> for LadderError {
    fn from(e: RewriteError) -> LadderError {
        LadderError::Rewrite(e)
    }
}

impl From<VerifyError> for LadderError {
    fn from(e: VerifyError) -> LadderError {
        LadderError::Verify(e)
    }
}

/// Rewrite `binary` under `config`, verify, and degrade per function
/// until the verifier reports zero errors.
///
/// When `config.fault_plan` is set it is armed against the binary
/// first (this is how chaos campaigns enter). Artifact collection is
/// forced on — the verifier is the ladder's oracle.
///
/// # Errors
///
/// [`LadderError`] when no verified rewrite can be produced at all;
/// *degradation* is not an error (inspect
/// [`LadderOutcome::budget_exceeded`] for the policy verdict).
pub fn rewrite_with_ladder(
    binary: &Binary,
    config: &RewriteConfig,
    instr: &Instrumentation,
) -> Result<LadderOutcome, LadderError> {
    rewrite_with_ladder_cached(binary, config, instr, &RewriteCache::new())
}

/// [`rewrite_with_ladder`] with an explicit [`RewriteCache`].
///
/// The cache is shared across every round: demoting a function changes
/// only that function's cache keys, so each subsequent round re-does
/// per-function work for the demoted functions alone and serves every
/// untouched function from the cache (analysis is shared wholesale —
/// ladder rungs never change the [`icfgp_cfg::AnalysisConfig`]). Pass
/// the same cache across seeds or related binaries to share further.
///
/// # Errors
///
/// As [`rewrite_with_ladder`].
pub fn rewrite_with_ladder_cached(
    binary: &Binary,
    config: &RewriteConfig,
    instr: &Instrumentation,
    cache: &RewriteCache,
) -> Result<LadderOutcome, LadderError> {
    rewrite_with_ladder_supervised(binary, config, instr, cache, &Supervisor::default())
}

/// Supervision controls for [`rewrite_with_ladder_supervised`]. The
/// default supervisor journals nothing, resumes nothing, and never
/// aborts — identical to [`rewrite_with_ladder_cached`].
#[derive(Debug, Default)]
pub struct Supervisor<'a> {
    /// Append one [`RoundRecord`] per completed round (after the
    /// round's store flush) and a completion record at the end.
    /// Journal I/O failures are absorbed — supervision is best-effort
    /// and must never fail an otherwise sound rewrite.
    pub journal: Option<&'a RunJournal>,
    /// Replay these journaled rounds instead of executing them: their
    /// demotions are applied to the starting configuration and their
    /// steps folded into the dispositions, so a resumed run converges
    /// to byte-identical output and identical [`FuncDisposition`]s.
    /// The caller is responsible for fingerprint-matching the journal
    /// to `(binary, config)` first.
    pub resume: Option<&'a JournalReplay>,
    /// Abort with [`LadderError::Interrupted`] after this many rounds
    /// have been executed *in this process* — each already journaled
    /// and flushed, so the abort lands exactly at a journal boundary
    /// (the chaos kill campaign's deterministic stand-in for SIGKILL).
    pub abort_after_rounds: Option<usize>,
}

/// [`rewrite_with_ladder_cached`] under a [`Supervisor`]: per-round
/// journaling + store flushing, resume-from-journal, and deterministic
/// abort for kill campaigns.
///
/// Every round — not just the clean last one — flushes the attached
/// store before its journal record is written, so a run killed at any
/// journal boundary leaves a warm store and a resumed run re-does
/// strictly less work than a cold one.
///
/// # Errors
///
/// As [`rewrite_with_ladder`], plus [`LadderError::Interrupted`] when
/// the supervisor's abort knob fires.
pub fn rewrite_with_ladder_supervised(
    binary: &Binary,
    config: &RewriteConfig,
    instr: &Instrumentation,
    cache: &RewriteCache,
    supervisor: &Supervisor<'_>,
) -> Result<LadderOutcome, LadderError> {
    let mut cfg = config.clone();
    cfg.collect_artifacts = true;
    if let Some(plan) = cfg.fault_plan.clone() {
        plan.arm_cached(binary, &mut cfg, cache);
    }
    // Predictive gating runs *after* the fault plan is armed, so the
    // audit grades the injected faults the verifier will catch and the
    // ladder starts each function at a statically justified rung.
    let gate = cfg
        .audit_gate
        .then(|| apply_audit_gate(binary, &mut cfg, cache));
    let mut steps: BTreeMap<u64, Vec<LadderStep>> = BTreeMap::new();
    let mut round_stats: Vec<RewriteStats> = Vec::new();

    // Replay journaled rounds: the demotions they recorded are applied
    // up front (over the gate's starting rungs, exactly as the
    // interrupted run applied them), and the loop continues from the
    // next round number.
    let replayed = supervisor.resume.map_or(0, |r| r.rounds.len());
    if let Some(replay) = supervisor.resume {
        for d in replay.demotions() {
            steps.entry(d.entry).or_default().push(LadderStep {
                from: d.from,
                to: d.to,
                reason: d.reason.clone(),
            });
            cfg.func_modes.insert(d.entry, d.to);
        }
    }

    let trace = cache.trace();
    for round in replayed + 1..=MAX_ROUNDS {
        let round_span = trace.span(SpanKind::Round { round: round as u32 });
        let outcome = Rewriter::new(cfg.clone()).rewrite_cached(binary, instr, cache)?;
        round_stats.push(outcome.stats);
        let verify = verify_rewrite(binary, &outcome, &cfg)?;
        if verify.is_clean() {
            // Persist everything this ladder computed (no-op without
            // an attached store) before handing the outcome back, so a
            // later process starts warm even if this one never exits
            // cleanly.
            cache.flush_store();
            if let Some(journal) = supervisor.journal {
                // The clean round gets a (demotion-free) record of its
                // own before the completion marker, so a journal's
                // round count always matches the run's and a load can
                // cross-check the completion record against it.
                let _ = journal
                    .append_round(&RoundRecord { round: round as u32, demotions: Vec::new() });
                trace.emit(TraceEvent::JournalAppend { round: round as u32 });
                let _ = journal.append_complete(round as u32);
            }
            round_span.close();
            return Ok(finish(
                config,
                &cfg,
                outcome,
                verify,
                steps,
                round,
                round_stats,
                gate,
                replayed,
            ));
        }

        // Attribute each error to the function it belongs to.
        let artifacts = outcome.artifacts.as_ref().expect("collect_artifacts forced on");
        let mut victims: BTreeMap<u64, String> = BTreeMap::new();
        let mut unattributed: Vec<String> = Vec::new();
        for d in verify.errors() {
            let owner = binary.function_at(d.addr).map(|s| s.addr).or_else(|| {
                // Relocated-side addresses: find the plan that placed
                // the patch, trampoline or trap entry.
                artifacts
                    .plans
                    .iter()
                    .find(|(_, p)| {
                        p.patches
                            .iter()
                            .any(|pa| d.addr >= pa.addr && d.addr < pa.addr + pa.bytes.len() as u64)
                            || p.trampolines.iter().any(|t| t.block == d.addr || t.target == d.addr)
                            || p.trap_entries.iter().any(|(a, t)| *a == d.addr || *t == d.addr)
                    })
                    .map(|(e, _)| *e)
                    .or_else(|| {
                        // Clone-side addresses map back through the
                        // dispatching jump.
                        artifacts
                            .clones
                            .iter()
                            .find(|c| {
                                let end =
                                    c.clone_addr + c.count * u64::from(c.clone_entry_width);
                                d.addr == c.jump_addr
                                    || d.addr == c.table_addr
                                    || (d.addr >= c.clone_addr && d.addr < end)
                            })
                            .and_then(|c| binary.function_at(c.jump_addr).map(|s| s.addr))
                    })
            });
            match owner {
                Some(entry) => {
                    victims.entry(entry).or_insert_with(|| d.to_string());
                }
                None => unattributed.push(d.to_string()),
            }
        }

        // Lower each victim one rung; a victim already at skip cannot
        // go lower.
        let mut lowered = false;
        let mut demotions: Vec<JournalDemotion> = Vec::new();
        for (entry, reason) in victims {
            let cur = cfg.func_mode(entry);
            let Some(next) = cur.lower() else {
                unattributed.push(format!("{entry:#x} already at {cur}, cannot lower: {reason}"));
                continue;
            };
            steps
                .entry(entry)
                .or_default()
                .push(LadderStep { from: cur, to: next, reason: reason.clone() });
            trace.emit(TraceEvent::Demotion {
                entry,
                round: round as u32,
                from: cur.to_string(),
                to: next.to_string(),
            });
            demotions.push(JournalDemotion { entry, from: cur, to: next, reason });
            cfg.func_modes.insert(entry, next);
            lowered = true;
        }
        if !lowered {
            return Err(LadderError::NoConvergence {
                rounds: round,
                remaining_errors: unattributed,
            });
        }
        // Persist the round's per-function results *before* journaling
        // it: a journal record must never acknowledge work the store
        // has not seen, or a resume would redo it (correct, but not
        // "strictly fewer functions").
        cache.flush_store();
        if let Some(journal) = supervisor.journal {
            let _ = journal.append_round(&RoundRecord {
                round: round as u32,
                demotions,
            });
            trace.emit(TraceEvent::JournalAppend { round: round as u32 });
        }
        round_span.close();
        if supervisor.abort_after_rounds.is_some_and(|k| round - replayed >= k) {
            return Err(LadderError::Interrupted { rounds: round });
        }
    }
    Err(LadderError::NoConvergence {
        rounds: MAX_ROUNDS,
        remaining_errors: vec!["round limit reached with errors remaining".into()],
    })
}

/// Build the final outcome: dispositions from the last round's
/// artifacts and skip records, plus the policy verdict.
#[allow(clippy::too_many_arguments)]
fn finish(
    requested_cfg: &RewriteConfig,
    final_cfg: &RewriteConfig,
    outcome: RewriteOutcome,
    verify: VerifyReport,
    mut steps: BTreeMap<u64, Vec<LadderStep>>,
    rounds: usize,
    round_stats: Vec<RewriteStats>,
    gate: Option<GateSummary>,
    resumed_rounds: usize,
) -> LadderOutcome {
    let artifacts = outcome.artifacts.as_ref().expect("collect_artifacts forced on");
    let failures: BTreeMap<u64, AnalysisFailure> = outcome
        .report
        .skipped
        .iter()
        .filter_map(|(e, r)| match r {
            SkipReason::AnalysisFailed(f) => Some((*e, f.clone())),
            _ => None,
        })
        .collect();
    let demoted_to_skip: BTreeSet<u64> = outcome
        .report
        .skipped
        .iter()
        .filter(|(_, r)| *r == SkipReason::Demoted)
        .map(|(e, _)| *e)
        .collect();
    let mut dispositions: Vec<FuncDisposition> = artifacts
        .func_modes
        .iter()
        .map(|(entry, achieved)| FuncDisposition {
            entry: *entry,
            requested: requested_cfg.func_mode(*entry),
            achieved: *achieved,
            steps: steps.remove(entry).unwrap_or_default(),
            failure: failures.get(entry).cloned(),
        })
        .collect();
    // Functions the ladder demoted to skip drop out of func_modes only
    // if never selected; make sure they are represented.
    for entry in demoted_to_skip {
        if !dispositions.iter().any(|d| d.entry == entry) {
            dispositions.push(FuncDisposition {
                entry,
                requested: requested_cfg.func_mode(entry),
                achieved: FuncMode::Skip,
                steps: steps.remove(&entry).unwrap_or_default(),
                failure: None,
            });
        }
    }
    dispositions.sort_by_key(|d| d.entry);
    let below_floor = dispositions
        .iter()
        .filter(|d| d.achieved < final_cfg.degradation.floor)
        .count();
    let budget_exceeded =
        final_cfg.degradation.exceeded(below_floor, dispositions.len());
    LadderOutcome {
        outcome,
        verify,
        dispositions,
        rounds,
        below_floor,
        budget_exceeded,
        round_stats,
        gate,
        resumed_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_core::{FaultPlan, Points, RewriteMode};
    use icfgp_isa::Arch;

    fn small(arch: Arch, seed: u64) -> Binary {
        icfgp_workloads::generate(&icfgp_workloads::GenParams::small("ladder", arch, seed)).binary
    }

    #[test]
    fn clean_binary_converges_in_one_round() {
        let bin = small(Arch::X64, 7);
        let cfg = RewriteConfig::new(RewriteMode::FuncPtr);
        let out =
            rewrite_with_ladder(&bin, &cfg, &Instrumentation::empty(Points::EveryBlock)).unwrap();
        assert_eq!(out.rounds, 1);
        assert!(out.fully_clean(), "{:#?}", out.degraded().collect::<Vec<_>>());
        assert!(!out.budget_exceeded);
        assert!(out.verify.is_clean());
    }

    #[test]
    fn faulted_rewrite_degrades_but_verifies() {
        let bin = small(Arch::X64, 7);
        let mut cfg = RewriteConfig::new(RewriteMode::FuncPtr);
        cfg.fault_plan = Some(FaultPlan::aggressive(3));
        let out =
            rewrite_with_ladder(&bin, &cfg, &Instrumentation::empty(Points::EveryBlock)).unwrap();
        assert!(out.verify.is_clean(), "final round must verify with zero errors");
        // Aggressive faults guarantee at least one function degraded
        // or analysis-skipped.
        assert!(
            out.degraded().count() > 0 || out.dispositions.iter().any(|d| d.failure.is_some()),
            "{:#?}",
            out.dispositions
        );
        // Monotone: achieved never exceeds requested.
        for d in &out.dispositions {
            assert!(d.achieved <= d.requested, "{d:#?}");
            for s in &d.steps {
                assert!(s.to < s.from, "{s:?} must strictly descend");
            }
        }
    }

    #[test]
    fn dispositions_serialise() {
        let d = FuncDisposition {
            entry: 0x1000,
            requested: FuncMode::Full(RewriteMode::FuncPtr),
            achieved: FuncMode::TrapOnly,
            steps: vec![LadderStep {
                from: FuncMode::Full(RewriteMode::FuncPtr),
                to: FuncMode::Full(RewriteMode::Jt),
                reason: "clobber".into(),
            }],
            failure: None,
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: FuncDisposition = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}

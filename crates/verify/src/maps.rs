//! Runtime-map well-formedness: `.ra_map` and `.trap_map` must parse,
//! round-trip, agree with the rewriter's in-memory state, be injective
//! where the runtime needs them to be, and point at the right regions.

use crate::report::{Check, Severity, VerifyReport};
use icfgp_core::{RewriteArtifacts, RewriteConfig, RewriteOutcome, TrampolineKind, UnwindStrategy};
use icfgp_obj::{names, RaMap, TrapMap};
use std::collections::BTreeSet;

/// Check both runtime maps.
pub fn check_maps(
    outcome: &RewriteOutcome,
    artifacts: &RewriteArtifacts,
    config: &RewriteConfig,
    report: &mut VerifyReport,
) {
    check_ra_map(outcome, artifacts, config, report);
    check_trap_map(outcome, artifacts, report);
}

fn check_ra_map(
    outcome: &RewriteOutcome,
    artifacts: &RewriteArtifacts,
    config: &RewriteConfig,
    report: &mut VerifyReport,
) {
    let sec = outcome.binary.section(names::RA_MAP);
    if config.unwind == UnwindStrategy::None {
        return;
    }
    let Some(sec) = sec else {
        if !artifacts.ra_map.is_empty() {
            report.push(
                Severity::Error,
                Check::MapWellFormed,
                0,
                format!(
                    "rewriter recorded {} return-address pairs but emitted no `.ra_map`",
                    artifacts.ra_map.len()
                ),
            );
        }
        return;
    };
    let Some(parsed) = RaMap::from_bytes(sec.data()) else {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            sec.addr(),
            "`.ra_map` does not parse".into(),
        );
        return;
    };
    if parsed != artifacts.ra_map {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            sec.addr(),
            "emitted `.ra_map` disagrees with the rewriter's records".into(),
        );
    }
    if parsed.to_bytes() != sec.data() {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            sec.addr(),
            "`.ra_map` does not round-trip (trailing or non-canonical bytes)".into(),
        );
    }
    for k in parsed.conflicting_keys() {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            k,
            format!("`.ra_map` maps relocated address {k:#x} to two different originals"),
        );
    }
    for v in parsed.colliding_values() {
        // Legitimate when payload insertion splits one original call
        // site, so a warning, not an error.
        report.push(
            Severity::Warning,
            Check::MapWellFormed,
            v,
            format!("`.ra_map` is not injective: original {v:#x} has several relocated keys"),
        );
    }
    let (ilo, ihi) = artifacts.instr_range;
    let new_region_start = artifacts.clone_range.0.min(ilo);
    for (k, v) in parsed.pairs() {
        // Keys are *return* addresses, so the end of `.instr` is a
        // legal key (a call as the very last relocated instruction).
        if !(ilo..=ihi).contains(k) {
            report.push(
                Severity::Error,
                Check::MapWellFormed,
                *k,
                format!("`.ra_map` key {k:#x} is outside `.instr`"),
            );
        }
        if *v >= new_region_start {
            report.push(
                Severity::Error,
                Check::MapWellFormed,
                *v,
                format!("`.ra_map` value {v:#x} is not an original-code address"),
            );
        }
    }
}

fn check_trap_map(
    outcome: &RewriteOutcome,
    artifacts: &RewriteArtifacts,
    report: &mut VerifyReport,
) {
    let sec = outcome.binary.section(names::TRAP_MAP);
    let Some(sec) = sec else {
        if !artifacts.trap_map.is_empty() {
            report.push(
                Severity::Error,
                Check::MapWellFormed,
                0,
                format!(
                    "rewriter recorded {} trap entries but emitted no `.trap_map`",
                    artifacts.trap_map.len()
                ),
            );
        }
        return;
    };
    let Some(parsed) = TrapMap::from_bytes(sec.data()) else {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            sec.addr(),
            "`.trap_map` does not parse".into(),
        );
        return;
    };
    if parsed != artifacts.trap_map {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            sec.addr(),
            "emitted `.trap_map` disagrees with the rewriter's records".into(),
        );
    }
    if parsed.to_bytes() != sec.data() {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            sec.addr(),
            "`.trap_map` does not round-trip".into(),
        );
    }
    for k in parsed.conflicting_keys() {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            k,
            format!("`.trap_map` maps trap {k:#x} to two different targets"),
        );
    }
    // The trap handler resolves a faulting PC to exactly one target, so
    // keys must be the exact set of trap-trampoline blocks.
    let trap_blocks: BTreeSet<u64> = artifacts
        .plans
        .iter()
        .flat_map(|(_, plan)| {
            plan.trampolines
                .iter()
                .filter(|t| t.kind == TrampolineKind::Trap)
                .map(|t| t.block)
        })
        .collect();
    let keys: BTreeSet<u64> = parsed.pairs().iter().map(|(k, _)| *k).collect();
    for k in keys.difference(&trap_blocks) {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            *k,
            format!("`.trap_map` entry {k:#x} has no trap trampoline"),
        );
    }
    for b in trap_blocks.difference(&keys) {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            *b,
            format!("trap trampoline at {b:#x} is missing from `.trap_map`"),
        );
    }
    let (ilo, ihi) = artifacts.instr_range;
    let new_region_start = artifacts.clone_range.0.min(ilo);
    for (k, v) in parsed.pairs() {
        if *k >= new_region_start {
            report.push(
                Severity::Error,
                Check::MapWellFormed,
                *k,
                format!("`.trap_map` key {k:#x} is not an original-code address"),
            );
        }
        if !(ilo..ihi).contains(v) {
            report.push(
                Severity::Error,
                Check::MapWellFormed,
                *v,
                format!("`.trap_map` target {v:#x} is outside `.instr`"),
            );
        }
        if outcome.block_map.get(k) != Some(v) {
            report.push(
                Severity::Error,
                Check::MapWellFormed,
                *k,
                format!("`.trap_map` target for {k:#x} disagrees with the block map"),
            );
        }
    }
}

//! Jump-table clone checks: coverage (every strict target present —
//! the table-specific side of under-approximation), placement (clones
//! live inside `.jt_clone` and never alias the original table), and
//! content (each entry resolves to the relocated target).

use crate::report::{Check, Severity, VerifyReport};
use icfgp_cfg::{BinaryAnalysis, FuncStatus, JumpTableDesc};
use icfgp_core::{
    table_cloneable, CloneSummary, RewriteArtifacts, RewriteConfig, RewriteMode, RewriteOutcome,
};
use icfgp_obj::{names, Binary};

/// Check every cloned jump table against the strict re-analysis.
pub fn check_clones(
    original: &Binary,
    outcome: &RewriteOutcome,
    artifacts: &RewriteArtifacts,
    strict: &BinaryAnalysis,
    config: &RewriteConfig,
    report: &mut VerifyReport,
) {
    if !config.clone_tables {
        return;
    }
    let instrumented: Vec<u64> = artifacts.plans.iter().map(|(e, _)| *e).collect();
    let jt_clone = outcome.binary.section(names::JT_CLONE);
    for c in &artifacts.clones {
        report.clones_checked += 1;
        check_placement(original, outcome, artifacts, c, jt_clone, report);
    }
    // Coverage + content, per strict table of each instrumented
    // function the strict pass can analyse. Functions the ladder
    // demoted below `jt` keep their original (uncloned) tables; their
    // targets are covered by the CFL-completeness check instead.
    for entry in &instrumented {
        if !matches!(config.rewrite_mode_for(*entry), Some(m) if m >= RewriteMode::Jt) {
            continue;
        }
        let Some(func) = strict.funcs.get(entry).filter(|f| f.status == FuncStatus::Ok) else {
            continue;
        };
        for desc in &func.jump_tables {
            if !table_cloneable(func, desc) {
                // Targets of uncloneable tables stay CFL blocks; the
                // CFL-completeness check covers them.
                continue;
            }
            let Some(c) = artifacts.clones.iter().find(|c| c.jump_addr == desc.jump_addr)
            else {
                report.push(
                    Severity::Error,
                    Check::CflCompleteness,
                    desc.jump_addr,
                    format!("cloneable table at {:#x} was not cloned", desc.table_addr),
                );
                continue;
            };
            check_coverage(outcome, c, desc, report);
        }
    }
}

/// Clone range containment and original-table preservation.
fn check_placement(
    original: &Binary,
    outcome: &RewriteOutcome,
    artifacts: &RewriteArtifacts,
    c: &CloneSummary,
    jt_clone: Option<&icfgp_obj::Section>,
    report: &mut VerifyReport,
) {
    let clone_end = c.clone_addr + c.count * u64::from(c.clone_entry_width);
    let contained = jt_clone
        .is_some_and(|sec| c.clone_addr >= sec.addr() && clone_end <= sec.end());
    if !contained {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            c.clone_addr,
            format!(
                "clone of table {:#x} ([{:#x}, {clone_end:#x})) is not inside `.jt_clone`",
                c.table_addr, c.clone_addr
            ),
        );
    }
    let (lo, hi) = artifacts.clone_range;
    if !(c.clone_addr >= lo && clone_end <= hi) {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            c.clone_addr,
            format!("clone [{:#x}, {clone_end:#x}) escapes the clone region", c.clone_addr),
        );
    }
    let orig_len = c.count * u64::from(c.orig_entry_width);
    let orig_end = c.table_addr + orig_len;
    if c.clone_addr < orig_end && c.table_addr < clone_end {
        report.push(
            Severity::Error,
            Check::MapWellFormed,
            c.clone_addr,
            format!("clone aliases the original table at {:#x}", c.table_addr),
        );
    }
    // Cloning must never edit the original in place: other (unselected
    // or failed) functions may still dispatch through it. In-text
    // tables of rewritten functions are exempt — their bytes become
    // donated scratch space.
    if !c.in_text {
        let before = original.read(c.table_addr, orig_len as usize);
        let after = outcome.binary.read(c.table_addr, orig_len as usize);
        match (before, after) {
            (Ok(b), Ok(a)) if b != a => report.push(
                Severity::Error,
                Check::MapWellFormed,
                c.table_addr,
                format!("original table at {:#x} was modified in place", c.table_addr),
            ),
            _ => {}
        }
    }
}

/// Every strict target must be representable in the clone and its
/// entry must decode back to the target's relocated address.
fn check_coverage(
    outcome: &RewriteOutcome,
    c: &CloneSummary,
    desc: &JumpTableDesc,
    report: &mut VerifyReport,
) {
    let resolve = |target: u64| -> u64 {
        outcome
            .block_map
            .get(&target)
            .or_else(|| outcome.inst_map.get(&target))
            .copied()
            .unwrap_or(target)
    };
    let width = usize::from(c.clone_entry_width);
    for (idx, target) in &desc.targets {
        if *idx >= c.count {
            report.push(
                Severity::Error,
                Check::CflCompleteness,
                desc.jump_addr,
                format!(
                    "table at {:#x}: entry {idx} -> {target:#x} was dropped from the clone \
                     (clone has {} entries, strict analysis found {})",
                    desc.table_addr, c.count, desc.count
                ),
            );
            continue;
        }
        let expected = c.kind.entry_for(resolve(*target), c.clone_addr);
        let slot = c.clone_addr + idx * width as u64;
        match outcome.binary.read(slot, width) {
            Ok(bytes) if bytes == &expected.to_le_bytes()[..width] => {}
            Ok(_) => report.push(
                Severity::Error,
                Check::MapWellFormed,
                slot,
                format!(
                    "clone entry {idx} of table {:#x} does not resolve to the relocated \
                     target of {target:#x}",
                    desc.table_addr
                ),
            ),
            Err(e) => report.push(
                Severity::Error,
                Check::MapWellFormed,
                slot,
                format!("clone entry {idx} is unreadable: {e}"),
            ),
        }
    }
    if c.count > desc.count {
        report.push(
            Severity::Warning,
            Check::OverApproximation,
            desc.jump_addr,
            format!(
                "clone of table {:#x} carries {} surplus entries (over-approximated count)",
                c.table_addr,
                c.count - desc.count
            ),
        );
    }
}

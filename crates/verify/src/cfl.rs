//! CFL-completeness checks: every block where original-code execution
//! can land must have a trampoline.
//!
//! The verifier independently recomputes the maximally conservative
//! CFL set from a *strict* re-analysis of the original binary
//! (heuristics off, injected faults cleared) and compares it with the
//! trampolines the rewriter actually placed. A CFL block with no
//! trampoline is the under-approximation failure class (§5.1 /
//! Figure 2): execution would land in poisoned original code.
//! Trampolines beyond the strict set are over-approximation — safe but
//! wasteful — and are reported as warnings.

use crate::report::{Check, Severity, VerifyReport};
use icfgp_cfg::{BinaryAnalysis, FuncStatus};
use icfgp_core::{
    effective_cfl_blocks, FuncMode, RewriteArtifacts, RewriteConfig, RewriteOutcome, SkipReason,
};
use std::collections::BTreeSet;

/// Check trampoline coverage of the strict CFL set, per function.
pub fn check_cfl(
    outcome: &RewriteOutcome,
    artifacts: &RewriteArtifacts,
    strict: &BinaryAnalysis,
    config: &RewriteConfig,
    report: &mut VerifyReport,
) {
    for (entry, plan) in &artifacts.plans {
        let Some(func) = strict.funcs.get(entry).filter(|f| f.status == FuncStatus::Ok) else {
            report.functions_skipped += 1;
            report.push(
                Severity::Info,
                Check::SkippedFunction,
                *entry,
                "strict re-analysis cannot handle this function; CFL completeness not checked"
                    .into(),
            );
            continue;
        };
        report.functions_checked += 1;
        let trap_only = config.func_mode(*entry) == FuncMode::TrapOnly;
        let expected = effective_cfl_blocks(func, config);
        let placed: BTreeSet<u64> = plan.trampolines.iter().map(|t| t.block).collect();
        for (addr, reason) in &expected {
            if !placed.contains(addr) {
                if trap_only {
                    // Trap-only degradation keeps the original code
                    // unpoisoned: a block the (faulty) rewrite-time
                    // analysis missed executes pristine original bytes
                    // until the next known block start traps into
                    // `.instr`. Sound, but coverage degrades.
                    report.push(
                        Severity::Warning,
                        Check::CflCompleteness,
                        *addr,
                        format!(
                            "trap-only function: CFL block {addr:#x} ({reason:?}) has no \
                             trampoline; original code runs unobserved until the next trap"
                        ),
                    );
                } else {
                    report.push(
                        Severity::Error,
                        Check::CflCompleteness,
                        *addr,
                        format!("CFL block {addr:#x} ({reason:?}) has no trampoline"),
                    );
                }
            }
        }
        if !config.placement.every_block && !trap_only {
            for addr in &placed {
                if !expected.contains_key(addr) {
                    report.push(
                        Severity::Warning,
                        Check::OverApproximation,
                        *addr,
                        format!(
                            "trampoline at {addr:#x} covers a block that is not CFL under \
                             strict analysis"
                        ),
                    );
                }
            }
        }
    }
    // Functions the rewriter itself skipped on analysis failure: not an
    // unsoundness (§4.3 — calls into them are caught by entry
    // trampolines of *other* functions staying intact), but worth
    // surfacing.
    for (entry, reason) in &outcome.report.skipped {
        match reason {
            SkipReason::AnalysisFailed(why) => {
                report.functions_skipped += 1;
                report.push(
                    Severity::Info,
                    Check::SkippedFunction,
                    *entry,
                    format!("rewriter skipped this function: {why}"),
                );
            }
            SkipReason::Demoted => {
                report.functions_skipped += 1;
                report.push(
                    Severity::Info,
                    Check::SkippedFunction,
                    *entry,
                    "degradation ladder demoted this function to skip".into(),
                );
            }
            SkipReason::NotSelected => {}
        }
    }
}

//! Trampoline-soundness checks: every installed trampoline must
//! transfer to its block's relocated copy, its encoded form must
//! actually reach that far, and it must not modify registers that are
//! live on entry to the block.

use crate::eval::{eval_sequence, Transfer};
use crate::report::{Check, Severity, VerifyReport};
use icfgp_cfg::{live_in_at_blocks, BinaryAnalysis, FuncStatus, LivenessResult};
use icfgp_core::tramp;
use icfgp_core::{Patch, RewriteArtifacts, RewriteOutcome, TrampolineKind};
use icfgp_isa::Arch;
use icfgp_obj::Binary;

/// Check every trampoline in every placement plan.
pub fn check_trampolines(
    original: &Binary,
    outcome: &RewriteOutcome,
    artifacts: &RewriteArtifacts,
    strict: &BinaryAnalysis,
    report: &mut VerifyReport,
) {
    let arch = original.arch;
    for (entry, plan) in &artifacts.plans {
        // Liveness from the strict re-analysis; `None` when the strict
        // pass cannot analyse the function (clobber checks are then
        // skipped — reported separately as a skipped function).
        let liveness: Option<LivenessResult> = strict
            .funcs
            .get(entry)
            .filter(|f| f.status == FuncStatus::Ok)
            .map(|f| live_in_at_blocks(f, arch));
        for t in &plan.trampolines {
            report.trampolines_checked += 1;
            // Target agreement with the relocation map.
            match outcome.block_map.get(&t.block) {
                Some(relocated) if *relocated == t.target => {}
                Some(relocated) => report.push(
                    Severity::Error,
                    Check::TrampReach,
                    t.block,
                    format!(
                        "trampoline target {:#x} disagrees with the block map ({relocated:#x})",
                        t.target
                    ),
                ),
                None => report.push(
                    Severity::Error,
                    Check::TrampReach,
                    t.block,
                    format!("trampoline targets {:#x} but the block was never relocated", t.target),
                ),
            }
            let (lo, hi) = artifacts.instr_range;
            if !(lo..hi).contains(&t.target) {
                report.push(
                    Severity::Error,
                    Check::TrampReach,
                    t.block,
                    format!(
                        "trampoline target {:#x} is outside `.instr` [{lo:#x}, {hi:#x})",
                        t.target
                    ),
                );
            }
            let Some(patch) = plan.patches.iter().find(|p| p.addr == t.block) else {
                report.push(
                    Severity::Error,
                    Check::TrampReach,
                    t.block,
                    "no patch installed at the trampoline block".into(),
                );
                continue;
            };
            let mut clobbered = Vec::new();
            match t.kind {
                TrampolineKind::Short => {
                    if patch.bytes.len() > arch.short_branch_len() {
                        report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            format!(
                                "short trampoline is {} bytes (form is {})",
                                patch.bytes.len(),
                                arch.short_branch_len()
                            ),
                        );
                    }
                    if (t.target as i64 - t.block as i64).abs() > arch.short_branch_reach() {
                        report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            format!(
                                "short form cannot span {:#x} -> {:#x} (reach {:#x})",
                                t.block,
                                t.target,
                                arch.short_branch_reach()
                            ),
                        );
                    }
                    eval_to(arch, patch, t.target, original.toc_base, &mut clobbered, report);
                }
                TrampolineKind::Long { saves_reg } => {
                    let want = tramp::long_branch_len(arch, saves_reg);
                    if patch.bytes.len() != want {
                        report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            format!(
                                "long trampoline is {} bytes (form is {want})",
                                patch.bytes.len()
                            ),
                        );
                    }
                    check_long_reach(arch, t.block, t.target, original.toc_base, report);
                    eval_to(arch, patch, t.target, original.toc_base, &mut clobbered, report);
                }
                TrampolineKind::MultiHop { island } => {
                    if (island as i64 - t.block as i64).abs() > arch.short_branch_reach() {
                        report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            format!(
                                "multi-hop island {island:#x} is beyond short reach of {:#x}",
                                t.block
                            ),
                        );
                    }
                    eval_to(arch, patch, island, original.toc_base, &mut clobbered, report);
                    if let Some(ip) = plan.patches.iter().find(|p| p.addr == island) {
                        check_long_reach(arch, island, t.target, original.toc_base, report);
                        eval_to(arch, ip, t.target, original.toc_base, &mut clobbered, report);
                    } else {
                        report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            format!("multi-hop island {island:#x} has no patch"),
                        );
                    }
                }
                TrampolineKind::Trap => {
                    if patch.bytes.len() != arch.trap_len() {
                        report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            format!("trap trampoline is {} bytes", patch.bytes.len()),
                        );
                    }
                    match eval_sequence(arch, patch.addr, &patch.bytes, original.toc_base) {
                        Ok(e) if e.transfer == Transfer::Trap => {}
                        Ok(_) => report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            "trap trampoline bytes are not a trap instruction".into(),
                        ),
                        Err(msg) => {
                            report.push(Severity::Error, Check::TrampReach, t.block, msg);
                        }
                    }
                    if artifacts.trap_map.target(t.block) != Some(t.target) {
                        report.push(
                            Severity::Error,
                            Check::TrampReach,
                            t.block,
                            format!(
                                "`.trap_map` does not transfer {:#x} to {:#x}",
                                t.block, t.target
                            ),
                        );
                    }
                }
            }
            // Clobber check against strict live-in sets. `live_in_regs`
            // is `None` for blocks the strict CFG does not contain
            // (e.g. blocks that only exist under an over-approximated
            // table) — those are skipped, not assumed fully live.
            if let Some(lv) = &liveness {
                if let Some(live) = lv.live_in_regs(t.block) {
                    let bad: Vec<String> = clobbered
                        .iter()
                        .filter(|r| live.contains(r))
                        .map(|r| format!("r{}", r.0))
                        .collect();
                    if !bad.is_empty() {
                        report.push(
                            Severity::Error,
                            Check::TrampClobber,
                            t.block,
                            format!(
                                "trampoline clobbers live-in register(s) {}",
                                bad.join(", ")
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Evaluate one sequence and require it to jump to `want`; clobbered
/// registers accumulate into `clobbered`.
fn eval_to(
    arch: Arch,
    patch: &Patch,
    want: u64,
    toc: Option<u64>,
    clobbered: &mut Vec<icfgp_isa::Reg>,
    report: &mut VerifyReport,
) {
    match eval_sequence(arch, patch.addr, &patch.bytes, toc) {
        Ok(e) => {
            clobbered.extend(e.clobbered);
            match e.transfer {
                Transfer::Jump(got) if got == want => {}
                Transfer::Jump(got) => report.push(
                    Severity::Error,
                    Check::TrampReach,
                    patch.addr,
                    format!("sequence transfers to {got:#x}, expected {want:#x}"),
                ),
                Transfer::Trap => report.push(
                    Severity::Error,
                    Check::TrampReach,
                    patch.addr,
                    format!("sequence traps, expected a jump to {want:#x}"),
                ),
            }
        }
        Err(msg) => report.push(Severity::Error, Check::TrampReach, patch.addr, msg),
    }
}

/// Re-check the long form's reach limit for `from -> to`.
fn check_long_reach(
    arch: Arch,
    from: u64,
    to: u64,
    toc: Option<u64>,
    report: &mut VerifyReport,
) {
    let delta = match arch {
        // The ppc64le long form is TOC-relative, not PC-relative.
        Arch::Ppc64le => match toc {
            Some(t) => to as i64 - t as i64,
            None => {
                report.push(
                    Severity::Error,
                    Check::TrampReach,
                    from,
                    "ppc64le long trampoline in a binary with no TOC".into(),
                );
                return;
            }
        },
        Arch::X64 | Arch::Aarch64 => to as i64 - from as i64,
    };
    if delta.abs() > arch.long_branch_reach() {
        report.push(
            Severity::Error,
            Check::TrampReach,
            from,
            format!(
                "long form cannot span {from:#x} -> {to:#x} (reach {:#x})",
                arch.long_branch_reach()
            ),
        );
    }
}

//! Symbolic evaluation of trampoline byte sequences.
//!
//! A trampoline is a short straight-line sequence ending in an
//! unconditional transfer (§7, Table 2). This module decodes the
//! patched bytes and re-derives, from the encodings alone:
//!
//! * where the sequence transfers control, and
//! * which registers it leaves modified (a register that is saved to
//!   memory before being overwritten and reloaded before the final
//!   transfer is *not* clobbered — the ppc64le save/restore form).
//!
//! The evaluator is deliberately conservative: any instruction whose
//! effect on the transfer target cannot be derived constant-folds to
//! "unknown", and an indirect transfer through an unknown register is
//! an error, not a guess.

use icfgp_isa::{decode, AluOp, Arch, Inst, Reg};
use std::collections::{BTreeMap, BTreeSet};

/// Where a trampoline sequence transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transfer {
    /// Unconditional transfer to a statically known address.
    Jump(u64),
    /// Trap instruction (the runtime finishes the transfer through
    /// `.trap_map`).
    Trap,
}

/// The derived effect of one trampoline sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqEffect {
    /// The terminal control transfer.
    pub transfer: Transfer,
    /// Registers whose value at the transfer differs from their value
    /// at sequence entry (save/restored registers excluded).
    pub clobbered: BTreeSet<Reg>,
}

/// Symbolically evaluate the byte sequence at `base`.
///
/// `toc` is the load-time value of the ppc64le TOC register (`r2`),
/// needed to resolve the TOC-relative long form.
///
/// # Errors
///
/// A human-readable reason when the sequence does not decode, falls
/// through its end, or transfers through a register whose value the
/// evaluation cannot derive.
pub fn eval_sequence(
    arch: Arch,
    base: u64,
    bytes: &[u8],
    toc: Option<u64>,
) -> Result<SeqEffect, String> {
    let mut consts: BTreeMap<Reg, u64> = BTreeMap::new();
    let mut clobbered: BTreeSet<Reg> = BTreeSet::new();
    let mut saved: BTreeSet<Reg> = BTreeSet::new();
    let mut tar: Option<u64> = None;
    let mut off = 0usize;
    while off < bytes.len() {
        let addr = base + off as u64;
        let (inst, len) = decode(&bytes[off..], arch)
            .map_err(|e| format!("undecodable byte at {addr:#x}: {e}"))?;
        off += len;
        // A value becomes unknown-but-modified unless proven otherwise.
        let def = |reg: Reg,
                       value: Option<u64>,
                       consts: &mut BTreeMap<Reg, u64>,
                       clobbered: &mut BTreeSet<Reg>| {
            clobbered.insert(reg);
            match value {
                Some(v) => {
                    consts.insert(reg, v);
                }
                None => {
                    consts.remove(&reg);
                }
            }
        };
        match inst {
            Inst::Nop => {}
            Inst::Trap => {
                return Ok(SeqEffect { transfer: Transfer::Trap, clobbered });
            }
            Inst::Jump { offset } => {
                return Ok(SeqEffect {
                    transfer: Transfer::Jump(addr.wrapping_add_signed(offset)),
                    clobbered,
                });
            }
            Inst::JumpReg { src } => {
                let target = consts.get(&src).copied().ok_or_else(|| {
                    format!("indirect jump at {addr:#x} through unknown register r{}", src.0)
                })?;
                return Ok(SeqEffect { transfer: Transfer::Jump(target), clobbered });
            }
            Inst::JumpTar => {
                let target = tar.ok_or_else(|| {
                    format!("bctar at {addr:#x} with unknown target register")
                })?;
                return Ok(SeqEffect { transfer: Transfer::Jump(target), clobbered });
            }
            Inst::MoveToTar { src } => {
                tar = consts.get(&src).copied();
            }
            Inst::AdrPage { dst, page_delta } => {
                let value = (addr & !0xFFF).wrapping_add_signed(page_delta << 12);
                def(dst, Some(value), &mut consts, &mut clobbered);
            }
            Inst::AddShl16 { dst, src, imm } => {
                let base_val = if arch.toc() == Some(src) {
                    toc
                } else {
                    consts.get(&src).copied()
                };
                let value = base_val.map(|b| b.wrapping_add_signed(i64::from(imm) << 16));
                def(dst, value, &mut consts, &mut clobbered);
            }
            Inst::AddImm16 { dst, src, imm } => {
                let value =
                    consts.get(&src).map(|b| b.wrapping_add_signed(i64::from(imm)));
                def(dst, value, &mut consts, &mut clobbered);
            }
            Inst::AluImm { op: AluOp::Add, dst, src, imm } => {
                let value =
                    consts.get(&src).map(|b| b.wrapping_add_signed(i64::from(imm)));
                def(dst, value, &mut consts, &mut clobbered);
            }
            Inst::Store { src, .. } => {
                // A spill of a still-original value: a later reload
                // makes any intervening overwrite a non-clobber.
                if !clobbered.contains(&src) {
                    saved.insert(src);
                }
            }
            Inst::Load { dst, .. } => {
                if saved.contains(&dst) {
                    // Restore: the register holds its entry value again
                    // (we do not model the memory slot's address — the
                    // placement emitter only pairs one spill with one
                    // reload per sequence).
                    clobbered.remove(&dst);
                    consts.remove(&dst);
                } else {
                    def(dst, None, &mut consts, &mut clobbered);
                }
            }
            other if other.is_control_flow() => {
                return Err(format!(
                    "unexpected control-flow instruction {other:?} at {addr:#x} inside a trampoline"
                ));
            }
            other => {
                if let Some(dst) = other.def_reg() {
                    def(dst, None, &mut consts, &mut clobbered);
                }
            }
        }
    }
    Err(format!("sequence at {base:#x} falls through its end without a transfer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_core::tramp;

    #[test]
    fn short_branch_evaluates_to_target() {
        for arch in [Arch::X64, Arch::Ppc64le, Arch::Aarch64] {
            // +0x40 is inside the short reach of every arch; +0x80
            // would be the asymmetric x64 rel8 edge (reach 128 but the
            // positive range stops at +127).
            let bytes = tramp::short_branch(arch, 0x1000, 0x1040).unwrap();
            let e = eval_sequence(arch, 0x1000, &bytes, None).unwrap();
            assert_eq!(e.transfer, Transfer::Jump(0x1040), "{arch:?}");
            assert!(e.clobbered.is_empty());
        }
    }

    #[test]
    fn x64_near_branch_evaluates_to_target() {
        let bytes = tramp::near_branch_x64(0x1000, 0x4000_0000).unwrap();
        let e = eval_sequence(Arch::X64, 0x1000, &bytes, None).unwrap();
        assert_eq!(e.transfer, Transfer::Jump(0x4000_0000));
        assert!(e.clobbered.is_empty());
    }

    #[test]
    fn ppc_long_form_with_scratch_clobbers_it() {
        let toc = 0x40_8000u64;
        let bytes =
            tramp::long_branch(Arch::Ppc64le, 0x1000, 0x4000_0000, Some(toc), Some(Reg(9)))
                .unwrap();
        let e = eval_sequence(Arch::Ppc64le, 0x1000, &bytes, Some(toc)).unwrap();
        assert_eq!(e.transfer, Transfer::Jump(0x4000_0000));
        assert_eq!(e.clobbered.into_iter().collect::<Vec<_>>(), vec![Reg(9)]);
    }

    #[test]
    fn ppc_save_restore_form_clobbers_nothing() {
        let toc = 0x40_8000u64;
        let bytes =
            tramp::long_branch(Arch::Ppc64le, 0x1000, 0x4000_0000, Some(toc), None).unwrap();
        let e = eval_sequence(Arch::Ppc64le, 0x1000, &bytes, Some(toc)).unwrap();
        assert_eq!(e.transfer, Transfer::Jump(0x4000_0000));
        assert!(e.clobbered.is_empty(), "r12 is spilled and reloaded");
    }

    #[test]
    fn aarch_long_form_evaluates_page_arithmetic() {
        let bytes =
            tramp::long_branch(Arch::Aarch64, 0x1000, 0x123_4560, None, Some(Reg(17))).unwrap();
        let e = eval_sequence(Arch::Aarch64, 0x1000, &bytes, None).unwrap();
        assert_eq!(e.transfer, Transfer::Jump(0x123_4560));
        assert_eq!(e.clobbered.into_iter().collect::<Vec<_>>(), vec![Reg(17)]);
    }

    #[test]
    fn trap_is_a_trap() {
        for arch in [Arch::X64, Arch::Ppc64le, Arch::Aarch64] {
            let bytes = tramp::trap_trampoline(arch);
            let e = eval_sequence(arch, 0x1000, &bytes, None).unwrap();
            assert_eq!(e.transfer, Transfer::Trap, "{arch:?}");
        }
    }

    #[test]
    fn fallthrough_is_an_error() {
        let bytes = icfgp_isa::encode(&Inst::Nop, Arch::X64).unwrap();
        assert!(eval_sequence(Arch::X64, 0x1000, &bytes, None).is_err());
    }
}

//! Static translation validation for incremental CFG patching.
//!
//! Binary rewriting is only useful when it is trustworthy: §8 of the
//! paper validates rewrites *dynamically*, by running original and
//! rewritten binaries and diffing their traces. This crate adds the
//! complementary *static* check — a translation-validation pass that
//! takes the original [`Binary`] plus the
//! [`RewriteOutcome`] and proves four
//! properties without executing anything:
//!
//! 1. **Patch integrity** ([`Check::PatchOverlap`],
//!    [`Check::PatchBudget`], [`Check::ScratchProvenance`]) — no two
//!    patches overlap, every inline patch fits its trampoline
//!    superblock, and every multi-hop island sits on bytes that were
//!    explicitly donated to the scratch pool.
//! 2. **Trampoline soundness** ([`Check::TrampReach`],
//!    [`Check::TrampClobber`]) — each patched sequence is decoded and
//!    symbolically evaluated: it must transfer to the block's
//!    relocated copy, the encoded form must be within its
//!    architectural reach, and it must only modify registers that are
//!    dead on entry to the block.
//! 3. **CFL completeness** ([`Check::CflCompleteness`],
//!    [`Check::OverApproximation`]) — the CFL set is recomputed from a
//!    *strict* re-analysis (heuristics off, injected faults cleared);
//!    an uncovered CFL block or a dropped jump-table target is an
//!    error (the catastrophic under-approximation class of Figure 2),
//!    while extra coverage is a warning (the wasteful-but-safe
//!    over-approximation class).
//! 4. **Map well-formedness** ([`Check::MapWellFormed`]) — `.ra_map`
//!    and `.trap_map` parse, round-trip, agree with the rewriter's
//!    records and the block map, and are injective where the runtime
//!    requires it; jump-table clones live in `.jt_clone`, never alias
//!    or modify the original table, and each entry resolves to its
//!    target's relocated address.
//!
//! The pass consumes the [`RewriteArtifacts`] the rewriter attaches to
//! its outcome (on by default via
//! [`RewriteConfig::collect_artifacts`]); running the verifier itself
//! is opt-in (`icfgp verify`, `icfgp rewrite --verify`, or calling
//! [`verify_rewrite`] directly).

#![warn(missing_docs)]

mod cfl;
mod clones;
mod eval;
mod ladder;
mod maps;
mod patches;
mod report;
mod tramps;

pub use eval::{eval_sequence, SeqEffect, Transfer};
pub use ladder::{
    rewrite_with_ladder, rewrite_with_ladder_cached, rewrite_with_ladder_supervised,
    FuncDisposition, LadderError, LadderOutcome, LadderStep, Supervisor, MAX_ROUNDS,
};
pub use report::{Check, Diagnostic, Severity, VerifyReport};

use icfgp_cfg::analyze;
use icfgp_core::{RewriteArtifacts, RewriteConfig, RewriteOutcome};
use icfgp_obj::Binary;
use std::fmt;

/// Why verification could not run at all (as opposed to running and
/// finding problems, which is a [`VerifyReport`] full of diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The outcome carries no [`RewriteArtifacts`]: the rewrite ran
    /// with [`RewriteConfig::collect_artifacts`] disabled.
    MissingArtifacts,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MissingArtifacts => f.write_str(
                "rewrite outcome carries no artifacts; rerun with collect_artifacts enabled",
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Statically validate `outcome` as a rewrite of `original` under
/// `config` (the configuration the rewrite was produced with).
///
/// Returns a [`VerifyReport`]; the rewrite is sound iff
/// [`VerifyReport::is_clean`] — warnings mark wasteful-but-safe
/// over-approximation, infos mark functions neither side analyses.
///
/// # Errors
///
/// [`VerifyError::MissingArtifacts`] when the outcome was produced
/// with artifact collection disabled.
pub fn verify_rewrite(
    original: &Binary,
    outcome: &RewriteOutcome,
    config: &RewriteConfig,
) -> Result<VerifyReport, VerifyError> {
    let artifacts: &RewriteArtifacts =
        outcome.artifacts.as_ref().ok_or(VerifyError::MissingArtifacts)?;
    // The strict re-analysis: same resolution limits as the rewrite
    // (so clean rewrites re-analyse identically), but heuristics off
    // and injected faults cleared. Functions only the heuristics can
    // classify become analysis failures here and are skipped with an
    // info diagnostic — the verifier never guesses.
    let strict = analyze(original, &config.analysis.strictened());
    let mut report = VerifyReport::default();
    patches::check_patches(artifacts, &mut report);
    tramps::check_trampolines(original, outcome, artifacts, &strict, &mut report);
    cfl::check_cfl(outcome, artifacts, &strict, config, &mut report);
    clones::check_clones(original, outcome, artifacts, &strict, config, &mut report);
    maps::check_maps(outcome, artifacts, config, &mut report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_core::{Instrumentation, Points, RewriteMode, Rewriter};
    use icfgp_isa::Arch;

    fn small(arch: Arch) -> Binary {
        icfgp_workloads::generate(&icfgp_workloads::GenParams::small("verify", arch, 7)).binary
    }

    #[test]
    fn clean_rewrite_verifies_on_all_arches() {
        for arch in [Arch::X64, Arch::Ppc64le, Arch::Aarch64] {
            let bin = small(arch);
            let config = RewriteConfig::new(RewriteMode::Jt);
            let out = Rewriter::new(config.clone())
                .rewrite(&bin, &Instrumentation::empty(Points::EveryBlock))
                .unwrap();
            let report = verify_rewrite(&bin, &out, &config).unwrap();
            let errs: Vec<_> = report.errors().collect();
            assert!(errs.is_empty(), "{arch:?}: {errs:#?}");
            assert!(report.functions_checked > 0);
        }
    }

    #[test]
    fn missing_artifacts_is_an_error() {
        let bin = small(Arch::X64);
        let mut config = RewriteConfig::new(RewriteMode::Dir);
        config.collect_artifacts = false;
        let out = Rewriter::new(config.clone())
            .rewrite(&bin, &Instrumentation::empty(Points::EveryBlock))
            .unwrap();
        assert_eq!(verify_rewrite(&bin, &out, &config), Err(VerifyError::MissingArtifacts));
    }

    #[test]
    fn tampered_trampoline_is_caught() {
        let bin = small(Arch::X64);
        let config = RewriteConfig::new(RewriteMode::Jt);
        let mut out = Rewriter::new(config.clone())
            .rewrite(&bin, &Instrumentation::empty(Points::EveryBlock))
            .unwrap();
        // Corrupt one trampoline's recorded target: reach/consistency
        // checks must notice the disagreement with the block map.
        let arts = out.artifacts.as_mut().unwrap();
        let t = arts
            .plans
            .iter_mut()
            .flat_map(|(_, p)| p.trampolines.iter_mut())
            .next()
            .unwrap();
        t.target += 2;
        let report = verify_rewrite(&bin, &out, &config).unwrap();
        assert!(!report.is_clean());
    }
}

//! Diagnostics and the verification report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Severity {
    /// Expected limitation, reported for visibility (e.g. a function
    /// the strict re-analysis cannot handle).
    Info,
    /// Wasteful but safe (e.g. over-approximation: extra trampolines
    /// or surplus clone entries).
    Warning,
    /// The rewrite is unsound: some execution of the original program
    /// is not preserved.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// Which check produced a diagnostic (the check catalogue; see
/// DESIGN.md for the mapping to the paper's failure classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Check {
    /// Two patches write overlapping byte ranges.
    PatchOverlap,
    /// An inline patch spills past its trampoline superblock budget.
    PatchBudget,
    /// A patch lands on bytes never donated to the scratch pool.
    ScratchProvenance,
    /// A trampoline does not transfer to its recorded target, or the
    /// encoded form cannot reach it.
    TrampReach,
    /// A trampoline clobbers a register that is live-in at its block.
    TrampClobber,
    /// A control-flow-landing block has no trampoline (the
    /// under-approximation failure class).
    CflCompleteness,
    /// A runtime map (`.ra_map`, `.trap_map`) or table clone is
    /// malformed or disagrees with the rewriter's own records.
    MapWellFormed,
    /// Coverage beyond the strict CFL set (the over-approximation
    /// class: safe, but wastes space and may pessimise placement).
    OverApproximation,
    /// A function was skipped — by the rewriter (analysis failure) or
    /// by the verifier (strict re-analysis failure).
    SkippedFunction,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Check::PatchOverlap => "patch-overlap",
            Check::PatchBudget => "patch-budget",
            Check::ScratchProvenance => "scratch-provenance",
            Check::TrampReach => "tramp-reach",
            Check::TrampClobber => "tramp-clobber",
            Check::CflCompleteness => "cfl-completeness",
            Check::MapWellFormed => "map-well-formed",
            Check::OverApproximation => "over-approximation",
            Check::SkippedFunction => "skipped-function",
        };
        f.write_str(s)
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Which check fired.
    pub check: Check,
    /// The address the finding is about (block, patch, table or map
    /// entry address, depending on the check).
    pub addr: u64,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {:#x}: {}",
            self.severity, self.check, self.addr, self.message
        )
    }
}

/// The full verification result.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// All findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Functions whose placement plans were checked.
    pub functions_checked: usize,
    /// Functions skipped (rewriter analysis failure or strict
    /// re-analysis failure).
    pub functions_skipped: usize,
    /// Trampolines whose encodings were re-evaluated.
    pub trampolines_checked: usize,
    /// Byte patches checked for overlap/budget/provenance.
    pub patches_checked: usize,
    /// Jump-table clones checked entry by entry.
    pub clones_checked: usize,
}

impl VerifyReport {
    /// Record a finding.
    pub fn push(&mut self, severity: Severity, check: Check, addr: u64, message: String) {
        self.diagnostics.push(Diagnostic { severity, check, addr, message });
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// Whether the rewrite verified with zero errors (warnings and
    /// infos allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors().count() == 0
    }

    /// Serialise the report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` serialisation failures (practically
    /// unreachable for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_json_roundtrip() {
        let mut r = VerifyReport::default();
        r.push(Severity::Error, Check::CflCompleteness, 0x1000, "missed".into());
        let json = r.to_json().unwrap();
        assert!(json.contains("cfl-completeness"));
        assert!(json.contains("error"));
        let back: VerifyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn is_clean_ignores_warnings() {
        let mut r = VerifyReport::default();
        r.push(Severity::Warning, Check::OverApproximation, 0x2000, "extra".into());
        r.push(Severity::Info, Check::SkippedFunction, 0x3000, "skipped".into());
        assert!(r.is_clean());
        r.push(Severity::Error, Check::PatchOverlap, 0x4000, "overlap".into());
        assert!(!r.is_clean());
    }
}

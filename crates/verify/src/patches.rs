//! Patch-integrity checks: overlap, superblock budgets, and scratch
//! provenance of island bytes.

use crate::report::{Check, Severity, VerifyReport};
use icfgp_core::{RewriteArtifacts, TrampolineKind};
use std::collections::BTreeSet;

/// Check every byte patch in every placement plan.
///
/// * **overlap** — no two patches may write the same byte (two
///   trampolines sharing bytes means at least one is corrupted);
/// * **budget** — a patch installed at a CFL block must fit inside the
///   trampoline superblock the placement analysis granted it;
/// * **provenance** — a patch that is *not* at a trampoline block must
///   be a multi-hop island, and islands may only occupy bytes that
///   were explicitly donated to the scratch pool (padding, dead inline
///   tables, `.old.*` scratch sections, superblock leftovers).
pub fn check_patches(artifacts: &RewriteArtifacts, report: &mut VerifyReport) {
    // ----- overlap (global, across functions) ---------------------------
    let mut spans: Vec<(u64, u64)> = Vec::new();
    for (_, plan) in &artifacts.plans {
        for p in &plan.patches {
            spans.push((p.addr, p.addr + p.bytes.len() as u64));
            report.patches_checked += 1;
        }
    }
    spans.sort_unstable();
    for w in spans.windows(2) {
        if w[0].1 > w[1].0 {
            report.push(
                Severity::Error,
                Check::PatchOverlap,
                w[1].0,
                format!(
                    "patch [{:#x}, {:#x}) overlaps patch [{:#x}, {:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ),
            );
        }
    }

    // ----- budget + provenance -----------------------------------------
    for (entry, plan) in &artifacts.plans {
        let mut islands: BTreeSet<u64> = BTreeSet::new();
        for t in &plan.trampolines {
            if let TrampolineKind::MultiHop { island } = t.kind {
                islands.insert(island);
            }
        }
        for p in &plan.patches {
            let end = p.addr + p.bytes.len() as u64;
            if let Some(t) = plan.trampolines.iter().find(|t| t.block == p.addr) {
                if end > t.budget_end {
                    report.push(
                        Severity::Error,
                        Check::PatchBudget,
                        p.addr,
                        format!(
                            "trampoline patch ends at {:#x}, past its superblock budget {:#x}",
                            end, t.budget_end
                        ),
                    );
                }
            } else if islands.contains(&p.addr) {
                let donated = artifacts
                    .scratch_ranges
                    .iter()
                    .any(|(s, e)| *s <= p.addr && end <= *e);
                if !donated {
                    report.push(
                        Severity::Error,
                        Check::ScratchProvenance,
                        p.addr,
                        format!(
                            "island [{:#x}, {:#x}) occupies bytes never donated to the scratch pool",
                            p.addr, end
                        ),
                    );
                }
            } else {
                report.push(
                    Severity::Error,
                    Check::ScratchProvenance,
                    p.addr,
                    format!(
                        "patch at {:#x} (function {:#x}) matches no trampoline block or island",
                        p.addr, entry
                    ),
                );
            }
        }
    }
}

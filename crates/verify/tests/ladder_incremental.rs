//! Incremental invalidation across ladder rounds: a fault confined to
//! ONE function must only ever re-do work for that function — every
//! untouched function's analysis, fragment and emitted code is served
//! from the shared [`RewriteCache`] on every round after the first.
//!
//! The checks are counter-based (via `LadderOutcome::round_stats`) and
//! fully deterministic: a hand-built single-victim fault plan, a fixed
//! workload seed, and exact hit/miss accounting per round.

use icfgp_cfg::{analyze, InjectedFault};
use icfgp_core::{Instrumentation, Points, RewriteCache, RewriteConfig, RewriteMode};
use icfgp_verify::rewrite_with_ladder_cached;

/// Build the workload and a config whose only fault is dropping all but
/// one entry of a single function's jump table — a catastrophic
/// under-approximation the verifier is guaranteed to reject, confined
/// to one victim function. Returns `(binary, config, victim_entry)`.
fn single_victim_setup() -> (icfgp_obj::Binary, RewriteConfig, u64) {
    let binary = icfgp_workloads::generate(&icfgp_workloads::GenParams::small(
        "ladder-inc",
        icfgp_isa::Arch::X64,
        11,
    ))
    .binary;
    let mut config = RewriteConfig::new(RewriteMode::FuncPtr);
    let clean = analyze(&binary, &config.analysis);
    let (victim, jt) = clean
        .funcs
        .values()
        .find_map(|f| {
            f.jump_tables
                .iter()
                .find(|jt| jt.count > 1)
                .map(|jt| (f.entry, jt))
        })
        .expect("small workload has at least one multi-entry jump table");
    config
        .analysis
        .inject
        .push(InjectedFault::UnderApproximateTable {
            jump_addr: jt.jump_addr,
            drop: jt.count - 1,
        });
    (binary, config, victim)
}

#[test]
fn single_function_fault_leaves_rest_of_cache_hot() {
    let (binary, config, victim) = single_victim_setup();
    let cache = RewriteCache::new();
    let ladder = rewrite_with_ladder_cached(
        &binary,
        &config,
        &Instrumentation::empty(Points::EveryBlock),
        &cache,
    )
    .expect("ladder converges");

    // The fault actually bit: the victim (and only the victim) was
    // demoted, which forced at least one extra round.
    let degraded: Vec<u64> = ladder.degraded().map(|d| d.entry).collect();
    assert_eq!(degraded, vec![victim], "exactly the victim degrades");
    assert!(
        ladder.rounds >= 2,
        "demotion must cost at least one extra round"
    );
    assert_eq!(ladder.round_stats.len(), ladder.rounds);

    let funcs = ladder.round_stats[0].func_analyses.total();
    assert!(
        funcs > 1,
        "need untouched functions to make the claim meaningful"
    );

    // Round 1 is cold: nothing can hit an empty cache.
    let cold = &ladder.round_stats[0];
    assert!(!cold.analysis_memo_hit);
    assert_eq!(cold.fragments.hits, 0);
    assert_eq!(cold.emits.hits, 0);

    for (i, s) in ladder.round_stats.iter().enumerate().skip(1) {
        // The whole-binary analysis is memoised: demotion changes the
        // per-function rewrite rung, not the analysis config, so no
        // round after the first re-analyses anything.
        assert!(s.analysis_memo_hit, "round {} re-ran the analysis", i + 1);
        assert_eq!(
            s.func_analyses.misses,
            0,
            "round {} re-analysed a function",
            i + 1
        );
        assert_eq!(s.liveness.misses, 0, "round {} recomputed liveness", i + 1);
        // Only the demoted victim's fragment is rebuilt; every
        // untouched function's relocation fragment is a cache hit.
        assert!(
            s.fragments.misses <= 1,
            "round {} rebuilt {} fragments, expected at most the victim",
            i + 1,
            s.fragments.misses
        );
        assert_eq!(s.fragments.hits, funcs - s.fragments.misses);
    }

    // The ladder's final outcome is clean and the victim really was
    // pushed below the full func-ptr rung.
    assert!(ladder.verify.errors().count() == 0);
}

#[test]
fn shared_cache_makes_repeat_ladders_free() {
    // Re-running the same faulted ladder on the same cache (the chaos
    // campaign's per-(workload, arch) pattern) does no per-function
    // work at all: every round of the second ladder is 100% warm.
    let (binary, config, _victim) = single_victim_setup();
    let cache = RewriteCache::new();
    let instr = Instrumentation::empty(Points::EveryBlock);
    let first = rewrite_with_ladder_cached(&binary, &config, &instr, &cache).unwrap();
    let second = rewrite_with_ladder_cached(&binary, &config, &instr, &cache).unwrap();
    assert_eq!(
        first.outcome.binary, second.outcome.binary,
        "cache reuse changed the output"
    );
    assert_eq!(first.rounds, second.rounds);
    for (i, s) in second.round_stats.iter().enumerate() {
        assert!(
            s.analysis_memo_hit,
            "second ladder round {} re-analysed",
            i + 1
        );
        assert_eq!(s.func_analyses.misses, 0);
        assert_eq!(
            s.fragments.misses,
            0,
            "second ladder round {} rebuilt a fragment",
            i + 1
        );
        assert_eq!(
            s.emits.misses,
            0,
            "second ladder round {} re-emitted",
            i + 1
        );
    }
}

//! Whole-binary layout and resolution.

use crate::item::{standard_ra_rule, DataItem, EntryKind, FuncDef, Item, RefTarget};
use crate::AsmError;
use icfgp_isa::{encode, Arch, Inst, Reg};
use icfgp_obj::{
    names, Binary, BinaryKind, CallSiteEntry, GoFuncEntry, GoFuncTable, Relocation, Section,
    SectionFlags, SectionKind, Symbol, UnwindEntry,
};
use std::collections::{BTreeSet, HashMap};

/// Extra padding added to the synthetic dynamic-linking sections, to
/// model binaries with bigger symbol tables (more scratch space after
/// rewriting renames them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionSizes {
    /// Extra `.dynsym` bytes.
    pub extra_dynsym: usize,
    /// Extra `.dynstr` bytes.
    pub extra_dynstr: usize,
    /// Extra `.rela_dyn` bytes.
    pub extra_rela: usize,
}

/// Builds a complete [`Binary`] from functions and data items.
#[derive(Debug)]
pub struct BinaryBuilder {
    arch: Arch,
    kind: BinaryKind,
    pie: bool,
    funcs: Vec<FuncDef>,
    rodata: Vec<(Option<String>, DataItem)>,
    data: Vec<(Option<String>, DataItem)>,
    fini: Vec<String>,
    go_funcs: Option<Vec<(String, u64)>>,
    entry: Option<String>,
    link_time_relocs: bool,
    symbol_versioning: bool,
    stripped: bool,
    sizes: SectionSizes,
    func_align: u64,
}

/// Per-item layout state produced by the relaxation loop.
struct Layout {
    /// Function start addresses, by index.
    func_addrs: Vec<u64>,
    /// Function code sizes (without inter-function padding).
    func_sizes: Vec<u64>,
    /// Per-function label addresses.
    labels: Vec<HashMap<String, u64>>,
    /// Per-function per-item assumed sizes.
    item_sizes: Vec<Vec<u64>>,
    /// One past the last text byte.
    text_end: u64,
}

impl BinaryBuilder {
    /// A fresh builder targeting `arch` (non-PIE executable by
    /// default).
    #[must_use]
    pub fn new(arch: Arch) -> BinaryBuilder {
        BinaryBuilder {
            arch,
            kind: BinaryKind::Exec,
            pie: false,
            funcs: Vec::new(),
            rodata: Vec::new(),
            data: Vec::new(),
            fini: Vec::new(),
            go_funcs: None,
            entry: None,
            link_time_relocs: false,
            symbol_versioning: false,
            stripped: false,
            sizes: SectionSizes::default(),
            func_align: 16,
        }
    }

    /// Target architecture.
    #[must_use]
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Build position-independent (adds RELATIVE relocations for every
    /// absolute address slot).
    pub fn pie(&mut self, pie: bool) -> &mut BinaryBuilder {
        self.pie = pie;
        self
    }

    /// Mark the output a shared library (implies PIE).
    pub fn shared_lib(&mut self) -> &mut BinaryBuilder {
        self.kind = BinaryKind::SharedLib;
        self.pie = true;
        self
    }

    /// Retain link-time relocations (`-Wl,-q` analog).
    pub fn link_time_relocs(&mut self, keep: bool) -> &mut BinaryBuilder {
        self.link_time_relocs = keep;
        self
    }

    /// Mark symbol-versioning metadata present.
    pub fn symbol_versioning(&mut self, present: bool) -> &mut BinaryBuilder {
        self.symbol_versioning = present;
        self
    }

    /// Strip symbol names (addresses and sizes survive).
    pub fn stripped(&mut self, stripped: bool) -> &mut BinaryBuilder {
        self.stripped = stripped;
        self
    }

    /// Inflate the synthetic dynamic-linking sections.
    pub fn section_sizes(&mut self, sizes: SectionSizes) -> &mut BinaryBuilder {
        self.sizes = sizes;
        self
    }

    /// Function alignment (default 16, the compiler norm). Dense
    /// binaries (`-falign-functions=1`) use 1 — no padding bytes
    /// between functions, hence no padding scratch space.
    ///
    /// # Panics
    ///
    /// Panics when `align` is not a power of two or is below the
    /// architecture's instruction alignment.
    pub fn func_align(&mut self, align: u64) -> &mut BinaryBuilder {
        assert!(align.is_power_of_two() && align >= self.arch.inst_align());
        self.func_align = align;
        self
    }

    /// Add a function; definition order is layout order.
    pub fn add_function(&mut self, func: FuncDef) -> &mut BinaryBuilder {
        self.funcs.push(func);
        self
    }

    /// Add a read-only data item, optionally named.
    pub fn push_rodata(
        &mut self,
        symbol: Option<&str>,
        item: DataItem,
    ) -> &mut BinaryBuilder {
        self.rodata.push((symbol.map(str::to_string), item));
        self
    }

    /// Add a writable data item, optionally named.
    pub fn push_data(&mut self, symbol: Option<&str>, item: DataItem) -> &mut BinaryBuilder {
        self.data.push((symbol.map(str::to_string), item));
        self
    }

    /// Register a finalizer (destructor) function.
    pub fn add_fini(&mut self, func: &str) -> &mut BinaryBuilder {
        self.fini.push(func.to_string());
        self
    }

    /// Emit a Go-style `.pclntab` covering the named functions with the
    /// given traceback frame sizes.
    pub fn set_go_functable(&mut self, funcs: Vec<(String, u64)>) -> &mut BinaryBuilder {
        self.go_funcs = Some(funcs);
        self
    }

    /// Set the entry function.
    pub fn set_entry(&mut self, name: &str) -> &mut BinaryBuilder {
        self.entry = Some(name.to_string());
        self
    }

    /// Link-time base address of `.text`.
    #[must_use]
    pub fn text_base(&self) -> u64 {
        if self.pie {
            0x10000
        } else {
            0x40_0000
        }
    }

    // ----- sizing ---------------------------------------------------

    /// Size of an item under the current promotion state; `addr` is the
    /// item's start (alignment-sensitive items need it).
    fn item_size(
        &self,
        func: &FuncDef,
        item: &Item,
        promoted: bool,
        addr: u64,
    ) -> Result<u64, AsmError> {
        let x64 = self.arch == Arch::X64;
        Ok(match item {
            Item::Label(_) => 0,
            Item::I(inst) => encode(inst, self.arch)
                .map_err(|err| AsmError::Encode { func: func.name.clone(), err })?
                .len() as u64,
            Item::JmpL(_) => {
                if x64 {
                    if promoted {
                        5
                    } else {
                        2
                    }
                } else {
                    4
                }
            }
            Item::JccL(..) => {
                if x64 {
                    if promoted {
                        6
                    } else {
                        3
                    }
                } else {
                    4
                }
            }
            Item::CallF(_) | Item::TailJmpF(_) => {
                if x64 {
                    5
                } else {
                    4
                }
            }
            Item::LoadAddr { .. } => {
                if x64 {
                    if self.pie {
                        7 // lea reg, [pc+disp32]
                    } else {
                        6 // mov reg, imm32 (absolute)
                    }
                } else {
                    8 // addis+addi / adrp+add
                }
            }
            Item::MovWide { imm, .. } => {
                if x64 {
                    if i32::try_from(*imm).is_ok() {
                        6
                    } else {
                        10
                    }
                } else if i16::try_from(*imm).is_ok() {
                    4
                } else if i32::try_from(*imm).is_ok() {
                    8
                } else {
                    16
                }
            }
            Item::LoadFrom { .. } | Item::StoreTo { .. } => {
                if x64 {
                    7 // pc-relative access
                } else {
                    12 // addr materialisation + access
                }
            }
            Item::InlineTable { entry_width, targets, .. } => {
                let pad = pad_to(addr, u64::from(*entry_width));
                let mut size = pad + u64::from(*entry_width) * targets.len() as u64;
                if self.arch.is_fixed_width() {
                    size += pad_to(addr + size, 4);
                }
                size
            }
            Item::Align(a) => pad_to(addr, u64::from(*a)),
        })
    }

    /// Run the relaxation loop: returns the final text layout.
    fn relax(&self) -> Result<Layout, AsmError> {
        let mut promoted: Vec<Vec<bool>> =
            self.funcs.iter().map(|f| vec![false; f.items.len()]).collect();
        let mut labels: Vec<HashMap<String, u64>> = vec![HashMap::new(); self.funcs.len()];
        for _pass in 0..64 {
            // Lay out with the current promotion state.
            let mut func_addrs = Vec::with_capacity(self.funcs.len());
            let mut func_sizes = Vec::with_capacity(self.funcs.len());
            let mut item_sizes = Vec::with_capacity(self.funcs.len());
            let mut new_labels: Vec<HashMap<String, u64>> = vec![HashMap::new(); self.funcs.len()];
            let mut cursor = self.text_base();
            for (fi, f) in self.funcs.iter().enumerate() {
                cursor += pad_to(cursor, self.func_align);
                func_addrs.push(cursor);
                let mut sizes = Vec::with_capacity(f.items.len());
                let start = cursor;
                for (ii, item) in f.items.iter().enumerate() {
                    if let Item::Label(name) = item {
                        new_labels[fi].insert(name.clone(), cursor);
                    }
                    let size = self.item_size(f, item, promoted[fi][ii], cursor)?;
                    sizes.push(size);
                    cursor += size;
                }
                func_sizes.push(cursor - start);
                item_sizes.push(sizes);
            }
            // Promote x64 label branches whose offsets no longer fit i8.
            let mut changed = new_labels != labels;
            labels = new_labels;
            if self.arch == Arch::X64 {
                for (fi, f) in self.funcs.iter().enumerate() {
                    let mut addr = func_addrs[fi];
                    for (ii, item) in f.items.iter().enumerate() {
                        match item {
                            Item::JmpL(l) | Item::JccL(_, l) if !promoted[fi][ii] => {
                                let target =
                                    *labels[fi].get(l).ok_or_else(|| AsmError::UndefinedLabel {
                                        func: f.name.clone(),
                                        label: l.clone(),
                                    })?;
                                let off = target as i64 - addr as i64;
                                if i8::try_from(off).is_err() {
                                    promoted[fi][ii] = true;
                                    changed = true;
                                }
                            }
                            _ => {}
                        }
                        addr += item_sizes[fi][ii];
                    }
                }
            }
            if !changed {
                return Ok(Layout {
                    text_end: cursor,
                    func_addrs,
                    func_sizes,
                    labels,
                    item_sizes,
                });
            }
        }
        Err(AsmError::RelaxationDiverged)
    }

    // ----- resolution ------------------------------------------------

    /// Resolve a reference to an address.
    fn resolve(
        &self,
        target: &RefTarget,
        func_map: &HashMap<String, u64>,
        data_map: &HashMap<String, u64>,
        labels: &[HashMap<String, u64>],
        func_index: &HashMap<String, usize>,
    ) -> Result<u64, AsmError> {
        match target {
            RefTarget::Func(name) => func_map
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedFunction { name: name.clone() }),
            RefTarget::Data(name) => data_map
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedData { name: name.clone() }),
            RefTarget::Label { func, label } => {
                let fi = func_index
                    .get(func)
                    .copied()
                    .ok_or_else(|| AsmError::UndefinedFunction { name: func.clone() })?;
                labels[fi].get(label).copied().ok_or_else(|| AsmError::UndefinedLabel {
                    func: func.clone(),
                    label: label.clone(),
                })
            }
        }
    }

    /// Emit the instruction sequence materialising `target_addr` into
    /// `dst` at `item_addr`.
    fn load_addr_insts(
        &self,
        dst: Reg,
        target_addr: u64,
        item_addr: u64,
        toc_base: u64,
    ) -> Vec<Inst> {
        match self.arch {
            Arch::X64 => {
                if self.pie {
                    vec![Inst::Lea {
                        dst,
                        addr: icfgp_isa::Addr::pc_rel(target_addr as i64 - item_addr as i64),
                    }]
                } else {
                    vec![Inst::MovImm { dst, imm: target_addr as i64 }]
                }
            }
            Arch::Ppc64le => {
                let delta = target_addr as i64 - toc_base as i64;
                let hi = ((delta + 0x8000) >> 16) as i16;
                let lo = (delta - (i64::from(hi) << 16)) as i16;
                vec![
                    Inst::AddShl16 { dst, src: Reg(2), imm: hi },
                    Inst::AddImm16 { dst, src: dst, imm: lo },
                ]
            }
            Arch::Aarch64 => {
                // Bias the page selection so the low part fits the
                // signed imm12 of our `AluImm` add.
                let page_delta =
                    ((target_addr as i64 + 0x800) >> 12) - (item_addr as i64 >> 12);
                let low = target_addr as i64 - (((item_addr as i64 >> 12) + page_delta) << 12);
                debug_assert!((-2048..=2047).contains(&low));
                vec![
                    Inst::AdrPage { dst, page_delta },
                    Inst::AluImm { op: icfgp_isa::AluOp::Add, dst, src: dst, imm: low as i32 },
                ]
            }
        }
    }

    /// Expand a wide constant materialisation.
    fn mov_wide_insts(&self, dst: Reg, imm: i64) -> Vec<Inst> {
        if self.arch == Arch::X64 || i16::try_from(imm).is_ok() {
            return vec![Inst::MovImm { dst, imm }];
        }
        if i32::try_from(imm).is_ok() {
            return vec![
                Inst::MovImm { dst, imm: imm >> 16 },
                Inst::OrShl16 { dst, imm: imm as u16 },
            ];
        }
        vec![
            Inst::MovImm { dst, imm: imm >> 48 },
            Inst::OrShl16 { dst, imm: (imm >> 32) as u16 },
            Inst::OrShl16 { dst, imm: (imm >> 16) as u16 },
            Inst::OrShl16 { dst, imm: imm as u16 },
        ]
    }

    /// Build the binary.
    ///
    /// # Errors
    ///
    /// Any [`AsmError`]: undefined references, encoding failures,
    /// jump-table overflow, or a missing entry function.
    pub fn build(&self) -> Result<Binary, AsmError> {
        let layout = self.relax()?;
        let func_index: HashMap<String, usize> =
            self.funcs.iter().enumerate().map(|(i, f)| (f.name.clone(), i)).collect();
        if func_index.len() != self.funcs.len() {
            // Find the duplicate for the error message.
            let mut seen = BTreeSet::new();
            for f in &self.funcs {
                if !seen.insert(&f.name) {
                    return Err(AsmError::DuplicateSymbol { name: f.name.clone() });
                }
            }
        }
        let func_map: HashMap<String, u64> = self
            .funcs
            .iter()
            .zip(&layout.func_addrs)
            .map(|(f, a)| (f.name.clone(), *a))
            .collect();

        // ----- data layout (addresses only) --------------------------
        let page = 0x1000u64;
        let rodata_addr = align_up(layout.text_end, page);
        let mut data_map: HashMap<String, u64> = HashMap::new();
        let rodata_size =
            layout_data(&self.rodata, rodata_addr, &mut data_map)?;
        let data_addr = align_up(rodata_addr + rodata_size, page);
        let data_size = layout_data(&self.data, data_addr, &mut data_map)?;
        let fini_addr = align_up(data_addr + data_size, 16);
        let fini_size = 8 * self.fini.len() as u64;
        let pclntab_addr = align_up(fini_addr + fini_size, 16);
        let toc_base = rodata_addr + 0x8000;
        if self.go_funcs.is_some() {
            // Make the Go function table addressable by generated
            // runtime code (findfunc/pcvalue walk it with loads).
            data_map.insert("__pclntab".to_string(), pclntab_addr);
        }

        // Inline (in-code) jump tables are addressable data symbols;
        // register them before any reference resolution.
        for (fi, f) in self.funcs.iter().enumerate() {
            let mut addr = layout.func_addrs[fi];
            for (ii, item) in f.items.iter().enumerate() {
                if let Item::InlineTable { name, entry_width, .. } = item {
                    let table_base = addr + pad_to(addr, u64::from(*entry_width));
                    if data_map.insert(name.clone(), table_base).is_some() {
                        return Err(AsmError::DuplicateSymbol { name: name.clone() });
                    }
                }
                addr += layout.item_sizes[fi][ii];
            }
        }

        // ----- emit text ---------------------------------------------
        let mut relocations: Vec<Relocation> = Vec::new();
        let mut text = Vec::with_capacity((layout.text_end - self.text_base()) as usize);
        let nop = encode(&Inst::Nop, self.arch).expect("nop encodes");
        let resolve = |t: &RefTarget| {
            self.resolve(t, &func_map, &data_map, &layout.labels, &func_index)
        };
        for (fi, f) in self.funcs.iter().enumerate() {
            // Inter-function alignment padding.
            while self.text_base() + text.len() as u64 != layout.func_addrs[fi] {
                text.extend_from_slice(&nop);
            }
            let mut addr = layout.func_addrs[fi];
            for (ii, item) in f.items.iter().enumerate() {
                let assumed = layout.item_sizes[fi][ii];
                let mut bytes: Vec<u8> = Vec::new();
                let enc = |inst: &Inst, out: &mut Vec<u8>| -> Result<(), AsmError> {
                    out.extend_from_slice(&encode(inst, self.arch).map_err(|err| {
                        AsmError::Encode { func: f.name.clone(), err }
                    })?);
                    Ok(())
                };
                match item {
                    Item::Label(_) => {}
                    Item::I(inst) => enc(inst, &mut bytes)?,
                    Item::JmpL(l) | Item::JccL(_, l) => {
                        let target = *layout.labels[fi].get(l).ok_or_else(|| {
                            AsmError::UndefinedLabel { func: f.name.clone(), label: l.clone() }
                        })?;
                        let offset = target as i64 - addr as i64;
                        let inst = match item {
                            Item::JmpL(_) => Inst::Jump { offset },
                            Item::JccL(c, _) => Inst::JumpCond { cond: *c, offset },
                            _ => unreachable!(),
                        };
                        enc(&inst, &mut bytes)?;
                        // A promoted branch may shrink back below the
                        // i8 boundary as other code moved; re-encode in
                        // the wide form's budget by nop-padding below.
                    }
                    Item::CallF(name) | Item::TailJmpF(name) => {
                        let target = resolve(&RefTarget::Func(name.clone()))?;
                        let offset = target as i64 - addr as i64;
                        let inst = if matches!(item, Item::CallF(_)) {
                            Inst::Call { offset }
                        } else {
                            Inst::Jump { offset }
                        };
                        enc(&inst, &mut bytes)?;
                    }
                    Item::LoadAddr { dst, target, delta } => {
                        let t = resolve(target)?.wrapping_add_signed(*delta);
                        for inst in self.load_addr_insts(*dst, t, addr, toc_base) {
                            enc(&inst, &mut bytes)?;
                        }
                    }
                    Item::MovWide { dst, imm } => {
                        for inst in self.mov_wide_insts(*dst, *imm) {
                            enc(&inst, &mut bytes)?;
                        }
                    }
                    Item::LoadFrom { dst, target, offset, width, sign, tmp } => {
                        let t = resolve(target)?.wrapping_add_signed(*offset);
                        if self.arch == Arch::X64 {
                            enc(
                                &Inst::Load {
                                    dst: *dst,
                                    addr: icfgp_isa::Addr::pc_rel(t as i64 - addr as i64),
                                    width: *width,
                                    sign: *sign,
                                },
                                &mut bytes,
                            )?;
                        } else {
                            for inst in self.load_addr_insts(*tmp, t, addr, toc_base) {
                                enc(&inst, &mut bytes)?;
                            }
                            enc(
                                &Inst::Load {
                                    dst: *dst,
                                    addr: icfgp_isa::Addr::base_only(*tmp),
                                    width: *width,
                                    sign: *sign,
                                },
                                &mut bytes,
                            )?;
                        }
                    }
                    Item::StoreTo { src, target, offset, width, tmp } => {
                        let t = resolve(target)?.wrapping_add_signed(*offset);
                        if self.arch == Arch::X64 {
                            enc(
                                &Inst::Store {
                                    src: *src,
                                    addr: icfgp_isa::Addr::pc_rel(t as i64 - addr as i64),
                                    width: *width,
                                },
                                &mut bytes,
                            )?;
                        } else {
                            for inst in self.load_addr_insts(*tmp, t, addr, toc_base) {
                                enc(&inst, &mut bytes)?;
                            }
                            enc(
                                &Inst::Store {
                                    src: *src,
                                    addr: icfgp_isa::Addr::base_only(*tmp),
                                    width: *width,
                                },
                                &mut bytes,
                            )?;
                        }
                    }
                    Item::InlineTable { name, entry_width, kind, targets } => {
                        let pad = pad_to(addr, u64::from(*entry_width));
                        bytes.resize(pad as usize, nop[0]);
                        let table_base = addr + pad;
                        for label in targets {
                            let t = *layout.labels[fi].get(label).ok_or_else(|| {
                                AsmError::UndefinedLabel {
                                    func: f.name.clone(),
                                    label: label.clone(),
                                }
                            })?;
                            let slot = table_base + (bytes.len() as u64 - pad);
                            write_table_entry(
                                &mut bytes,
                                name,
                                *kind,
                                *entry_width,
                                t,
                                table_base,
                            )?;
                            add_table_reloc(
                                &mut relocations,
                                self.pie,
                                *kind,
                                *entry_width,
                                slot,
                                t,
                                name,
                            )?;
                        }
                        if self.arch.is_fixed_width() {
                            while !(addr + bytes.len() as u64).is_multiple_of(4) {
                                bytes.push(0);
                            }
                        }
                    }
                    Item::Align(_) => {}
                }
                // Pad up to the assumed size so label addresses hold.
                debug_assert!(
                    bytes.len() as u64 <= assumed,
                    "item {item:?} emitted {} bytes > assumed {assumed}",
                    bytes.len()
                );
                while (bytes.len() as u64) < assumed {
                    bytes.extend_from_slice(&nop);
                }
                bytes.truncate(assumed as usize);
                text.extend_from_slice(&bytes);
                addr += assumed;
            }
        }

        // ----- emit data ----------------------------------------------
        let emit_data = |items: &[(Option<String>, DataItem)],
                         base: u64,
                         relocations: &mut Vec<Relocation>|
         -> Result<Vec<u8>, AsmError> {
            let mut out: Vec<u8> = Vec::new();
            for (_, item) in items {
                let addr = base + out.len() as u64;
                match item {
                    DataItem::Bytes(b) => out.extend_from_slice(b),
                    DataItem::Zeros(n) => out.resize(out.len() + n, 0),
                    DataItem::Addr { target, delta } => {
                        let t = resolve(target)?.wrapping_add_signed(*delta);
                        if self.pie {
                            relocations.push(Relocation::relative(addr, t));
                        }
                        out.extend_from_slice(&t.to_le_bytes());
                    }
                    DataItem::JumpTable { entry_width, kind, targets } => {
                        let pad = pad_to(addr, u64::from(*entry_width));
                        out.resize(out.len() + pad as usize, 0);
                        let table_base = addr + pad;
                        for (func, label) in targets {
                            let t = resolve(&RefTarget::label(func.clone(), label.clone()))?;
                            let slot = base + out.len() as u64;
                            write_table_entry(
                                &mut out,
                                "<data table>",
                                *kind,
                                *entry_width,
                                t,
                                table_base,
                            )?;
                            add_table_reloc(
                                relocations,
                                self.pie,
                                *kind,
                                *entry_width,
                                slot,
                                t,
                                "<data table>",
                            )?;
                        }
                    }
                    DataItem::Align(a) => {
                        let pad = pad_to(addr, u64::from(*a));
                        out.resize(out.len() + pad as usize, 0);
                    }
                }
            }
            Ok(out)
        };
        let rodata_bytes = emit_data(&self.rodata, rodata_addr, &mut relocations)?;
        let data_bytes = emit_data(&self.data, data_addr, &mut relocations)?;

        // ----- fini array ---------------------------------------------
        let mut fini_bytes = Vec::with_capacity(self.fini.len() * 8);
        for (i, name) in self.fini.iter().enumerate() {
            let t = resolve(&RefTarget::Func(name.clone()))?;
            if self.pie {
                relocations.push(Relocation::relative(fini_addr + 8 * i as u64, t));
            }
            fini_bytes.extend_from_slice(&t.to_le_bytes());
        }

        // ----- pclntab -------------------------------------------------
        let mut pclntab_struct = None;
        let mut pclntab_bytes = Vec::new();
        if let Some(go_funcs) = &self.go_funcs {
            let mut table = GoFuncTable::new();
            for (i, (name, frame)) in go_funcs.iter().enumerate() {
                let fi = *func_index
                    .get(name)
                    .ok_or_else(|| AsmError::UndefinedFunction { name: name.clone() })?;
                table.push(GoFuncEntry {
                    start: layout.func_addrs[fi],
                    end: layout.func_addrs[fi] + layout.func_sizes[fi],
                    func_id: i as u64 + 1,
                    frame_size: *frame,
                });
            }
            pclntab_bytes = table.to_bytes();
            if self.pie {
                for (off, value) in table.address_slot_offsets() {
                    relocations.push(Relocation::relative(pclntab_addr + off as u64, value));
                }
            }
            pclntab_struct = Some(table);
        }

        // ----- synthetic dynamic-linking + unwind sections ------------
        let sym_count = self.funcs.len() + data_map.len();
        let dynsym_size = 24 * sym_count + self.sizes.extra_dynsym;
        let dynstr_size = self
            .funcs
            .iter()
            .map(|f| f.name.len() + 1)
            .sum::<usize>()
            + self.sizes.extra_dynstr
            + 64;
        let rela_size = 24 * relocations.len() + self.sizes.extra_rela + 24;
        let dynsym_addr = align_up(pclntab_addr + pclntab_bytes.len() as u64, 16);
        let dynstr_addr = dynsym_addr + dynsym_size as u64;
        let rela_addr = align_up(dynstr_addr + dynstr_size as u64, 16);
        let eh_addr = align_up(rela_addr + rela_size as u64, 16);

        // ----- unwind table --------------------------------------------
        let mut unwind = icfgp_obj::UnwindTable::new();
        let mut eh_size = 16usize; // CIE-ish header
        for (fi, f) in self.funcs.iter().enumerate() {
            let Some(spec) = &f.unwind else { continue };
            let leaf = !f.items.iter().any(|i| {
                matches!(i, Item::CallF(_))
                    || matches!(
                        i,
                        Item::I(
                            Inst::Call { .. }
                                | Inst::CallReg { .. }
                                | Inst::CallMem { .. }
                                | Inst::CallTar
                        )
                    )
            });
            let ra = spec
                .ra
                .unwrap_or_else(|| standard_ra_rule(self.arch, spec.frame_size, leaf));
            let mut call_sites = Vec::new();
            for (start, end, pad) in &spec.call_sites {
                let addr_of = |l: &String| {
                    layout.labels[fi].get(l).copied().ok_or_else(|| AsmError::UndefinedLabel {
                        func: f.name.clone(),
                        label: l.clone(),
                    })
                };
                call_sites.push(CallSiteEntry {
                    start: addr_of(start)?,
                    end: addr_of(end)?,
                    landing_pad: addr_of(pad)?,
                });
            }
            eh_size += 32 + 16 * call_sites.len();
            unwind.push(UnwindEntry {
                start: layout.func_addrs[fi],
                end: layout.func_addrs[fi] + layout.func_sizes[fi],
                frame_size: spec.frame_size,
                ra,
                call_sites,
            });
        }

        // ----- assemble the Binary -------------------------------------
        let mut bin = Binary::new(self.arch);
        bin.kind = self.kind;
        let entry_name = self.entry.as_ref().ok_or(AsmError::NoEntry)?;
        bin.entry = resolve(&RefTarget::Func(entry_name.clone()))?;
        bin.add_section(Section::new(
            names::TEXT,
            self.text_base(),
            text,
            SectionFlags::exec(),
            SectionKind::Text,
        ));
        bin.add_section(Section::new(
            names::RODATA,
            rodata_addr,
            rodata_bytes,
            SectionFlags::ro(),
            SectionKind::ReadOnlyData,
        ));
        bin.add_section(Section::new(
            names::DATA,
            data_addr,
            data_bytes,
            SectionFlags::rw(),
            SectionKind::Data,
        ));
        if !fini_bytes.is_empty() {
            bin.add_section(Section::new(
                names::FINI_ARRAY,
                fini_addr,
                fini_bytes,
                SectionFlags::ro(),
                SectionKind::Data,
            ));
        }
        if !pclntab_bytes.is_empty() {
            bin.add_section(Section::new(
                names::PCLNTAB,
                pclntab_addr,
                pclntab_bytes,
                SectionFlags::ro(),
                SectionKind::ReadOnlyData,
            ));
        }
        bin.add_section(Section::new(
            names::DYNSYM,
            dynsym_addr,
            vec![0; dynsym_size],
            SectionFlags::ro(),
            SectionKind::DynamicMeta,
        ));
        bin.add_section(Section::new(
            names::DYNSTR,
            dynstr_addr,
            vec![0; dynstr_size],
            SectionFlags::ro(),
            SectionKind::DynamicMeta,
        ));
        bin.add_section(Section::new(
            names::RELA_DYN,
            rela_addr,
            vec![0; rela_size],
            SectionFlags::ro(),
            SectionKind::DynamicMeta,
        ));
        bin.add_section(Section::new(
            names::EH_FRAME,
            eh_addr,
            vec![0; eh_size],
            SectionFlags::ro(),
            SectionKind::Unwind,
        ));

        for (fi, f) in self.funcs.iter().enumerate() {
            let mut attrs = f.attrs;
            attrs.is_finalizer = attrs.is_finalizer || self.fini.contains(&f.name);
            attrs.has_eh =
                attrs.has_eh || f.unwind.as_ref().is_some_and(|u| !u.call_sites.is_empty());
            let name = if self.stripped { String::new() } else { f.name.clone() };
            let mut sym = Symbol::func(name, layout.func_addrs[fi], layout.func_sizes[fi], f.language);
            sym.attrs = attrs;
            bin.add_symbol(sym);
        }
        let mut data_syms: Vec<(&String, &u64)> = data_map.iter().collect();
        data_syms.sort_by_key(|(_, a)| **a);
        for (name, addr) in data_syms {
            if !self.stripped {
                bin.add_symbol(Symbol::object(name.clone(), *addr, 8));
            }
        }

        bin.relocations = relocations;
        if self.link_time_relocs {
            // Presence marker: one link-time record per function symbol.
            let lt: Vec<Relocation> = layout
                .func_addrs
                .iter()
                .map(|a| Relocation::link_time(*a, *a))
                .collect();
            bin.relocations.extend(lt);
        }
        bin.unwind = unwind;
        bin.pclntab = pclntab_struct;
        bin.meta.pie = self.pie;
        bin.meta.has_link_time_relocs = self.link_time_relocs;
        bin.meta.has_symbol_versioning = self.symbol_versioning;
        bin.meta.stripped = self.stripped;
        bin.meta.languages = self.funcs.iter().map(|f| f.language).collect();
        if self.arch == Arch::Ppc64le {
            bin.toc_base = Some(toc_base);
        }
        debug_assert!(bin.validate_layout().is_ok());
        Ok(bin)
    }
}

/// Bytes needed to pad `addr` up to `align`.
fn pad_to(addr: u64, align: u64) -> u64 {
    if align <= 1 {
        return 0;
    }
    (align - (addr % align)) % align
}

fn align_up(addr: u64, align: u64) -> u64 {
    addr + pad_to(addr, align)
}

/// Compute a data section's layout: symbol addresses and total size.
fn layout_data(
    items: &[(Option<String>, DataItem)],
    base: u64,
    data_map: &mut HashMap<String, u64>,
) -> Result<u64, AsmError> {
    let mut cursor = base;
    for (sym, item) in items {
        // Pre-alignment so symbols point at aligned starts.
        let pre = match item {
            DataItem::JumpTable { entry_width, .. } => pad_to(cursor, u64::from(*entry_width)),
            DataItem::Align(a) => pad_to(cursor, u64::from(*a)),
            _ => 0,
        };
        cursor += pre;
        if let Some(name) = sym {
            if data_map.insert(name.clone(), cursor).is_some() {
                return Err(AsmError::DuplicateSymbol { name: name.clone() });
            }
        }
        cursor += match item {
            DataItem::Bytes(b) => b.len() as u64,
            DataItem::Zeros(n) => *n as u64,
            DataItem::Addr { .. } => 8,
            DataItem::JumpTable { entry_width, targets, .. } => {
                u64::from(*entry_width) * targets.len() as u64
            }
            DataItem::Align(_) => 0,
        };
    }
    Ok(cursor - base)
}

/// Append one jump-table entry, checking width overflow.
fn write_table_entry(
    out: &mut Vec<u8>,
    table: &str,
    kind: EntryKind,
    width: u8,
    target: u64,
    table_base: u64,
) -> Result<(), AsmError> {
    let value = kind.entry_value(target, table_base);
    let fits = match (kind, width) {
        (EntryKind::Absolute, 8) => true,
        (EntryKind::Absolute, 4) => u32::try_from(value).is_ok(),
        (_, 1) => i8::try_from(value).is_ok() || u8::try_from(value).is_ok(),
        (_, 2) => i16::try_from(value).is_ok() || u16::try_from(value).is_ok(),
        (_, 4) => i32::try_from(value).is_ok(),
        (_, 8) => true,
        _ => false,
    };
    if !fits {
        return Err(AsmError::TableEntryOverflow { table: table.to_string(), value, width });
    }
    out.extend_from_slice(&value.to_le_bytes()[..width as usize]);
    Ok(())
}

/// PIE absolute table entries need RELATIVE relocations and must be
/// 8 bytes wide (the loader writes full words).
fn add_table_reloc(
    relocations: &mut Vec<Relocation>,
    pie: bool,
    kind: EntryKind,
    width: u8,
    slot: u64,
    target: u64,
    table: &str,
) -> Result<(), AsmError> {
    if pie && kind == EntryKind::Absolute {
        if width != 8 {
            return Err(AsmError::TableEntryOverflow {
                table: table.to_string(),
                value: target as i64,
                width,
            });
        }
        relocations.push(Relocation::relative(slot, target));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::UnwindSpec;
    use icfgp_isa::{decode, Cond, SysOp, Width};
    use icfgp_obj::Language;

    fn out_and_halt() -> Vec<Item> {
        vec![
            Item::I(Inst::MovImm { dst: Reg(8), imm: 7 }),
            Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
            Item::I(Inst::Halt),
        ]
    }

    #[test]
    fn minimal_binary_builds() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            b.add_function(FuncDef::new("main", Language::C, out_and_halt()));
            b.set_entry("main");
            let bin = b.build().unwrap();
            assert_eq!(bin.entry, bin.function_named("main").unwrap().addr);
            assert!(bin.section(".text").unwrap().len() > 0);
            assert!(bin.validate_layout().is_ok());
        }
    }

    #[test]
    fn duplicate_function_rejected() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("f", Language::C, out_and_halt()));
        b.add_function(FuncDef::new("f", Language::C, out_and_halt()));
        b.set_entry("f");
        assert!(matches!(b.build(), Err(AsmError::DuplicateSymbol { .. })));
    }

    #[test]
    fn undefined_label_rejected() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("f", Language::C, vec![Item::JmpL("nowhere".into())]));
        b.set_entry("f");
        assert!(matches!(b.build(), Err(AsmError::UndefinedLabel { .. })));
    }

    #[test]
    fn branch_relaxation_grows_far_branches() {
        // A jump over ~200 bytes of nops cannot stay short on x64.
        let mut items = vec![Item::JmpL("end".into())];
        items.extend(std::iter::repeat_n(Item::I(Inst::Nop), 200));
        items.push(Item::Label("end".into()));
        items.push(Item::I(Inst::Halt));
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("f", Language::C, items));
        b.set_entry("f");
        let bin = b.build().unwrap();
        let text = bin.section(".text").unwrap();
        let (inst, len) = decode(text.data(), Arch::X64).unwrap();
        assert_eq!(len, 5, "must use the near form");
        assert_eq!(inst, Inst::Jump { offset: 205 });
    }

    #[test]
    fn short_branches_stay_short() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new(
            "f",
            Language::C,
            vec![
                Item::JccL(Cond::Eq, "end".into()),
                Item::I(Inst::Nop),
                Item::Label("end".into()),
                Item::I(Inst::Halt),
            ],
        ));
        b.set_entry("f");
        let bin = b.build().unwrap();
        let text = bin.section(".text").unwrap();
        let (_, len) = decode(text.data(), Arch::X64).unwrap();
        assert_eq!(len, 3, "short jcc form");
    }

    #[test]
    fn functions_are_aligned_with_nop_padding() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("a", Language::C, vec![Item::I(Inst::Ret)]));
        b.add_function(FuncDef::new("b", Language::C, vec![Item::I(Inst::Halt)]));
        b.set_entry("a");
        let bin = b.build().unwrap();
        let sym_b = bin.function_named("b").unwrap();
        assert_eq!(sym_b.addr % 16, 0);
        // The padding bytes between `a` (1 byte) and `b` decode as nops.
        let text = bin.section(".text").unwrap();
        let pad = text.read(bin.function_named("a").unwrap().end(), 1).unwrap();
        let (inst, _) = decode(pad, Arch::X64).unwrap();
        assert_eq!(inst, Inst::Nop);
    }

    #[test]
    fn data_jump_table_absolute_gets_relocs_in_pie() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.pie(true);
        b.add_function(FuncDef::new(
            "f",
            Language::C,
            vec![
                Item::Label("case0".into()),
                Item::I(Inst::Nop),
                Item::Label("case1".into()),
                Item::I(Inst::Halt),
            ],
        ));
        b.push_rodata(
            Some("jt"),
            DataItem::JumpTable {
                entry_width: 8,
                kind: EntryKind::Absolute,
                targets: vec![
                    ("f".to_string(), "case0".to_string()),
                    ("f".to_string(), "case1".to_string()),
                ],
            },
        );
        b.set_entry("f");
        let bin = b.build().unwrap();
        assert_eq!(bin.runtime_relocations().count(), 2);
        // The slot contents equal the link-time label addresses.
        let jt = bin.symbols().iter().find(|s| s.name == "jt").unwrap();
        let v0 = bin.read_u64(jt.addr).unwrap();
        assert_eq!(v0, bin.function_named("f").unwrap().addr);
    }

    #[test]
    fn relative_table_entries_encode_deltas() {
        // Compact scaled tables (the aarch64 idiom) sit inline in code,
        // close to their targets, so byte entries reach.
        let mut b = BinaryBuilder::new(Arch::Aarch64);
        b.pie(true);
        b.add_function(FuncDef::new(
            "f",
            Language::C,
            vec![
                Item::JmpL("c0".into()),
                Item::InlineTable {
                    name: "jt".into(),
                    entry_width: 1,
                    kind: EntryKind::RelativeScaled,
                    targets: vec!["c0".into(), "c1".into()],
                },
                Item::Label("c0".into()),
                Item::I(Inst::Nop),
                Item::Label("c1".into()),
                Item::I(Inst::Halt),
            ],
        ));
        b.set_entry("f");
        let bin = b.build().unwrap();
        let jt = bin.symbols().iter().find(|s| s.name == "jt").unwrap();
        let e0 = bin.read(jt.addr, 1).unwrap()[0] as i8 as i64;
        let e1 = bin.read(jt.addr + 1, 1).unwrap()[0] as i8 as i64;
        let t0 = EntryKind::RelativeScaled.target_of(e0, jt.addr);
        let t1 = EntryKind::RelativeScaled.target_of(e1, jt.addr);
        assert!(bin.function_named("f").unwrap().contains(t0));
        assert_eq!(t1, t0 + 4, "c1 is one instruction after c0");
        // No relocations for relative entries, even in PIE.
        assert_eq!(bin.runtime_relocations().count(), 0);
    }

    #[test]
    fn load_addr_materialises_correct_address() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            b.pie(true);
            b.add_function(FuncDef::new(
                "f",
                Language::C,
                vec![
                    Item::LoadAddr { dst: Reg(9), target: RefTarget::Data("blob".into()), delta: 4 },
                    Item::I(Inst::Halt),
                ],
            ));
            b.push_rodata(Some("blob"), DataItem::Bytes(vec![1, 2, 3, 4, 5, 6, 7, 8]));
            b.set_entry("f");
            let bin = b.build().unwrap();
            // Just decoding the first instructions must succeed.
            let text = bin.section(".text").unwrap();
            let (first, _) = decode(text.data(), arch).unwrap();
            match arch {
                Arch::X64 => assert!(matches!(first, Inst::Lea { .. })),
                Arch::Ppc64le => assert!(matches!(first, Inst::AddShl16 { .. })),
                Arch::Aarch64 => assert!(matches!(first, Inst::AdrPage { .. })),
            }
        }
    }

    #[test]
    fn go_functable_and_fini_are_emitted() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.pie(true);
        b.add_function(FuncDef::new("main", Language::Go, out_and_halt()));
        b.add_function(FuncDef::new("dtor", Language::Go, vec![Item::I(Inst::Ret)]));
        b.set_go_functable(vec![("main".to_string(), 32)]);
        b.add_fini("dtor");
        b.set_entry("main");
        let bin = b.build().unwrap();
        let table = bin.pclntab.as_ref().unwrap();
        assert_eq!(table.len(), 1);
        let main = bin.function_named("main").unwrap();
        assert_eq!(table.find(main.addr).unwrap().func_id, 1);
        assert!(bin.section(".pclntab").is_some());
        assert!(bin.section(".fini_array").is_some());
        let dtor = bin.function_named("dtor").unwrap();
        assert!(dtor.attrs.is_finalizer);
        // fini slot holds dtor's address and is relocated in PIE.
        let fini = bin.section(".fini_array").unwrap();
        assert_eq!(bin.read_u64(fini.addr()).unwrap(), dtor.addr);
        assert!(bin.relocation_at(fini.addr()).is_some());
    }

    #[test]
    fn unwind_entries_resolve_call_sites() {
        let mut b = BinaryBuilder::new(Arch::X64);
        let mut items = crate::prologue(Arch::X64, 32, false);
        items.push(Item::Label("cs_start".into()));
        items.push(Item::CallF("callee".into()));
        items.push(Item::Label("cs_end".into()));
        items.extend(crate::epilogue(Arch::X64, 32, false));
        items.push(Item::Label("landing".into()));
        items.extend(crate::epilogue(Arch::X64, 32, false));
        b.add_function(
            FuncDef::new("catcher", Language::Cpp, items).with_unwind(UnwindSpec {
                frame_size: 32,
                ra: None,
                call_sites: vec![("cs_start".into(), "cs_end".into(), "landing".into())],
            }),
        );
        b.add_function(FuncDef::new("callee", Language::Cpp, vec![Item::I(Inst::Ret)]));
        b.set_entry("catcher");
        let bin = b.build().unwrap();
        let e = bin.unwind.lookup(bin.function_named("catcher").unwrap().addr).unwrap();
        assert_eq!(e.frame_size, 32);
        assert_eq!(e.call_sites.len(), 1);
        assert!(e.call_sites[0].landing_pad > e.call_sites[0].end);
        assert!(bin.function_named("catcher").unwrap().attrs.has_eh);
    }

    #[test]
    fn inline_table_lands_in_text() {
        let mut b = BinaryBuilder::new(Arch::Ppc64le);
        b.add_function(FuncDef::new(
            "f",
            Language::C,
            vec![
                Item::JmpL("after".into()),
                Item::InlineTable {
                    name: "embedded".into(),
                    entry_width: 8,
                    kind: EntryKind::Absolute,
                    targets: vec!["after".into()],
                },
                Item::Label("after".into()),
                Item::I(Inst::Halt),
            ],
        ));
        b.set_entry("f");
        let bin = b.build().unwrap();
        let tbl = bin.symbols().iter().find(|s| s.name == "embedded").unwrap();
        assert!(bin.section(".text").unwrap().contains(tbl.addr), "table embedded in code");
        let entry = bin.read_u64(tbl.addr).unwrap();
        // Entry points at the `after` label, which is inside `f`.
        assert!(bin.function_named("f").unwrap().contains(entry));
    }

    #[test]
    fn link_time_relocs_marker() {
        let mut b = BinaryBuilder::new(Arch::X64);
        b.add_function(FuncDef::new("f", Language::C, out_and_halt()));
        b.set_entry("f");
        b.link_time_relocs(true);
        let bin = b.build().unwrap();
        assert!(bin.meta.has_link_time_relocs);
        assert!(bin.relocations.iter().any(|r| r.kind == icfgp_obj::RelocKind::LinkTime));
    }

    #[test]
    fn loadfrom_storeto_emit_for_all_arches() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            b.add_function(FuncDef::new(
                "f",
                Language::C,
                vec![
                    Item::LoadFrom {
                        dst: Reg(9),
                        target: RefTarget::Data("cell".into()),
                        offset: 0,
                        width: Width::W8,
                        sign: false,
                        tmp: Reg(10),
                    },
                    Item::StoreTo {
                        src: Reg(9),
                        target: RefTarget::Data("cell".into()),
                        offset: 8,
                        width: Width::W8,
                        tmp: Reg(10),
                    },
                    Item::I(Inst::Halt),
                ],
            ));
            b.push_data(Some("cell"), DataItem::Zeros(16));
            b.set_entry("f");
            b.build().unwrap_or_else(|e| panic!("{arch}: {e}"));
        }
    }

    #[test]
    fn toc_base_set_on_ppc_only() {
        for arch in Arch::ALL {
            let mut b = BinaryBuilder::new(arch);
            b.add_function(FuncDef::new("f", Language::C, out_and_halt()));
            b.set_entry("f");
            let bin = b.build().unwrap();
            assert_eq!(bin.toc_base.is_some(), arch == Arch::Ppc64le);
        }
    }
}

#![warn(missing_docs)]
//! Assembler and binary layout: turns per-function item streams into a
//! complete [`icfgp_obj::Binary`].
//!
//! This is the "compiler backend" the synthetic workload generator uses
//! to produce binaries that contain exactly the constructs the paper's
//! analyses target:
//!
//! * label-resolved direct branches with **x64 branch relaxation**
//!   (short forms grow to near forms at fixpoint — tiny blocks and
//!   mixed-size branches arise naturally);
//! * **jump tables** in `.rodata` or embedded in code (the ppc64le
//!   idiom that breaks Egalito's Assumption 1), with absolute or
//!   table-relative entries in 1/2/4/8-byte widths;
//! * **address materialisation** per architecture: x64 `lea`
//!   (PC-relative, PIE) or absolute `mov` (non-PIE), ppc64le
//!   `addis r2`/`addi` TOC pairs, aarch64 `adrp`/`add` pairs;
//! * function symbols, unwind entries, Go-style `.pclntab`,
//!   `.fini_array`, and synthetic dynamic-linking sections
//!   (`.dynsym`/`.dynstr`/`.rela_dyn`) whose *sizes* are realistic —
//!   after rewriting they become the scratch space of §7;
//! * RELATIVE relocations for every absolute address slot when
//!   building PIE.
//!
//! # Example
//!
//! ```
//! use icfgp_asm::{BinaryBuilder, FuncDef, Item};
//! use icfgp_isa::{Arch, Inst, Reg, SysOp};
//! use icfgp_obj::Language;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = BinaryBuilder::new(Arch::X64);
//! b.add_function(FuncDef::new("main", Language::C, vec![
//!     Item::I(Inst::MovImm { dst: Reg(8), imm: 42 }),
//!     Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
//!     Item::I(Inst::Halt),
//! ]));
//! b.set_entry("main");
//! let bin = b.build()?;
//! assert_eq!(bin.function_named("main").unwrap().addr, bin.entry);
//! # Ok(())
//! # }
//! ```

mod builder;
mod item;
pub mod patterns;

pub use builder::{BinaryBuilder, SectionSizes};
pub use item::{
    epilogue, prologue, DataItem, EntryKind, FuncDef, Item, RefTarget, UnwindSpec,
};

use icfgp_isa::EncodeError;
use std::fmt;

/// Errors produced while assembling a binary.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are named self-descriptively and shown by Display
pub enum AsmError {
    /// A referenced label is not defined in the function.
    UndefinedLabel { func: String, label: String },
    /// A referenced function does not exist.
    UndefinedFunction { name: String },
    /// A referenced data symbol does not exist.
    UndefinedData { name: String },
    /// An instruction could not be encoded.
    Encode { func: String, err: EncodeError },
    /// A jump-table entry value does not fit the entry width.
    TableEntryOverflow { table: String, value: i64, width: u8 },
    /// Branch relaxation failed to converge.
    RelaxationDiverged,
    /// The entry function was never defined.
    NoEntry,
    /// A duplicate symbol was defined.
    DuplicateSymbol { name: String },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { func, label } => {
                write!(f, "undefined label {label} in function {func}")
            }
            AsmError::UndefinedFunction { name } => write!(f, "undefined function {name}"),
            AsmError::UndefinedData { name } => write!(f, "undefined data symbol {name}"),
            AsmError::Encode { func, err } => write!(f, "encoding failed in {func}: {err}"),
            AsmError::TableEntryOverflow { table, value, width } => {
                write!(f, "jump table {table}: entry value {value:#x} overflows {width} bytes")
            }
            AsmError::RelaxationDiverged => write!(f, "branch relaxation did not converge"),
            AsmError::NoEntry => write!(f, "no entry function set"),
            AsmError::DuplicateSymbol { name } => write!(f, "duplicate symbol {name}"),
        }
    }
}

impl std::error::Error for AsmError {}

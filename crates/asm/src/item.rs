//! Assembly items: the input language of the builder.

use icfgp_isa::{Addr, AluOp, Arch, Cond, Inst, Reg, Width};
use icfgp_obj::{Language, RaRule, SymbolAttrs};

/// A reference to something with an address, resolved at layout time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefTarget {
    /// A function by name.
    Func(String),
    /// A data symbol by name.
    Data(String),
    /// A label `label` inside function `func` (jump-table targets).
    Label {
        /// Containing function.
        func: String,
        /// Label name within that function.
        label: String,
    },
}

impl RefTarget {
    /// Convenience constructor for [`RefTarget::Label`].
    #[must_use]
    pub fn label(func: impl Into<String>, label: impl Into<String>) -> RefTarget {
        RefTarget::Label { func: func.into(), label: label.into() }
    }
}

/// One element of a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Define a local label at the current position.
    Label(String),
    /// A concrete instruction (no symbolic operands).
    I(Inst),
    /// Unconditional jump to a local label (relaxed short→near on x64).
    JmpL(String),
    /// Conditional jump to a local label (relaxed on x64).
    JccL(Cond, String),
    /// Direct call to a function by name.
    CallF(String),
    /// Direct tail-jump to a function by name (always near form).
    TailJmpF(String),
    /// Materialise the address of `target` (+`delta`) into `dst`.
    /// Expands to `lea`/`mov` (x64), `addis`+`addi` (ppc64le), or
    /// `adrp`+`add` (aarch64).
    LoadAddr {
        /// Destination register.
        dst: Reg,
        /// What to take the address of.
        target: RefTarget,
        /// Constant added to the resolved address.
        delta: i64,
    },
    /// Materialise a 64-bit constant (expands to `mov`+`orshl16` chains
    /// on RISC).
    MovWide {
        /// Destination register.
        dst: Reg,
        /// The constant.
        imm: i64,
    },
    /// Load from a data symbol (+offset). On RISC this expands to
    /// address materialisation into `tmp` followed by a load.
    LoadFrom {
        /// Destination register.
        dst: Reg,
        /// Symbol to load from.
        target: RefTarget,
        /// Byte offset added to the symbol address.
        offset: i64,
        /// Access width.
        width: Width,
        /// Sign-extend narrow loads.
        sign: bool,
        /// Scratch register for RISC address materialisation.
        tmp: Reg,
    },
    /// Store to a data symbol (+offset); RISC uses `tmp` for the
    /// address.
    StoreTo {
        /// Source register.
        src: Reg,
        /// Symbol to store to.
        target: RefTarget,
        /// Byte offset added to the symbol address.
        offset: i64,
        /// Access width.
        width: Width,
        /// Scratch register for RISC address materialisation.
        tmp: Reg,
    },
    /// A jump table embedded *inside the code section* (the ppc64le
    /// idiom). Must be placed after an unconditional control transfer.
    InlineTable {
        /// Data-symbol name the table is addressable by.
        name: String,
        /// Entry width in bytes (1, 2, 4 or 8).
        entry_width: u8,
        /// Entry encoding; see [`EntryKind`].
        kind: EntryKind,
        /// Local labels the entries point at.
        targets: Vec<String>,
    },
    /// Pad with `nop`s to the given alignment.
    Align(u8),
}

/// How a jump-table entry encodes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// `entry = target` (absolute; needs a RELATIVE relocation per
    /// entry in PIE).
    Absolute,
    /// `entry = target - table_base` (position independent).
    Relative,
    /// `entry = (target - table_base) >> 2` (aarch64-style compact
    /// byte/halfword tables).
    RelativeScaled,
}

impl EntryKind {
    /// Compute the stored entry value.
    #[must_use]
    pub fn entry_value(self, target: u64, table_base: u64) -> i64 {
        match self {
            EntryKind::Absolute => target as i64,
            EntryKind::Relative => target as i64 - table_base as i64,
            EntryKind::RelativeScaled => (target as i64 - table_base as i64) >> 2,
        }
    }

    /// Recover the target from a stored entry value.
    #[must_use]
    pub fn target_of(self, entry: i64, table_base: u64) -> u64 {
        match self {
            EntryKind::Absolute => entry as u64,
            EntryKind::Relative => (table_base as i64 + entry) as u64,
            EntryKind::RelativeScaled => (table_base as i64 + (entry << 2)) as u64,
        }
    }
}

/// One element of a data section.
#[derive(Debug, Clone, PartialEq)]
pub enum DataItem {
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Zero-filled bytes.
    Zeros(usize),
    /// An 8-byte slot holding `target + delta` (RELATIVE-relocated in
    /// PIE).
    Addr {
        /// What the slot points at.
        target: RefTarget,
        /// Constant added to the resolved address (the `&goexit + 1`
        /// pattern sets this to 1).
        delta: i64,
    },
    /// A jump table in data.
    JumpTable {
        /// Entry width in bytes (1, 2, 4 or 8).
        entry_width: u8,
        /// Entry encoding.
        kind: EntryKind,
        /// Targets as (function, label) pairs.
        targets: Vec<(String, String)>,
    },
    /// Pad with zeros to the given alignment.
    Align(u8),
}

/// Unwind information for one function, with label-relative call sites.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnwindSpec {
    /// Bytes the prologue subtracts from the stack pointer.
    pub frame_size: u64,
    /// Where the return address lives post-prologue; `None` derives the
    /// standard rule (stack slot at `frame_size` on x64 with the pushed
    /// RA above the frame, stack slot at `frame_size - 8` on RISC
    /// non-leaf, link register for RISC leaves).
    pub ra: Option<RaRule>,
    /// Exception call-site ranges as (start label, end label, landing
    /// pad label).
    pub call_sites: Vec<(String, String, String)>,
}

/// A function definition handed to the builder.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Source language.
    pub language: Language,
    /// Symbol attributes.
    pub attrs: SymbolAttrs,
    /// Body items.
    pub items: Vec<Item>,
    /// Unwind info; `None` means no `.eh_frame` entry (the unwinder
    /// will refuse to step through this function).
    pub unwind: Option<UnwindSpec>,
}

impl FuncDef {
    /// A function with default attributes and no unwind entry.
    #[must_use]
    pub fn new(name: impl Into<String>, language: Language, items: Vec<Item>) -> FuncDef {
        FuncDef {
            name: name.into(),
            language,
            attrs: SymbolAttrs::default(),
            items,
            unwind: None,
        }
    }

    /// Attach an unwind spec.
    #[must_use]
    pub fn with_unwind(mut self, unwind: UnwindSpec) -> FuncDef {
        self.unwind = Some(unwind);
        self
    }

    /// Override symbol attributes.
    #[must_use]
    pub fn with_attrs(mut self, attrs: SymbolAttrs) -> FuncDef {
        self.attrs = attrs;
        self
    }
}

/// Standard prologue: allocate `frame_size` bytes and (on RISC
/// non-leaf) spill the link register to the top of the frame.
///
/// The frame layout matches the unwind rules in
/// [`UnwindSpec`]: on x64 the caller's `call` pushed the return address
/// at `[sp + frame_size]` post-prologue; on RISC the spilled `lr` lives
/// at `[sp + frame_size - 8]`.
#[must_use]
pub fn prologue(arch: Arch, frame_size: u64, leaf: bool) -> Vec<Item> {
    let sp = arch.sp();
    let mut items = Vec::new();
    if frame_size > 0 {
        items.push(Item::I(Inst::AluImm {
            op: AluOp::Sub,
            dst: sp,
            src: sp,
            imm: frame_size as i32,
        }));
    }
    if arch.has_link_register() && !leaf {
        // mflr r0; store r0, [sp + frame-8]
        items.push(Item::I(Inst::MoveFromLr { dst: Reg(0) }));
        items.push(Item::I(Inst::Store {
            src: Reg(0),
            addr: Addr::base_disp(sp, frame_size as i64 - 8),
            width: Width::W8,
        }));
    }
    items
}

/// Standard epilogue mirroring [`prologue`], ending in `ret`.
#[must_use]
pub fn epilogue(arch: Arch, frame_size: u64, leaf: bool) -> Vec<Item> {
    let sp = arch.sp();
    let mut items = Vec::new();
    if arch.has_link_register() && !leaf {
        items.push(Item::I(Inst::Load {
            dst: Reg(0),
            addr: Addr::base_disp(sp, frame_size as i64 - 8),
            width: Width::W8,
            sign: false,
        }));
        items.push(Item::I(Inst::MoveToLr { src: Reg(0) }));
    }
    if frame_size > 0 {
        items.push(Item::I(Inst::AluImm {
            op: AluOp::Add,
            dst: sp,
            src: sp,
            imm: frame_size as i32,
        }));
    }
    items.push(Item::I(Inst::Ret));
    items
}

/// Derive the standard [`RaRule`] for a function.
#[must_use]
pub fn standard_ra_rule(arch: Arch, frame_size: u64, leaf: bool) -> RaRule {
    if arch.has_link_register() {
        if leaf {
            RaRule::LinkRegister
        } else {
            RaRule::StackSlot { offset: frame_size as i64 - 8 }
        }
    } else {
        // x64: the caller's `call` pushed the RA just above our frame.
        RaRule::StackSlot { offset: frame_size as i64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_kind_roundtrip() {
        for kind in [EntryKind::Absolute, EntryKind::Relative, EntryKind::RelativeScaled] {
            let base = 0x2000u64;
            let target = 0x1450u64; // 4-aligned for the scaled kind
            let v = kind.entry_value(target, base);
            assert_eq!(kind.target_of(v, base), target, "{kind:?}");
        }
    }

    #[test]
    fn prologue_epilogue_shapes() {
        // x64 non-leaf: just the frame adjustment.
        assert_eq!(prologue(Arch::X64, 32, false).len(), 1);
        assert_eq!(epilogue(Arch::X64, 32, false).len(), 2);
        // RISC non-leaf: frame + lr spill.
        assert_eq!(prologue(Arch::Ppc64le, 32, false).len(), 3);
        assert_eq!(epilogue(Arch::Ppc64le, 32, false).len(), 4);
        // RISC leaf: no lr traffic.
        assert_eq!(prologue(Arch::Aarch64, 16, true).len(), 1);
        // Zero frame leaf: nothing at all.
        assert!(prologue(Arch::Aarch64, 0, true).is_empty());
    }

    #[test]
    fn ra_rules() {
        assert_eq!(standard_ra_rule(Arch::X64, 32, false), RaRule::StackSlot { offset: 32 });
        assert_eq!(standard_ra_rule(Arch::Ppc64le, 32, false), RaRule::StackSlot { offset: 24 });
        assert_eq!(standard_ra_rule(Arch::Aarch64, 32, true), RaRule::LinkRegister);
    }
}

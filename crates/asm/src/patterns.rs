//! Canonical compiler code-generation patterns.
//!
//! These are the dispatch idioms real compilers emit and the paper's
//! analyses pattern-match (§5.1): bounded jump-table switches in all
//! the per-architecture flavours, with optional hardness features
//! (index copies, stack spills, unanalyzable base computations) that
//! exercise specific analysis capabilities. The workload generator and
//! the analysis tests share this module so "what the compiler emits"
//! has a single definition.

use crate::item::{EntryKind, Item, RefTarget};
use icfgp_isa::{Addr, AluOp, Arch, Cond, Inst, Reg, Width};

/// How hard the switch is for the jump-table slicer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchHardness {
    /// Plain `cmp/ja/lea/load/jmp` — every analysis resolves it.
    Easy,
    /// The bound check compares a *copy* of the index register;
    /// resolving it needs copy tracking.
    CopiedBound,
    /// The index is spilled to the stack and reloaded before use;
    /// resolving it needs spill tracking
    /// ([`icfgp_cfg`-speak: `track_spills`]).
    SpilledIndex,
    /// The table base is obfuscated through an `xor` round-trip; no
    /// slicer resolves it (models complicated path conditions). The
    /// function still *runs* correctly.
    Unanalyzable,
    /// The real bound check runs over a stack-spilled copy, and an
    /// unrelated *smaller* unsigned compare on the index sits earlier
    /// in the stream. A slicer without spill tracking connects the
    /// wrong compare and **under-approximates** the table — the
    /// catastrophic Figure 2 class, and how the weaker baseline
    /// produces wrong rewrites instead of clean failures.
    DeceptiveBound,
    /// [`SwitchHardness::SpilledIndex`] plus a store through a *copy*
    /// of the stack pointer sitting between the spill and its reload.
    /// The store hits a different slot at runtime (behaviour is
    /// unchanged), but the slicer cannot prove it disjoint, so the
    /// reconnected chain is honestly marked
    /// `BoundEvidence::CmpTracked { alias_hazard: true }` — the
    /// soundness auditor's `ICFGP-A002` trigger.
    AliasedSpill,
}

impl SwitchHardness {
    /// Whether the index value round-trips through a stack slot before
    /// the table load (these forms need an absolute table: the spill
    /// dance consumes the third scratch register).
    #[must_use]
    pub fn spills_index(self) -> bool {
        matches!(self, SwitchHardness::SpilledIndex | SwitchHardness::AliasedSpill)
    }
}

/// A switch statement to emit.
#[derive(Debug, Clone)]
pub struct SwitchSpec {
    /// Register holding the (already range-checked or not) index.
    pub idx_reg: Reg,
    /// Data-symbol name for the table.
    pub table_name: String,
    /// Case labels, one per table entry, in entry order.
    pub case_labels: Vec<String>,
    /// Label jumped to when the index is out of range.
    pub default_label: String,
    /// Entry width in bytes.
    pub entry_width: u8,
    /// Entry encoding.
    pub kind: EntryKind,
    /// Put the table inline in `.text` right after the dispatch jump
    /// (the ppc64le idiom; required for compact scaled tables).
    pub inline: bool,
    /// Slicer difficulty.
    pub hardness: SwitchHardness,
    /// Stack slot (sp-relative) used by [`SwitchHardness::SpilledIndex`];
    /// must be within the function's frame.
    pub spill_slot: i64,
    /// Scratch registers: (table base, loaded value / final target).
    pub scratch: (Reg, Reg),
    /// x64 only: dispatch with a single memory-indirect jump
    /// (`jmp [base + idx*8]`) instead of load+`jmp reg`. Requires an
    /// absolute 8-byte table.
    pub mem_indirect: bool,
}

/// Emit the dispatch sequence for `spec` into `items`.
///
/// The caller provides the case blocks (labelled with
/// `spec.case_labels`) and the default block. When the table is not
/// inline, the caller must also add the returned
/// [`crate::DataItem::JumpTable`] to `.rodata` under
/// `spec.table_name` — use [`switch_table_item`].
pub fn emit_switch(items: &mut Vec<Item>, arch: Arch, spec: &SwitchSpec) {
    assert!(
        !spec.hardness.spills_index() || spec.kind == EntryKind::Absolute,
        "spilled-index switches need a third scratch register for non-absolute tables"
    );
    let (rt, rv) = spec.scratch;
    let idx = spec.idx_reg;
    let n = spec.case_labels.len() as i32;

    // Bound check.
    match spec.hardness {
        SwitchHardness::CopiedBound => {
            items.push(Item::I(Inst::MovReg { dst: rv, src: idx }));
            items.push(Item::I(Inst::CmpImm { a: rv, imm: n - 1 }));
            items.push(Item::JccL(Cond::UGt, spec.default_label.clone()));
        }
        SwitchHardness::DeceptiveBound => {
            // Decoy: an unrelated early-out on small indices.
            let decoy = format!("{}_decoy", spec.table_name);
            items.push(Item::I(Inst::CmpImm { a: idx, imm: 2 }));
            items.push(Item::JccL(Cond::UGt, decoy.clone()));
            items.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: rv, src: idx, imm: 0 }));
            items.push(Item::Label(decoy));
            // Real bound check through a stack-spilled copy.
            let sp = arch.sp();
            items.push(Item::I(Inst::Store {
                src: idx,
                addr: Addr::base_disp(sp, spec.spill_slot),
                width: Width::W8,
            }));
            items.push(Item::I(Inst::Load {
                dst: rv,
                addr: Addr::base_disp(sp, spec.spill_slot),
                width: Width::W8,
                sign: false,
            }));
            items.push(Item::I(Inst::CmpImm { a: rv, imm: n - 1 }));
            items.push(Item::JccL(Cond::UGt, spec.default_label.clone()));
        }
        _ => {
            items.push(Item::I(Inst::CmpImm { a: idx, imm: n - 1 }));
            items.push(Item::JccL(Cond::UGt, spec.default_label.clone()));
        }
    }

    // Index register actually used by the load.
    let mut use_idx = idx;
    if spec.hardness.spills_index() {
        let sp = arch.sp();
        items.push(Item::I(Inst::Store {
            src: idx,
            addr: Addr::base_disp(sp, spec.spill_slot),
            width: Width::W8,
        }));
        // Clobber the original so a naive slicer can't shortcut.
        items.push(Item::I(Inst::MovImm { dst: idx, imm: 0 }));
        if spec.hardness == SwitchHardness::AliasedSpill {
            // A store through a copy of sp into the *next* slot: the
            // spill slot is untouched at runtime, but the slicer sees
            // a store it cannot prove disjoint sitting between the
            // spill and the reload, and flags the alias hazard.
            items.push(Item::I(Inst::MovReg { dst: rv, src: sp }));
            items.push(Item::I(Inst::Store {
                src: idx,
                addr: Addr::base_disp(rv, spec.spill_slot + 8),
                width: Width::W8,
            }));
        }
        items.push(Item::I(Inst::Load {
            dst: rv,
            addr: Addr::base_disp(sp, spec.spill_slot),
            width: Width::W8,
            sign: false,
        }));
        use_idx = rv;
    }

    // Table base.
    items.push(Item::LoadAddr {
        dst: rt,
        target: RefTarget::Data(spec.table_name.clone()),
        delta: 0,
    });
    if spec.hardness == SwitchHardness::Unanalyzable {
        // Round-trip the base through xor: value-preserving but
        // opaque to the pattern-driven slicer.
        items.push(Item::I(Inst::Alu { op: AluOp::Xor, dst: rt, a: rt, b: use_idx }));
        items.push(Item::I(Inst::Alu { op: AluOp::Xor, dst: rt, a: rt, b: use_idx }));
    }

    if spec.mem_indirect {
        assert!(
            arch == Arch::X64 && spec.kind == EntryKind::Absolute && spec.entry_width == 8,
            "memory-indirect dispatch is the x64 absolute-table idiom"
        );
        items.push(Item::I(Inst::JumpMem { addr: Addr::base_index(rt, use_idx, 8) }));
        if spec.inline {
            items.push(Item::InlineTable {
                name: spec.table_name.clone(),
                entry_width: spec.entry_width,
                kind: spec.kind,
                targets: spec.case_labels.clone(),
            });
        }
        return;
    }
    // Entry load; rv must differ from use_idx for the spilled form,
    // so reuse rt as the landing register there.
    let value_reg = if use_idx == rv { rt } else { rv };
    items.push(Item::I(Inst::Load {
        dst: value_reg,
        addr: Addr::base_index(rt, use_idx, spec.entry_width),
        width: match spec.entry_width {
            1 => Width::W1,
            2 => Width::W2,
            4 => Width::W4,
            _ => Width::W8,
        },
        sign: spec.kind != EntryKind::Absolute,
    }));
    match spec.kind {
        EntryKind::Absolute => {}
        EntryKind::Relative => {
            items.push(Item::I(Inst::Alu { op: AluOp::Add, dst: value_reg, a: value_reg, b: rt }));
        }
        EntryKind::RelativeScaled => {
            items.push(Item::I(Inst::AluImm {
                op: AluOp::Shl,
                dst: value_reg,
                src: value_reg,
                imm: 2,
            }));
            items.push(Item::I(Inst::Alu { op: AluOp::Add, dst: value_reg, a: value_reg, b: rt }));
        }
    }

    // The indirect jump.
    if arch == Arch::Ppc64le {
        items.push(Item::I(Inst::MoveToTar { src: value_reg }));
        items.push(Item::I(Inst::JumpTar));
    } else {
        items.push(Item::I(Inst::JumpReg { src: value_reg }));
    }

    // Inline table data, when requested.
    if spec.inline {
        items.push(Item::InlineTable {
            name: spec.table_name.clone(),
            entry_width: spec.entry_width,
            kind: spec.kind,
            targets: spec.case_labels.clone(),
        });
    }
}

/// The `.rodata` table item matching `spec` (for non-inline tables).
#[must_use]
pub fn switch_table_item(func: &str, spec: &SwitchSpec) -> crate::DataItem {
    crate::DataItem::JumpTable {
        entry_width: spec.entry_width,
        kind: spec.kind,
        targets: spec
            .case_labels
            .iter()
            .map(|l| (func.to_string(), l.clone()))
            .collect(),
    }
}

/// Emit an indirect tail call: load a function pointer from `slot` and
/// jump to it. Used with nop-only layout gaps this exercises §5.1's
/// tail-call gap heuristic.
pub fn emit_indirect_tailcall(items: &mut Vec<Item>, arch: Arch, slot: &str, tmp: (Reg, Reg)) {
    let (rt, rv) = tmp;
    items.push(Item::LoadFrom {
        dst: rv,
        target: RefTarget::Data(slot.to_string()),
        offset: 0,
        width: Width::W8,
        sign: false,
        tmp: rt,
    });
    if arch == Arch::Ppc64le {
        items.push(Item::I(Inst::MoveToTar { src: rv }));
        items.push(Item::I(Inst::JumpTar));
    } else {
        items.push(Item::I(Inst::JumpReg { src: rv }));
    }
}

/// Emit an indirect call through a function-pointer slot.
pub fn emit_indirect_call(items: &mut Vec<Item>, arch: Arch, slot: &str, tmp: (Reg, Reg)) {
    let (rt, rv) = tmp;
    items.push(Item::LoadFrom {
        dst: rv,
        target: RefTarget::Data(slot.to_string()),
        offset: 0,
        width: Width::W8,
        sign: false,
        tmp: rt,
    });
    if arch == Arch::Ppc64le {
        items.push(Item::I(Inst::MoveToTar { src: rv }));
        items.push(Item::I(Inst::CallTar));
    } else {
        items.push(Item::I(Inst::CallReg { src: rv }));
    }
}

/// Emit an indirect call through a *stack memory* operand — the x64
/// pattern SRBI's call emulation mishandles (§8.1: "does not correctly
/// handle indirect calls through stack memory locations"). Only
/// meaningful on x64; other architectures fall back to
/// [`emit_indirect_call`].
pub fn emit_indirect_call_via_stack(
    items: &mut Vec<Item>,
    arch: Arch,
    slot: &str,
    stack_off: i64,
    tmp: (Reg, Reg),
) {
    if arch != Arch::X64 {
        emit_indirect_call(items, arch, slot, tmp);
        return;
    }
    let (rt, rv) = tmp;
    let sp = arch.sp();
    items.push(Item::LoadFrom {
        dst: rv,
        target: RefTarget::Data(slot.to_string()),
        offset: 0,
        width: Width::W8,
        sign: false,
        tmp: rt,
    });
    items.push(Item::I(Inst::Store {
        src: rv,
        addr: Addr::base_disp(sp, stack_off),
        width: Width::W8,
    }));
    items.push(Item::I(Inst::CallMem { addr: Addr::base_disp(sp, stack_off) }));
}

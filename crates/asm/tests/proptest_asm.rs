//! Property tests: assembled binaries disassemble back to what was
//! assembled, for random straight-line and branchy function bodies.

use icfgp_asm::{BinaryBuilder, FuncDef, Item};
use icfgp_isa::{decode, AluOp, Arch, Cond, Inst, Reg};
use icfgp_obj::Language;
use proptest::prelude::*;

fn arb_arch() -> impl Strategy<Value = Arch> {
    prop_oneof![Just(Arch::X64), Just(Arch::Ppc64le), Just(Arch::Aarch64)]
}

/// Straight-line instructions valid on all architectures.
fn arb_body_inst() -> impl Strategy<Value = Inst> {
    let r = || (8u8..14).prop_map(Reg);
    prop_oneof![
        Just(Inst::Nop),
        (r(), -1000i64..1000).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (r(), r()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (r(), r(), r()).prop_map(|(dst, a, b)| Inst::Alu { op: AluOp::Add, dst, a, b }),
        (r(), r(), -100i32..100)
            .prop_map(|(dst, src, imm)| Inst::AluImm { op: AluOp::Xor, dst, src, imm }),
        (r(), -100i32..100).prop_map(|(a, imm)| Inst::CmpImm { a, imm }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Assemble a straight-line body; linear disassembly of the
    /// function range reproduces it instruction by instruction.
    #[test]
    fn straight_line_roundtrip(arch in arb_arch(),
                               body in proptest::collection::vec(arb_body_inst(), 1..40)) {
        let mut items: Vec<Item> = body.iter().cloned().map(Item::I).collect();
        items.push(Item::I(Inst::Halt));
        let mut b = BinaryBuilder::new(arch);
        b.add_function(FuncDef::new("main", Language::C, items));
        b.set_entry("main");
        let bin = b.build().expect("assembles");
        let sym = bin.function_named("main").unwrap();
        let text = bin.section(".text").unwrap();
        let mut addr = sym.addr;
        for expected in body.iter().chain(std::iter::once(&Inst::Halt)) {
            let bytes = text.read(addr, (sym.end() - addr).min(16) as usize).unwrap();
            let (inst, len) = decode(bytes, arch).expect("decodes");
            prop_assert_eq!(&inst, expected, "at {:#x}", addr);
            addr += len as u64;
        }
        prop_assert_eq!(addr, sym.end(), "symbol size covers exactly the body");
    }

    /// Forward branches over random-size gaps resolve to the right
    /// target regardless of the relaxation form chosen.
    #[test]
    fn branch_resolution(arch in arb_arch(), gap in 0usize..200, cond in 0u8..10) {
        let cond = Cond::from_code(cond).unwrap();
        let mut items = vec![Item::JccL(cond, "target".into())];
        items.extend(std::iter::repeat_n(Item::I(Inst::Nop), gap));
        items.push(Item::Label("target".into()));
        items.push(Item::I(Inst::Halt));
        let mut b = BinaryBuilder::new(arch);
        b.add_function(FuncDef::new("main", Language::C, items));
        b.set_entry("main");
        let bin = b.build().expect("assembles");
        let sym = bin.function_named("main").unwrap();
        let text = bin.section(".text").unwrap();
        let bytes = text.read(sym.addr, (sym.end() - sym.addr).min(16) as usize).unwrap();
        let (inst, _) = decode(bytes, arch).expect("decodes");
        let Inst::JumpCond { cond: got, offset } = inst else {
            return Err(TestCaseError::fail("expected a conditional branch"));
        };
        prop_assert_eq!(got, cond);
        let target = sym.addr.wrapping_add_signed(offset);
        // The branch lands exactly on the Halt (the labelled target),
        // which is `gap` nops after the branch.
        let tb = text.read(target, 4.min((sym.end() - target) as usize)).unwrap();
        let (ti, _) = decode(tb, arch).expect("target decodes");
        prop_assert_eq!(ti, Inst::Halt);
    }

    /// Function symbols partition the text: sorted, non-overlapping,
    /// and padding between them decodes as nops.
    #[test]
    fn function_layout_invariants(arch in arb_arch(),
                                  sizes in proptest::collection::vec(1usize..24, 2..8)) {
        let mut b = BinaryBuilder::new(arch);
        for (i, n) in sizes.iter().enumerate() {
            let mut items: Vec<Item> = std::iter::repeat_n(Item::I(Inst::Nop), *n).collect();
            items.push(Item::I(Inst::Ret));
            b.add_function(FuncDef::new(format!("f{i}"), Language::C, items));
        }
        b.set_entry("f0");
        let bin = b.build().expect("assembles");
        let funcs: Vec<_> = bin.functions().collect();
        prop_assert_eq!(funcs.len(), sizes.len());
        for w in funcs.windows(2) {
            prop_assert!(w[0].end() <= w[1].addr, "no overlap");
            prop_assert_eq!(w[1].addr % 16, 0, "aligned");
            // Inter-function padding decodes as nops.
            let text = bin.section(".text").unwrap();
            let mut a = w[0].end();
            while a < w[1].addr {
                let bytes = text.read(a, (w[1].addr - a).min(16) as usize).unwrap();
                let (inst, len) = decode(bytes, arch).expect("padding decodes");
                prop_assert_eq!(inst, Inst::Nop);
                a += len as u64;
            }
        }
    }
}

//! Human-readable rendering of an audit report.

use crate::{AuditMode, AuditReport};
use std::fmt::Write as _;

/// Render the findings relevant to `mode` as text, one finding per
/// line, followed by the verdict counts.
#[must_use]
pub fn render_text(report: &AuditReport, mode: AuditMode) -> String {
    let mut out = String::new();
    for f in report.findings_for(mode) {
        let _ = writeln!(out, "{f}");
    }
    let counts = report.counts(mode);
    let _ = writeln!(
        out,
        "audited {} function(s) for mode {mode}: {counts}",
        report.functions.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuditFinding, AuditSeverity, LintCode};

    #[test]
    fn text_render_filters_by_mode() {
        let mut r = AuditReport::default();
        r.functions.insert(0x40, "f".to_string());
        r.findings.push(AuditFinding {
            code: LintCode::A003,
            severity: AuditSeverity::UnderApproxRisk,
            func_entry: 0x40,
            func_name: "f".to_string(),
            addr: 0x44,
            message: "escape".to_string(),
        });
        let dir = render_text(&r, AuditMode::Dir);
        assert!(!dir.contains("ICFGP-A003"), "{dir}");
        assert!(dir.contains("1 proven"), "{dir}");
        let fp = render_text(&r, AuditMode::FuncPtr);
        assert!(fp.contains("ICFGP-A003"), "{fp}");
        assert!(fp.contains("1 under-approx-risk"), "{fp}");
    }
}

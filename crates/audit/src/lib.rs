#![warn(missing_docs)]
//! The whole-binary static soundness auditor (`icfgp-audit`).
//!
//! The paper's failure-mode analysis (§4.3, Figure 2) separates the
//! safe failure classes — reported failure, over-approximation — from
//! the one catastrophic class, *under-approximation*, which silently
//! produces wrong instrumentation. The rewriting pipeline discovers
//! under-approximation reactively: a rewrite round fails
//! `icfgp-verify` and the degradation ladder demotes the function.
//! This crate moves that discovery *before* rewriting: a conservative
//! re-analysis over `icfgp-cfg` results classifies, per function, the
//! evidence behind each analysis the selected mode depends on, and
//! emits structured diagnostics with stable lint codes:
//!
//! | code | meaning | severity |
//! |------|---------|----------|
//! | `ICFGP-A001` | unproven jump-table bound (table-end extension or over-approximated entries) | over-approx |
//! | `ICFGP-A002` | under-approximation risk on an indirect branch (missing targets vs. the conservative re-analysis, or an alias-hazardous bound connection) | under-approx-risk |
//! | `ICFGP-A003` | escaping function pointer without relocation evidence (word-scan match, memory escape, `&f+delta` arithmetic) | under-approx-risk |
//! | `ICFGP-A004` | liveness evidence invalidated (scratch-register selection untrustworthy) | under-approx-risk |
//! | `ICFGP-A005` | analysis evidence diverges from the conservative re-analysis (function-level) | unknown |
//! | `ICFGP-A010` | trampoline reach/budget feasibility cannot be statically justified | unknown |
//!
//! Each finding carries a severity on the verdict lattice
//! `proven < over-approx < under-approx-risk < unknown`, the owning
//! function, an address, and a human-readable explanation. The
//! per-function verdict under a mode is the worst severity among the
//! findings *relevant* to that mode; relevance is monotone
//! (`dir ⊆ jt ⊆ func-ptr`), so demanding more of the analysis never
//! hides a finding.
//!
//! The verdict lattice feeds predictive mode gating in `icfgp-core`:
//! the rewriter starts each function at the highest ladder rung whose
//! relevant evidence is at worst over-approximate, instead of
//! demoting reactively round by round.

use icfgp_cfg::{
    analyze, AnalysisConfig, BoundEvidence, FpDefSite, FpEvidence, FuncStatus, InjectedFault,
    JumpTableDesc,
};
use icfgp_obj::Binary;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

mod render;
mod sarif;

pub use render::render_text;
pub use sarif::to_sarif;

/// The audit verdict lattice, ordered best to worst.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(rename_all = "kebab-case")]
pub enum AuditSeverity {
    /// Every piece of evidence the mode depends on is proven.
    Proven,
    /// The analysis over-approximates: wasteful (extra trampolines,
    /// surplus clone entries) but safe.
    OverApprox,
    /// The analysis may under-approximate: the catastrophic class —
    /// rewriting at a rung that depends on this evidence risks silent
    /// miscompilation.
    UnderApproxRisk,
    /// No usable evidence either way (analysis failure, un-auditable
    /// placement stress).
    Unknown,
}

impl fmt::Display for AuditSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditSeverity::Proven => "proven",
            AuditSeverity::OverApprox => "over-approx",
            AuditSeverity::UnderApproxRisk => "under-approx-risk",
            AuditSeverity::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// The rewriting modes the auditor grades evidence against (mirror of
/// `icfgp-core`'s `RewriteMode`, kept separate so the dependency
/// points from the rewriter to the auditor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum AuditMode {
    /// Direct control flow only.
    Dir,
    /// Plus jump-table cloning.
    Jt,
    /// Plus function-pointer rewriting.
    FuncPtr,
}

impl fmt::Display for AuditMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditMode::Dir => "dir",
            AuditMode::Jt => "jt",
            AuditMode::FuncPtr => "func-ptr",
        };
        f.write_str(s)
    }
}

/// Stable lint codes (`ICFGP-Axxx`). Codes are append-only: a
/// published code never changes meaning.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum LintCode {
    /// Unproven jump-table bound: the entry count comes from
    /// table-end extension or exceeds what the conservative
    /// re-analysis proves.
    A001,
    /// Under-approximation risk on an indirect branch: the active
    /// analysis resolves fewer targets than the conservative
    /// re-analysis, or the bound connection crosses an aliased spill
    /// slot.
    A002,
    /// Escaping function pointer without relocation evidence: a
    /// word-scan match, a materialised pointer stored to memory, or
    /// `&f + delta` arithmetic.
    A003,
    /// Liveness evidence invalidated: scratch-register selection for
    /// this function cannot be trusted.
    A004,
    /// Function-level divergence between the active analysis and the
    /// conservative re-analysis (either side fails where the other
    /// succeeds).
    A005,
    /// Trampoline reach/budget feasibility cannot be statically
    /// justified for this function.
    A010,
}

impl LintCode {
    /// The stable diagnostic identifier, e.g. `"ICFGP-A001"`.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            LintCode::A001 => "ICFGP-A001",
            LintCode::A002 => "ICFGP-A002",
            LintCode::A003 => "ICFGP-A003",
            LintCode::A004 => "ICFGP-A004",
            LintCode::A005 => "ICFGP-A005",
            LintCode::A010 => "ICFGP-A010",
        }
    }

    /// Short rule name (SARIF `rules[].shortDescription`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintCode::A001 => "unproven jump-table bound",
            LintCode::A002 => "under-approximation risk on indirect branch",
            LintCode::A003 => "escaping function pointer without relocation evidence",
            LintCode::A004 => "liveness evidence invalidated",
            LintCode::A005 => "analysis divergence from conservative re-analysis",
            LintCode::A010 => "infeasible trampoline reach/budget",
        }
    }

    /// Whether findings with this code affect rewriting at `mode`.
    /// Relevance is monotone: `dir`-relevant codes are `jt`-relevant,
    /// and `jt`-relevant codes are `func-ptr`-relevant.
    #[must_use]
    pub fn relevant_to(self, mode: AuditMode) -> bool {
        match self {
            // Missing CFL targets, corrupt liveness, analysis
            // divergence and placement stress endanger every rung.
            LintCode::A002 | LintCode::A004 | LintCode::A005 | LintCode::A010 => true,
            // An unproven bound only matters once the table is cloned.
            LintCode::A001 => mode >= AuditMode::Jt,
            // Pointer evidence only matters when pointers are rewritten.
            LintCode::A003 => mode >= AuditMode::FuncPtr,
        }
    }

    /// Every code, in id order.
    pub const ALL: [LintCode; 6] = [
        LintCode::A001,
        LintCode::A002,
        LintCode::A003,
        LintCode::A004,
        LintCode::A005,
        LintCode::A010,
    ];
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditFinding {
    /// Stable lint code.
    pub code: LintCode,
    /// Verdict-lattice severity.
    pub severity: AuditSeverity,
    /// Entry address of the owning function.
    pub func_entry: u64,
    /// Name of the owning function (may be empty when stripped).
    pub func_name: String,
    /// The address the finding is about (jump, slot, or entry).
    pub addr: u64,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {} at {:#x}: {}",
            self.severity,
            self.code,
            if self.func_name.is_empty() { "<anon>" } else { &self.func_name },
            self.addr,
            self.message
        )
    }
}

/// Verdict counts over the audited functions, per mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictCounts {
    /// Functions whose relevant evidence is fully proven.
    pub proven: u64,
    /// Worst relevant finding is over-approximation.
    pub over_approx: u64,
    /// Worst relevant finding is under-approximation risk.
    pub under_approx_risk: u64,
    /// Worst relevant finding is unknown.
    pub unknown: u64,
}

impl VerdictCounts {
    /// Total audited functions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.proven + self.over_approx + self.under_approx_risk + self.unknown
    }
}

impl fmt::Display for VerdictCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} proven, {} over-approx, {} under-approx-risk, {} unknown",
            self.proven, self.over_approx, self.under_approx_risk, self.unknown
        )
    }
}

/// Placement feasibility inputs the caller (which knows the placement
/// configuration) hands the auditor for the `ICFGP-A010` check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachCheck {
    /// Gap between the original image and `.instr` (drives the branch
    /// reach trampolines need).
    pub instr_gap: u64,
    /// Trampoline budgets are artificially shrunk (placement stress).
    pub budgets_shrunk: bool,
    /// The scratch pool is starved (placement stress).
    pub scratch_starved: bool,
    /// Long-branch reach is exhausted (placement stress).
    pub reach_exhausted: bool,
}

impl ReachCheck {
    /// Whether any stress flag invalidates static placement reasoning.
    #[must_use]
    pub fn stressed(&self) -> bool {
        self.budgets_shrunk || self.scratch_starved || self.reach_exhausted
    }
}

/// The full audit result. Findings are mode-agnostic; use
/// [`AuditReport::findings_for`], [`AuditReport::verdict`] and
/// [`AuditReport::counts`] to view them through a mode's relevance
/// filter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// All findings, sorted by function then address then code.
    pub findings: Vec<AuditFinding>,
    /// Audited functions: entry address → name.
    pub functions: BTreeMap<u64, String>,
}

impl AuditReport {
    /// Findings relevant when rewriting at `mode`.
    pub fn findings_for(&self, mode: AuditMode) -> impl Iterator<Item = &AuditFinding> {
        self.findings.iter().filter(move |f| f.code.relevant_to(mode))
    }

    /// The per-function verdict under `mode`: the worst severity among
    /// relevant findings, `Proven` when there are none, `Unknown` for
    /// functions that were never audited.
    #[must_use]
    pub fn verdict(&self, entry: u64, mode: AuditMode) -> AuditSeverity {
        if !self.functions.contains_key(&entry) {
            return AuditSeverity::Unknown;
        }
        self.findings_for(mode)
            .filter(|f| f.func_entry == entry)
            .map(|f| f.severity)
            .max()
            .unwrap_or(AuditSeverity::Proven)
    }

    /// Entry addresses of functions proven sound under `mode`.
    #[must_use]
    pub fn proven_functions(&self, mode: AuditMode) -> BTreeSet<u64> {
        self.functions
            .keys()
            .copied()
            .filter(|e| self.verdict(*e, mode) == AuditSeverity::Proven)
            .collect()
    }

    /// Verdict counts under `mode`.
    #[must_use]
    pub fn counts(&self, mode: AuditMode) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for entry in self.functions.keys() {
            match self.verdict(*entry, mode) {
                AuditSeverity::Proven => c.proven += 1,
                AuditSeverity::OverApprox => c.over_approx += 1,
                AuditSeverity::UnderApproxRisk => c.under_approx_risk += 1,
                AuditSeverity::Unknown => c.unknown += 1,
            }
        }
        c
    }

    /// Whether the audit produced zero findings relevant to `mode`
    /// (the CLI's exit-0 condition).
    #[must_use]
    pub fn is_clean(&self, mode: AuditMode) -> bool {
        self.findings_for(mode).next().is_none()
    }

    /// Serialise as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` serialisation failures (practically
    /// unreachable for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    fn push(
        &mut self,
        code: LintCode,
        severity: AuditSeverity,
        func_entry: u64,
        addr: u64,
        message: String,
    ) {
        let func_name = self.functions.get(&func_entry).cloned().unwrap_or_default();
        self.findings.push(AuditFinding { code, severity, func_entry, func_name, addr, message });
    }
}

/// The conservative oracle configuration: the active configuration
/// with heuristics and fault injection removed (exactly what
/// `icfgp-verify` recomputes results with) plus every sound slicing
/// capability enabled, so the oracle resolves at least as much as any
/// weakened active configuration.
#[must_use]
fn oracle_config(config: &AnalysisConfig) -> AnalysisConfig {
    let mut oracle = config.strictened();
    oracle.track_spills = true;
    oracle.funcptr_arith_tracking = true;
    oracle
}

/// Audit `binary` as it would be analysed under `config`.
///
/// Runs the analysis twice — once under the active configuration
/// (including any injected faults), once under the conservative
/// oracle — and grades the divergence plus the evidence provenance
/// recorded by `icfgp-cfg` (bound evidence, function-pointer
/// evidence). `reach` carries the placement feasibility inputs for
/// the `ICFGP-A010` check; `None` skips it.
#[must_use]
pub fn audit_binary(
    binary: &Binary,
    config: &AnalysisConfig,
    reach: Option<&ReachCheck>,
) -> AuditReport {
    let oracle_cfg = oracle_config(config);
    let active = analyze(binary, config);
    let oracle = analyze(binary, &oracle_cfg);

    let mut report = AuditReport {
        findings: Vec::new(),
        functions: oracle.funcs.values().map(|f| (f.entry, f.name.clone())).collect(),
    };

    for func in oracle.funcs.values() {
        let entry = func.entry;
        let active_func = active.funcs.get(&entry);

        // Function-level divergence (A005).
        match (&func.status, active_func.map(|f| &f.status)) {
            (FuncStatus::Failed(why), _) => {
                report.push(
                    LintCode::A005,
                    AuditSeverity::Unknown,
                    entry,
                    entry,
                    format!("conservative re-analysis cannot validate this function: {why}"),
                );
                continue;
            }
            (FuncStatus::Ok, Some(FuncStatus::Failed(why))) => {
                report.push(
                    LintCode::A005,
                    AuditSeverity::Unknown,
                    entry,
                    entry,
                    format!(
                        "active analysis fails where the conservative re-analysis succeeds: {why}"
                    ),
                );
                continue;
            }
            (FuncStatus::Ok, None) => {
                report.push(
                    LintCode::A005,
                    AuditSeverity::Unknown,
                    entry,
                    entry,
                    "function absent from the active analysis".to_string(),
                );
                continue;
            }
            (FuncStatus::Ok, Some(FuncStatus::Ok)) => {}
        }
        let active_func = active_func.expect("checked above");

        // Per-table evidence and divergence (A001/A002).
        let active_tables: BTreeMap<u64, &JumpTableDesc> =
            active_func.jump_tables.iter().map(|t| (t.jump_addr, t)).collect();
        for jt in &func.jump_tables {
            grade_table_evidence(&mut report, entry, jt);
            match active_tables.get(&jt.jump_addr) {
                None => {
                    report.push(
                        LintCode::A002,
                        AuditSeverity::UnderApproxRisk,
                        entry,
                        jt.jump_addr,
                        format!(
                            "active analysis resolves no table for the indirect branch the \
                             conservative re-analysis bounds to {} entries",
                            jt.count
                        ),
                    );
                }
                Some(at) => {
                    let oracle_targets: BTreeSet<u64> =
                        jt.targets.iter().map(|(_, t)| *t).collect();
                    let active_targets: BTreeSet<u64> =
                        at.targets.iter().map(|(_, t)| *t).collect();
                    let missing = oracle_targets.difference(&active_targets).count();
                    let extra = active_targets.difference(&oracle_targets).count();
                    if missing > 0 {
                        report.push(
                            LintCode::A002,
                            AuditSeverity::UnderApproxRisk,
                            entry,
                            jt.jump_addr,
                            format!(
                                "active analysis drops {missing} of {} proven table targets \
                                 (under-approximation)",
                                oracle_targets.len()
                            ),
                        );
                    } else if extra > 0 || at.count > jt.count {
                        report.push(
                            LintCode::A001,
                            AuditSeverity::OverApprox,
                            entry,
                            jt.jump_addr,
                            format!(
                                "active analysis over-approximates the table ({extra} extra \
                                 targets, count {} vs. proven {})",
                                at.count, jt.count
                            ),
                        );
                    }
                }
            }
        }
        // Tables only the active analysis claims: over-approximation.
        for at in &active_func.jump_tables {
            if !func.jump_tables.iter().any(|t| t.jump_addr == at.jump_addr) {
                report.push(
                    LintCode::A001,
                    AuditSeverity::OverApprox,
                    entry,
                    at.jump_addr,
                    "active analysis resolves a table the conservative re-analysis does not"
                        .to_string(),
                );
            }
        }
    }

    // Function-pointer evidence (A003), attributed to the pointed-to
    // function: rewriting *its* entry relies on this definition being
    // sound and complete.
    for def in &oracle.fp_defs {
        let addr = match def.site {
            FpDefSite::DataSlot { addr } => addr,
            FpDefSite::CodeImm { inst_addr, .. } => inst_addr,
        };
        match def.evidence {
            FpEvidence::Relocation => {}
            FpEvidence::WordScan => {
                report.push(
                    LintCode::A003,
                    AuditSeverity::UnderApproxRisk,
                    def.target_fn,
                    addr,
                    "function pointer found by bare word scan, not relocation evidence: \
                     the slot may be unrelated data, and real definitions stored at run \
                     time are invisible"
                        .to_string(),
                );
            }
            FpEvidence::CodeMaterialisation { escapes } => {
                if escapes {
                    report.push(
                        LintCode::A003,
                        AuditSeverity::UnderApproxRisk,
                        def.target_fn,
                        addr,
                        "materialised function pointer escapes to memory: its consumers \
                         cannot be enumerated statically"
                            .to_string(),
                    );
                }
                if def.delta != 0 {
                    report.push(
                        LintCode::A003,
                        AuditSeverity::UnderApproxRisk,
                        def.target_fn,
                        addr,
                        format!(
                            "pointer arithmetic (&f + {}) targets a mid-function address; \
                             downstream consumers are only partially tracked",
                            def.delta
                        ),
                    );
                }
            }
        }
        if def.delta != 0 && matches!(def.site, FpDefSite::DataSlot { .. }) {
            report.push(
                LintCode::A003,
                AuditSeverity::UnderApproxRisk,
                def.target_fn,
                addr,
                format!(
                    "data-slot pointer is consumed through arithmetic (&f + {}); the \
                     rewritten value must compensate",
                    def.delta
                ),
            );
        }
    }

    // Injected analysis faults (the chaos layer) invalidate evidence
    // at their anchors; liveness corruption (A004) is invisible to the
    // table comparison, so the injection list is graded directly.
    for fault in &config.inject {
        let anchor = fault.anchor();
        let entry = oracle.func_at(anchor).map_or(anchor, |f| f.entry);
        match fault {
            InjectedFault::UnderApproximateTable { jump_addr, drop } => {
                report.push(
                    LintCode::A002,
                    AuditSeverity::UnderApproxRisk,
                    entry,
                    *jump_addr,
                    format!("table evidence invalidated: {drop} entries dropped at this branch"),
                );
            }
            InjectedFault::OverApproximateTable { jump_addr, extra } => {
                report.push(
                    LintCode::A001,
                    AuditSeverity::OverApprox,
                    entry,
                    *jump_addr,
                    format!("table evidence inflated: {extra} infeasible targets added"),
                );
            }
            InjectedFault::CorruptLiveness { entry: e } => {
                report.push(
                    LintCode::A004,
                    AuditSeverity::UnderApproxRisk,
                    *e,
                    *e,
                    "liveness oracle corrupted: scratch-register selection untrustworthy"
                        .to_string(),
                );
            }
            InjectedFault::FailFunction { entry: e } | InjectedFault::PanicFunction { entry: e } => {
                report.push(
                    LintCode::A005,
                    AuditSeverity::Unknown,
                    *e,
                    *e,
                    "analysis failure injected at this function".to_string(),
                );
            }
            InjectedFault::StallFunction { entry: e, units } => {
                // A stall only matters when it blows the watchdog
                // budget; below it, analysis completes normally.
                if *units > config.max_work_units {
                    report.push(
                        LintCode::A005,
                        AuditSeverity::Unknown,
                        *e,
                        *e,
                        format!(
                            "stalled analysis injected: {units} work unit(s) exceed the \
                             {}-unit watchdog budget",
                            config.max_work_units
                        ),
                    );
                }
            }
        }
    }

    // Placement feasibility (A010): when the caller reports placement
    // stress, no function's trampoline budget or reach is statically
    // justified.
    if let Some(reach) = reach {
        if reach.stressed() {
            let mut what = Vec::new();
            if reach.budgets_shrunk {
                what.push("budgets shrunk");
            }
            if reach.scratch_starved {
                what.push("scratch pool starved");
            }
            if reach.reach_exhausted {
                what.push("long-branch reach exhausted");
            }
            let what = what.join(", ");
            for func in oracle.funcs.values() {
                if func.status == FuncStatus::Ok {
                    report.push(
                        LintCode::A010,
                        AuditSeverity::Unknown,
                        func.entry,
                        func.entry,
                        format!("trampoline placement cannot be statically justified: {what}"),
                    );
                }
            }
        }
    }

    // Dedup (the injection grading and the divergence comparison can
    // flag the same site) and order deterministically.
    report
        .findings
        .sort_by(|a, b| (a.func_entry, a.addr, a.code, &a.message).cmp(&(b.func_entry, b.addr, b.code, &b.message)));
    report.findings.dedup_by(|a, b| {
        (a.code, a.func_entry, a.addr) == (b.code, b.func_entry, b.addr)
    });
    report
}

/// Grade the evidence provenance recorded on one (oracle-resolved)
/// jump table.
fn grade_table_evidence(report: &mut AuditReport, entry: u64, jt: &JumpTableDesc) {
    match jt.bound {
        BoundEvidence::CmpDirect => {}
        BoundEvidence::CmpTracked { spilled, alias_hazard } => {
            if alias_hazard {
                report.push(
                    LintCode::A002,
                    AuditSeverity::UnderApproxRisk,
                    entry,
                    jt.jump_addr,
                    format!(
                        "bound check connected through an aliased {} slot: an intervening \
                         store the slicer cannot disambiguate may change the index",
                        if spilled { "spill" } else { "copy" }
                    ),
                );
            }
        }
        BoundEvidence::Extended => {
            report.push(
                LintCode::A001,
                AuditSeverity::OverApprox,
                entry,
                jt.jump_addr,
                format!(
                    "no bound check connected; count {} comes from table-end extension \
                     (over-approximated, never under-approximated)",
                    jt.count
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_lattice_orders() {
        assert!(AuditSeverity::Proven < AuditSeverity::OverApprox);
        assert!(AuditSeverity::OverApprox < AuditSeverity::UnderApproxRisk);
        assert!(AuditSeverity::UnderApproxRisk < AuditSeverity::Unknown);
    }

    #[test]
    fn relevance_is_monotone_across_modes() {
        for code in LintCode::ALL {
            assert!(
                !code.relevant_to(AuditMode::Dir) || code.relevant_to(AuditMode::Jt),
                "{code}: dir-relevant must be jt-relevant"
            );
            assert!(
                !code.relevant_to(AuditMode::Jt) || code.relevant_to(AuditMode::FuncPtr),
                "{code}: jt-relevant must be func-ptr-relevant"
            );
        }
    }

    #[test]
    fn report_json_roundtrip() {
        let mut r = AuditReport::default();
        r.functions.insert(0x1000, "f".to_string());
        r.push(
            LintCode::A002,
            AuditSeverity::UnderApproxRisk,
            0x1000,
            0x1010,
            "dropped targets".to_string(),
        );
        let json = r.to_json().unwrap();
        assert!(json.contains("A002"));
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn verdict_defaults() {
        let mut r = AuditReport::default();
        r.functions.insert(0x1000, "f".to_string());
        assert_eq!(r.verdict(0x1000, AuditMode::FuncPtr), AuditSeverity::Proven);
        assert_eq!(r.verdict(0x9999, AuditMode::Dir), AuditSeverity::Unknown);
        r.push(LintCode::A003, AuditSeverity::UnderApproxRisk, 0x1000, 0x2000, "fp".to_string());
        // A003 is only relevant once pointers are rewritten.
        assert_eq!(r.verdict(0x1000, AuditMode::Jt), AuditSeverity::Proven);
        assert_eq!(r.verdict(0x1000, AuditMode::FuncPtr), AuditSeverity::UnderApproxRisk);
    }
}

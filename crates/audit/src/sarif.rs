//! SARIF 2.1.0 serialisation of an audit report.
//!
//! SARIF property names are camelCase and include `$schema`, which the
//! vendored serde derive (container-level `rename_all` only) cannot
//! express, so the document is emitted by a small hand-rolled JSON
//! writer. The output is a valid SARIF 2.1.0 log with one run: the
//! tool's rule table carries every lint code, and each relevant
//! finding becomes a `result` with a logical location naming the
//! owning function and the finding address.

use crate::{AuditMode, AuditReport, AuditSeverity, LintCode};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// SARIF `level` for a severity: over-approximation is wasteful but
/// safe (`warning`); under-approximation risk is the failure class the
/// auditor exists to surface (`error`); unknown evidence is a `note`.
fn sarif_level(severity: AuditSeverity) -> &'static str {
    match severity {
        AuditSeverity::Proven => "none",
        AuditSeverity::OverApprox => "warning",
        AuditSeverity::UnderApproxRisk => "error",
        AuditSeverity::Unknown => "note",
    }
}

/// Serialise the findings relevant to `mode` as a SARIF 2.1.0 log.
/// `artifact` names the audited binary in each result's location.
#[must_use]
pub fn to_sarif(report: &AuditReport, mode: AuditMode, artifact: &str) -> String {
    let mut rules = String::new();
    for (i, code) in LintCode::ALL.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let _ = write!(
            rules,
            r#"{{"id":"{}","shortDescription":{{"text":"{}"}}}}"#,
            code.id(),
            esc(code.name())
        );
    }

    let mut results = String::new();
    for (i, f) in report.findings_for(mode).enumerate() {
        if i > 0 {
            results.push(',');
        }
        let func = if f.func_name.is_empty() {
            format!("{:#x}", f.func_entry)
        } else {
            f.func_name.clone()
        };
        let _ = write!(
            results,
            concat!(
                r#"{{"ruleId":"{rule}","level":"{level}","#,
                r#""message":{{"text":"{msg}"}},"#,
                r#""locations":[{{"physicalLocation":{{"artifactLocation":{{"uri":"{uri}"}}}},"#,
                r#""logicalLocations":[{{"name":"{func}","fullyQualifiedName":"{func}+{addr:#x}","kind":"function"}}]}}],"#,
                r#""properties":{{"severity":"{sev}","address":"{addr:#x}"}}}}"#
            ),
            rule = f.code.id(),
            level = sarif_level(f.severity),
            msg = esc(&f.message),
            uri = esc(artifact),
            func = esc(&func),
            addr = f.addr,
            sev = f.severity,
        );
    }

    format!(
        concat!(
            r#"{{"$schema":"https://json.schemastore.org/sarif-2.1.0.json","version":"2.1.0","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"icfgp-audit","#,
            r#""informationUri":"https://example.com/incremental-cfg-patching","#,
            r#""rules":[{rules}]}}}},"results":[{results}]}}]}}"#
        ),
        rules = rules,
        results = results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuditFinding, AuditSeverity};

    fn sample() -> AuditReport {
        let mut r = AuditReport::default();
        r.functions.insert(0x40, "dispatch \"0\"".to_string());
        r.findings.push(AuditFinding {
            code: LintCode::A002,
            severity: AuditSeverity::UnderApproxRisk,
            func_entry: 0x40,
            func_name: "dispatch \"0\"".to_string(),
            addr: 0x48,
            message: "dropped\ttargets".to_string(),
        });
        r
    }

    #[test]
    fn sarif_is_valid_json_with_schema_and_rule() {
        let s = to_sarif(&sample(), AuditMode::Jt, "bin");
        // Round-trip through the serde_json parser to prove validity.
        let parsed: serde::Value = serde_json::from_str(&s).unwrap();
        assert!(parsed.get("$schema").is_some());
        let runs = parsed.get("runs").and_then(serde::Value::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0].get("results").and_then(serde::Value::as_arr).map(<[serde::Value]>::len),
            Some(1)
        );
        assert!(s.contains(r#""version":"2.1.0""#));
        assert!(s.contains("ICFGP-A002"));
        assert!(s.contains(r#""level":"error""#));
        assert!(s.contains("\\t"), "tab must be escaped: {s}");
    }

    #[test]
    fn irrelevant_findings_are_filtered() {
        let mut r = sample();
        r.findings[0].code = LintCode::A003;
        let s = to_sarif(&r, AuditMode::Dir, "bin");
        assert!(!s.contains("\"results\":[{"), "no results expected: {s}");
    }
}

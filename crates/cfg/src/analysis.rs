//! The analysis driver: per-function CFG construction and the
//! binary-level analysis pass.

use crate::block::{Block, Edge, EdgeKind, FuncCfg};
use crate::funcptr::{self, FpDef};
use crate::jumptable::{analyze_jump, JtFail, SliceCtx};
use icfgp_isa::{decode, AluOp, Arch, Inst, Reg};
use icfgp_obj::{Binary, Symbol};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Analysis capability knobs.
///
/// [`AnalysisConfig::default`] is the paper's improved analysis;
/// [`AnalysisConfig::srbi`] models the weaker analysis of
/// Dyninst-10.2/SRBI, which drives the coverage gap in Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AnalysisConfig {
    /// Track values through stack spill/reload pairs during slicing.
    pub track_spills: bool,
    /// §5.1 Failure 1: classify unresolved indirect jumps as tail
    /// calls when the function layout has no gaps (or all-nop gaps).
    pub tailcall_gap_heuristic: bool,
    /// The classic heuristic: an indirect jump preceded by frame
    /// teardown is a tail call.
    pub tailcall_teardown_heuristic: bool,
    /// §5.1 Failure 2: extend an unbounded table to the nearest known
    /// data boundary instead of failing (over-approximates, never
    /// under-approximates).
    pub table_end_extension: bool,
    /// §5.2: forward-slice function-pointer values through arithmetic
    /// (`&goexit + 1`).
    pub funcptr_arith_tracking: bool,
    /// Backward-slice window in instructions.
    pub max_slice_insts: usize,
    /// Cap on (possibly extended) table sizes.
    pub max_table_entries: u64,
    /// Watchdog work-unit budget for one function's analysis: the
    /// fixpoint driver charges one unit per traversed instruction per
    /// round plus [`AnalysisConfig::max_slice_insts`] units per
    /// jump-table slice. Exceeding it aborts the function with
    /// [`AnalysisFailure::Budget`] — demote, never hang. The unit
    /// ledger is deterministic, so budget verdicts are cacheable and
    /// identical warm or cold.
    pub max_work_units: u64,
    /// Optional wall-clock deadline (milliseconds) for one function's
    /// analysis, checked cooperatively at fixpoint-round boundaries.
    /// Unlike the work-unit budget this is *not* deterministic across
    /// machines or runs; leave it `None` when byte-reproducibility of
    /// degradation decisions matters.
    pub func_timeout_ms: Option<u64>,
    /// Faults to inject for the Figure 2 failure-mode experiment.
    pub inject: Vec<InjectedFault>,
}

/// Default per-function analysis work-unit budget. Generous: real
/// workloads stay orders of magnitude below it; only a pathological
/// function (or an injected [`InjectedFault::StallFunction`]) trips it.
pub const DEFAULT_WORK_UNITS: u64 = 1 << 20;

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            track_spills: true,
            tailcall_gap_heuristic: true,
            tailcall_teardown_heuristic: true,
            table_end_extension: true,
            funcptr_arith_tracking: true,
            max_slice_insts: 48,
            max_table_entries: 1024,
            max_work_units: DEFAULT_WORK_UNITS,
            func_timeout_ms: None,
            inject: Vec::new(),
        }
    }
}

impl AnalysisConfig {
    /// The weaker analysis baseline rewriters ship with.
    #[must_use]
    pub fn srbi() -> AnalysisConfig {
        AnalysisConfig {
            track_spills: false,
            tailcall_gap_heuristic: false,
            tailcall_teardown_heuristic: true,
            table_end_extension: false,
            funcptr_arith_tracking: false,
            ..AnalysisConfig::default()
        }
    }

    /// The maximally conservative configuration used by translation
    /// validation (`icfgp-verify`): every indirect-target candidate is
    /// kept live, no tail-call heuristic may explain away an
    /// unresolved jump (the function is reported failed instead), and
    /// no faults are injected. Over-approximating capabilities
    /// (table-end extension, pointer-arithmetic tracking) stay on.
    #[must_use]
    pub fn strict() -> AnalysisConfig {
        AnalysisConfig::default().strictened()
    }

    /// This configuration with heuristics and fault injection removed
    /// — the strict counterpart a verifier recomputes results with,
    /// keeping the resolution limits (`max_slice_insts`,
    /// `max_table_entries`) identical so a clean rewrite and its
    /// re-analysis resolve exactly the same tables.
    #[must_use]
    pub fn strictened(&self) -> AnalysisConfig {
        AnalysisConfig {
            tailcall_gap_heuristic: false,
            tailcall_teardown_heuristic: false,
            inject: Vec::new(),
            ..self.clone()
        }
    }

    /// This configuration with the injected faults restricted to those
    /// that can affect the analysis of code in `[start, end)`. Every
    /// fault is anchored to an address ([`InjectedFault::anchor`]):
    /// function faults to the victim entry, table faults to the
    /// dispatching jump. Analysing a function under its slice produces
    /// the same [`FuncCfg`] as under the full configuration, which is
    /// what makes per-function analysis results content-addressable.
    #[must_use]
    pub fn slice_for(&self, start: u64, end: u64) -> AnalysisConfig {
        let mut sliced = self.clone();
        sliced.inject.retain(|f| {
            let a = f.anchor();
            a >= start && a < end
        });
        sliced
    }

    /// A stable fingerprint over every analysis-relevant knob
    /// (including the injected faults). Two configurations with equal
    /// fingerprints analyse identically.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Deliberate analysis faults, one per Figure 2 failure class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InjectedFault {
    /// Make analysis of the function at `entry` report failure.
    FailFunction {
        /// Entry address of the victim function.
        entry: u64,
    },
    /// Drop the last `drop` entries of the table dispatched at
    /// `jump_addr` (under-approximation — the catastrophic class).
    UnderApproximateTable {
        /// Indirect jump address.
        jump_addr: u64,
        /// Number of entries to drop.
        drop: u64,
    },
    /// Add `extra` infeasible targets to the table dispatched at
    /// `jump_addr` (over-approximation — wasteful but safe).
    OverApproximateTable {
        /// Indirect jump address.
        jump_addr: u64,
        /// Number of fake targets to add.
        extra: u64,
    },
    /// Panic inside the analysis of the function at `entry` — models a
    /// latent analysis bug. [`analyze`] isolates it per function, so
    /// the rest of the binary still analyses.
    PanicFunction {
        /// Entry address of the victim function.
        entry: u64,
    },
    /// Make the rewriter's liveness oracle claim every register is
    /// dead in the function at `entry` (corrupt scratch-register
    /// selection; the verifier's strict liveness catches clobbers).
    CorruptLiveness {
        /// Entry address of the victim function.
        entry: u64,
    },
    /// Burn `units` deterministic work units before analysing the
    /// function at `entry` — models a pathological function whose
    /// analysis blows up. With `units` above
    /// [`AnalysisConfig::max_work_units`] the watchdog fires and the
    /// function degrades with [`AnalysisFailure::Budget`] instead of
    /// hanging the pipeline.
    StallFunction {
        /// Entry address of the victim function.
        entry: u64,
        /// Work units charged up front.
        units: u64,
    },
}

impl InjectedFault {
    /// The address this fault is anchored to: faults only perturb the
    /// analysis (or liveness) of the function containing it.
    #[must_use]
    pub fn anchor(&self) -> u64 {
        match self {
            InjectedFault::FailFunction { entry }
            | InjectedFault::PanicFunction { entry }
            | InjectedFault::CorruptLiveness { entry }
            | InjectedFault::StallFunction { entry, .. } => *entry,
            InjectedFault::UnderApproximateTable { jump_addr, .. }
            | InjectedFault::OverApproximateTable { jump_addr, .. } => *jump_addr,
        }
    }
}

/// Analysis verdict for one function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuncStatus {
    /// CFG is complete enough to rewrite.
    Ok,
    /// Analysis reported failure; the rewriter must skip this function
    /// (§4.3: lower coverage, no correctness impact on others).
    Failed(AnalysisFailure),
}

/// What went wrong during analysis. Serialises cleanly so rewrite
/// reports and verify JSON carry the typed reason instead of a
/// `Debug`-formatted string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalysisFailure {
    /// An intra-procedural indirect jump could not be resolved and the
    /// tail-call heuristics did not apply.
    JumpTableUnresolved {
        /// The unresolved jump.
        jump_addr: u64,
    },
    /// Instruction decoding failed inside the function body.
    DecodeError {
        /// Faulting address.
        addr: u64,
    },
    /// Failure injected by the harness.
    Injected,
    /// The per-function analysis panicked and was caught by the
    /// isolation boundary in [`analyze`].
    Panicked,
    /// The watchdog fired: analysis exceeded its work-unit budget or
    /// wall-clock deadline and was aborted (demoted, never hung).
    Budget {
        /// Units spent when the watchdog fired: work units, or
        /// milliseconds when `wall_clock` is set.
        spent: u64,
        /// The configured limit in the same unit as `spent`.
        limit: u64,
        /// `true` when the (nondeterministic) wall-clock deadline
        /// fired rather than the deterministic work-unit budget.
        wall_clock: bool,
    },
}

impl fmt::Display for AnalysisFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisFailure::JumpTableUnresolved { jump_addr } => {
                write!(f, "unresolved indirect jump at {jump_addr:#x}")
            }
            AnalysisFailure::DecodeError { addr } => {
                write!(f, "undecodable instruction at {addr:#x}")
            }
            AnalysisFailure::Injected => f.write_str("injected analysis failure"),
            AnalysisFailure::Panicked => f.write_str("analysis panicked (isolated)"),
            AnalysisFailure::Budget { spent, limit, wall_clock } => {
                if *wall_clock {
                    write!(f, "analysis deadline exceeded: {spent} ms over the {limit} ms limit")
                } else {
                    write!(
                        f,
                        "analysis budget exceeded: {spent} work units over the {limit}-unit budget"
                    )
                }
            }
        }
    }
}

/// Binary-level analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryAnalysis {
    /// Per-function CFGs, keyed by entry address.
    pub funcs: BTreeMap<u64, FuncCfg>,
    /// Function-pointer definitions (empty unless requested).
    pub fp_defs: Vec<FpDef>,
    /// Known data-access boundaries used for table-end extension.
    pub boundaries: BTreeSet<u64>,
}

impl BinaryAnalysis {
    /// Fraction of functions whose analysis succeeded (the paper's
    /// *instrumentation coverage*).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.funcs.is_empty() {
            return 1.0;
        }
        let ok = self.funcs.values().filter(|f| f.status == FuncStatus::Ok).count();
        ok as f64 / self.funcs.len() as f64
    }

    /// The function CFG containing `addr`.
    #[must_use]
    pub fn func_at(&self, addr: u64) -> Option<&FuncCfg> {
        self.funcs
            .range(..=addr)
            .next_back()
            .map(|(_, f)| f)
            .filter(|f| addr < f.end)
    }
}

/// Analyse a whole binary: every function plus (optionally reusable)
/// function-pointer definitions.
///
/// This is the sequential reference driver; it composes the staged
/// entry points [`prepass_boundaries`], [`analyze_function_isolated`]
/// and [`assemble_analysis`] that the incremental/parallel engine in
/// `icfgp-core` reuses. Each function is analysed against the
/// boundaries known so far: the pass-1 set plus the jump tables
/// discovered in every *earlier* (lower-address) function. Any driver
/// reproducing that per-function prefix produces identical results.
#[must_use]
pub fn analyze(binary: &Binary, config: &AnalysisConfig) -> BinaryAnalysis {
    let mut boundaries = prepass_boundaries(binary);

    // Pass 2: full per-function analysis; discovered tables feed the
    // boundary set for later functions.
    let mut funcs = BTreeMap::new();
    for sym in binary.functions() {
        let cfg = analyze_function_isolated(binary, sym, config, &boundaries);
        for jt in &cfg.jump_tables {
            boundaries.insert(jt.table_addr);
        }
        funcs.insert(sym.addr, cfg);
    }

    assemble_analysis(binary, config, funcs, boundaries)
}

/// Pass 1 of [`analyze`]: traverse everything without jump-table
/// resolution to collect the data-access boundaries table-end
/// extension relies on. Depends only on the binary.
#[must_use]
pub fn prepass_boundaries(binary: &Binary) -> BTreeSet<u64> {
    let mut boundaries: BTreeSet<u64> = BTreeSet::new();
    for sym in binary.functions() {
        let insts = traverse(binary, sym.addr, (sym.addr, sym.end()), &[], None);
        for ev in collect_addr_consts(&insts, binary) {
            // Only data addresses are boundaries.
            if let Some(sec) = binary.section_at(ev.value) {
                if !sec.flags().exec || binary.arch == Arch::Ppc64le {
                    boundaries.insert(ev.value);
                }
            }
        }
        // PC-relative data accesses on x64.
        for (addr, (inst, _)) in &insts {
            let a = match inst {
                Inst::Load { addr, .. } | Inst::Store { addr, .. } | Inst::Lea { addr, .. } => addr,
                _ => continue,
            };
            if a.pc_rel {
                boundaries.insert(addr.wrapping_add_signed(a.disp));
            }
        }
    }
    // Section boundaries are known data edges too.
    for sec in binary.sections() {
        boundaries.insert(sec.addr());
        boundaries.insert(sec.end());
    }
    boundaries
}

/// Analyse one function behind the panic isolation boundary: a latent
/// analysis bug (modelled by [`InjectedFault::PanicFunction`]) turns
/// into a per-function [`AnalysisFailure::Panicked`] instead of
/// aborting the whole pass. Safe to call from worker threads — the
/// quiet hook keys off a thread-local.
#[must_use]
pub fn analyze_function_isolated(
    binary: &Binary,
    sym: &Symbol,
    config: &AnalysisConfig,
    boundaries: &BTreeSet<u64>,
) -> FuncCfg {
    install_quiet_panic_hook();
    IN_ANALYSIS.with(|c| c.set(true));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        analyze_function(binary, sym, config, boundaries)
    }));
    IN_ANALYSIS.with(|c| c.set(false));
    result.unwrap_or_else(|_| panicked_func_cfg(sym))
}

/// The final stage of [`analyze`]: binary-level function-pointer
/// analysis plus the block splits it induces, assembled into a
/// [`BinaryAnalysis`]. `funcs` must hold every function's CFG and
/// `boundaries` the fixpoint boundary set.
#[must_use]
pub fn assemble_analysis(
    binary: &Binary,
    config: &AnalysisConfig,
    mut funcs: BTreeMap<u64, FuncCfg>,
    boundaries: BTreeSet<u64>,
) -> BinaryAnalysis {
    let fp_defs = funcptr::analyze_function_pointers(binary, &funcs, config);

    // Function-pointer arithmetic (`&f + delta`) makes mid-function
    // addresses indirect-control-flow targets: split blocks there and
    // record them, so modes that keep pointers unrewritten can install
    // trampolines (§5.2 Listing 1).
    for def in &fp_defs {
        if def.delta == 0 {
            continue;
        }
        let target = def.target_fn.wrapping_add_signed(def.delta);
        if let Some(func) = funcs.values_mut().find(|f| target >= f.start && target < f.end) {
            if func.split_block_at(target) && !func.fp_landing_targets.contains(&target) {
                func.fp_landing_targets.push(target);
            }
        }
    }
    BinaryAnalysis { funcs, fp_defs, boundaries }
}

thread_local! {
    /// Set while a function is being analysed under the panic
    /// isolation boundary; the hook suppresses panic noise for those.
    static IN_ANALYSIS: Cell<bool> = const { Cell::new(false) };
}

/// Chain a panic hook that stays silent for panics caught by the
/// per-function isolation boundary and defers to the previous hook
/// otherwise. Installed once per process.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_ANALYSIS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// The stand-in CFG recorded when a function's analysis panicked: no
/// blocks, no instructions, status [`AnalysisFailure::Panicked`]. The
/// rewriter treats it like any other failed function (§4.3).
fn panicked_func_cfg(sym: &Symbol) -> FuncCfg {
    failed_func_cfg(sym, AnalysisFailure::Panicked)
}

/// A stub CFG carrying only a failure status — shared by the panic
/// isolation boundary and the analysis watchdog. No blocks and no
/// instructions: the function is skipped wholesale.
fn failed_func_cfg(sym: &Symbol, failure: AnalysisFailure) -> FuncCfg {
    FuncCfg {
        name: sym.name.clone(),
        entry: sym.addr,
        start: sym.addr,
        end: sym.end(),
        blocks: BTreeMap::new(),
        insts: BTreeMap::new(),
        jump_tables: Vec::new(),
        indirect_tailcalls: Vec::new(),
        tail_calls: Vec::new(),
        call_sites: Vec::new(),
        landing_pads: Vec::new(),
        inline_data: Vec::new(),
        has_indirect_calls: false,
        fp_landing_targets: Vec::new(),
        status: FuncStatus::Failed(failure),
    }
}

/// Traverse reachable code from `entry` (plus `extra_starts`),
/// decoding instructions. Stops at indirect jumps; does not follow
/// calls. `known_tables` makes resolved table targets reachable.
fn traverse(
    binary: &Binary,
    entry: u64,
    range: (u64, u64),
    extra_starts: &[u64],
    mut decode_failure: Option<&mut Option<u64>>,
) -> BTreeMap<u64, (Inst, u8)> {
    let (start, end) = range;
    let mut insts: BTreeMap<u64, (Inst, u8)> = BTreeMap::new();
    let mut worklist: Vec<u64> = vec![entry];
    worklist.extend_from_slice(extra_starts);
    let mut queued: HashSet<u64> = worklist.iter().copied().collect();
    while let Some(mut addr) = worklist.pop() {
        loop {
            if addr < start || addr >= end || insts.contains_key(&addr) {
                break;
            }
            let Ok(bytes) = binary.read(addr, (end - addr).min(16) as usize) else { break };
            let Ok((inst, len)) = decode(bytes, binary.arch) else {
                if let Some(fail) = decode_failure.as_deref_mut() {
                    fail.get_or_insert(addr);
                }
                break;
            };
            let len = len as u64;
            insts.insert(addr, (inst.clone(), len as u8));
            // Enqueue direct branch targets.
            if let Some(off) = inst.direct_offset() {
                if !inst.is_call() {
                    let target = addr.wrapping_add_signed(off);
                    if target >= start && target < end && queued.insert(target) {
                        worklist.push(target);
                    }
                }
            }
            if inst.falls_through() {
                addr += len;
            } else {
                break;
            }
        }
    }
    insts
}

/// One address-materialisation event: after `inst_addr`, register
/// `reg` holds the constant `value`. Two-instruction idioms
/// (`adrp`+`add`, `addis`+`addi`) record the first instruction in
/// `pair_first`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrConstEvent {
    /// Address of the completing instruction.
    pub inst_addr: u64,
    /// Register holding the constant afterwards.
    pub reg: Reg,
    /// The constant.
    pub value: u64,
    /// First instruction of a two-instruction idiom, if any.
    pub pair_first: Option<u64>,
}

/// Forward scan yielding address-materialisation events (shared by
/// boundary collection and function-pointer analysis).
pub(crate) fn collect_addr_consts(
    insts: &BTreeMap<u64, (Inst, u8)>,
    binary: &Binary,
) -> Vec<AddrConstEvent> {
    let toc = binary.toc_base;
    let mut events = Vec::new();
    // reg -> (partially built constant, first inst of the pair)
    let mut partial: BTreeMap<u8, (u64, u64)> = BTreeMap::new();
    for (addr, (inst, _)) in insts {
        match inst {
            Inst::Lea { dst, addr: a } if a.pc_rel => {
                let v = addr.wrapping_add_signed(a.disp);
                events.push(AddrConstEvent { inst_addr: *addr, reg: *dst, value: v, pair_first: None });
                partial.remove(&dst.0);
            }
            Inst::MovImm { dst, imm } => {
                let v = *imm as u64;
                if binary.section_at(v).is_some() {
                    events.push(AddrConstEvent { inst_addr: *addr, reg: *dst, value: v, pair_first: None });
                }
                partial.remove(&dst.0);
            }
            Inst::AdrPage { dst, page_delta } => {
                partial.insert(dst.0, ((addr & !0xFFF).wrapping_add_signed(page_delta << 12), *addr));
            }
            Inst::AddShl16 { dst, src, imm } => {
                if Some(*src) == binary.arch.toc() {
                    if let Some(t) = toc {
                        partial.insert(dst.0, (t.wrapping_add_signed(i64::from(*imm) << 16), *addr));
                    }
                } else {
                    partial.remove(&dst.0);
                }
            }
            Inst::AddImm16 { dst, src, imm } if partial.contains_key(&src.0) => {
                let (base, first) = partial[&src.0];
                events.push(AddrConstEvent {
                    inst_addr: *addr,
                    reg: *dst,
                    value: base.wrapping_add_signed(i64::from(*imm)),
                    pair_first: Some(first),
                });
                partial.remove(&dst.0);
            }
            Inst::AluImm { op: AluOp::Add, dst, src, imm } if partial.contains_key(&src.0) => {
                let (base, first) = partial[&src.0];
                events.push(AddrConstEvent {
                    inst_addr: *addr,
                    reg: *dst,
                    value: base.wrapping_add_signed(i64::from(*imm)),
                    pair_first: Some(first),
                });
                partial.remove(&dst.0);
            }
            _ => {
                if let Some(d) = inst.def_reg() {
                    partial.remove(&d.0);
                }
            }
        }
    }
    events
}

/// Analyse one function.
#[must_use]
pub fn analyze_function(
    binary: &Binary,
    sym: &Symbol,
    config: &AnalysisConfig,
    boundaries: &BTreeSet<u64>,
) -> FuncCfg {
    let range = (sym.addr, sym.end());
    let mut status = FuncStatus::Ok;

    // Injected whole-function failure.
    if config
        .inject
        .iter()
        .any(|f| matches!(f, InjectedFault::FailFunction { entry } if *entry == sym.addr))
    {
        status = FuncStatus::Failed(AnalysisFailure::Injected);
    }
    // Injected analysis bug: panic mid-analysis. `analyze` catches it
    // at the per-function isolation boundary.
    if config
        .inject
        .iter()
        .any(|f| matches!(f, InjectedFault::PanicFunction { entry } if *entry == sym.addr))
    {
        panic!("injected analysis panic at {:#x}", sym.addr);
    }

    // Landing pads are traversal roots: the language runtime jumps to
    // them.
    let landing_pads: Vec<u64> = binary
        .unwind
        .entries()
        .iter()
        .filter(|e| e.start >= range.0 && e.start < range.1)
        .flat_map(|e| e.call_sites.iter().map(|cs| cs.landing_pad))
        .collect();

    // Watchdog ledger: deterministic work units, plus an optional
    // cooperative wall-clock deadline. An injected stall charges its
    // units up front, so chaos can provoke the budget reproducibly.
    let mut work: u64 = 0;
    for f in &config.inject {
        if let InjectedFault::StallFunction { entry, units } = f {
            if *entry == sym.addr {
                work = work.saturating_add(*units);
            }
        }
    }
    let started = std::time::Instant::now();
    if work > config.max_work_units {
        return failed_func_cfg(
            sym,
            AnalysisFailure::Budget { spent: work, limit: config.max_work_units, wall_clock: false },
        );
    }

    // Iterate traversal + jump-table resolution to a fixpoint.
    let mut extra_starts: Vec<u64> = landing_pads.clone();
    let mut jump_tables = Vec::new();
    let mut failed_jumps: Vec<u64> = Vec::new();
    let mut analyzed_jumps: HashSet<u64> = HashSet::new();
    let mut decode_failure: Option<u64> = None;
    let mut insts;
    let mut local_boundaries = boundaries.clone();
    loop {
        if let Some(ms) = config.func_timeout_ms {
            let elapsed = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            if elapsed > ms {
                return failed_func_cfg(
                    sym,
                    AnalysisFailure::Budget { spent: elapsed, limit: ms, wall_clock: true },
                );
            }
        }
        insts = traverse(binary, sym.addr, range, &extra_starts, Some(&mut decode_failure));
        work = work.saturating_add(insts.len() as u64);
        if work > config.max_work_units {
            return failed_func_cfg(
                sym,
                AnalysisFailure::Budget {
                    spent: work,
                    limit: config.max_work_units,
                    wall_clock: false,
                },
            );
        }
        let pending: Vec<u64> = insts
            .iter()
            .filter(|(_, (i, _))| {
                matches!(i, Inst::JumpReg { .. } | Inst::JumpTar | Inst::JumpMem { .. })
            })
            .map(|(a, _)| *a)
            .filter(|a| !analyzed_jumps.contains(a))
            .collect();
        if pending.is_empty() {
            break;
        }
        let mut progressed = false;
        for jump_addr in pending {
            work = work.saturating_add(config.max_slice_insts as u64);
            if work > config.max_work_units {
                return failed_func_cfg(
                    sym,
                    AnalysisFailure::Budget {
                        spent: work,
                        limit: config.max_work_units,
                        wall_clock: false,
                    },
                );
            }
            analyzed_jumps.insert(jump_addr);
            let ctx = SliceCtx {
                insts: &insts,
                binary,
                toc: binary.toc_base,
                boundaries: &local_boundaries,
                config,
                func_range: range,
            };
            match analyze_jump(&ctx, jump_addr) {
                Ok(mut desc) => {
                    apply_injections(config, &mut desc, &insts, range);
                    local_boundaries.insert(desc.table_addr);
                    for (_, t) in &desc.targets {
                        extra_starts.push(*t);
                    }
                    jump_tables.push(desc);
                    progressed = true;
                }
                Err(JtFail::NoPattern | JtFail::NoBase | JtFail::NoBound | JtFail::BadTableRead) => {
                    failed_jumps.push(jump_addr);
                }
            }
        }
        if !progressed {
            break;
        }
    }

    // Inline (in-.text) table data ranges.
    let inline_data: Vec<(u64, u64)> = jump_tables
        .iter()
        .filter(|t| t.in_text)
        .map(|t| (t.table_addr, t.table_addr + t.count * u64::from(t.entry_width)))
        .collect();

    // Tail-call heuristics for unresolved indirect jumps.
    let mut indirect_tailcalls = Vec::new();
    let mut unresolved = Vec::new();
    let gaps_ok = gaps_are_benign(binary, &insts, &inline_data, range);
    for jump_addr in failed_jumps {
        let teardown = config.tailcall_teardown_heuristic
            && has_frame_teardown_before(&insts, jump_addr, binary.arch);
        let by_gap = config.tailcall_gap_heuristic && gaps_ok;
        if teardown || by_gap {
            indirect_tailcalls.push(jump_addr);
        } else {
            unresolved.push(jump_addr);
        }
    }
    if status == FuncStatus::Ok {
        if let Some(addr) = decode_failure {
            status = FuncStatus::Failed(AnalysisFailure::DecodeError { addr });
        } else if let Some(j) = unresolved.first() {
            status = FuncStatus::Failed(AnalysisFailure::JumpTableUnresolved { jump_addr: *j });
        }
    }

    // Build blocks.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(sym.addr);
    for lp in &landing_pads {
        leaders.insert(*lp);
    }
    for (addr, (inst, len)) in &insts {
        if let Some(off) = inst.direct_offset() {
            if !inst.is_call() {
                let t = addr.wrapping_add_signed(off);
                if t >= range.0 && t < range.1 {
                    leaders.insert(t);
                }
            }
        }
        if inst.is_control_flow() {
            leaders.insert(addr + u64::from(*len));
        }
    }
    for t in jump_tables.iter().flat_map(|t| t.targets.iter().map(|(_, t)| *t)) {
        leaders.insert(t);
    }

    let mut blocks: BTreeMap<u64, Block> = BTreeMap::new();
    let mut call_sites = Vec::new();
    let mut tail_calls = Vec::new();
    let mut has_indirect_calls = false;
    let mut cur: Option<Block> = None;
    let mut prev_end = 0u64;
    for (addr, (inst, len)) in &insts {
        let len = u64::from(*len);
        // Start a new block at leaders or after a gap.
        let starts_new = cur.is_none() || leaders.contains(addr) || *addr != prev_end;
        if starts_new {
            if let Some(mut b) = cur.take() {
                // Fell through into a leader.
                if b.terminator.is_none() && b.end == *addr {
                    b.succs.push(Edge { target: *addr, kind: EdgeKind::FallThrough });
                }
                blocks.insert(b.start, b);
            }
            cur = Some(Block { start: *addr, end: *addr, terminator: None, succs: Vec::new() });
        }
        let b = cur.as_mut().expect("block in progress");
        b.end = addr + len;
        prev_end = addr + len;
        if inst.is_control_flow() {
            b.terminator = Some(*addr);
            let next = addr + len;
            match inst {
                Inst::Jump { offset } => {
                    let t = addr.wrapping_add_signed(*offset);
                    if t >= range.0 && t < range.1 {
                        b.succs.push(Edge { target: t, kind: EdgeKind::Branch });
                    } else {
                        tail_calls.push((*addr, t));
                    }
                }
                Inst::JumpCond { offset, .. } => {
                    let t = addr.wrapping_add_signed(*offset);
                    if t >= range.0 && t < range.1 {
                        b.succs.push(Edge { target: t, kind: EdgeKind::CondTaken });
                    } else {
                        tail_calls.push((*addr, t));
                    }
                    b.succs.push(Edge { target: next, kind: EdgeKind::FallThrough });
                }
                Inst::Call { offset } => {
                    call_sites.push((*addr, next, Some(addr.wrapping_add_signed(*offset))));
                    b.succs.push(Edge { target: next, kind: EdgeKind::CallFallThrough });
                }
                Inst::CallReg { .. } | Inst::CallMem { .. } | Inst::CallTar => {
                    has_indirect_calls = true;
                    call_sites.push((*addr, next, None));
                    b.succs.push(Edge { target: next, kind: EdgeKind::CallFallThrough });
                }
                Inst::JumpReg { .. } | Inst::JumpTar | Inst::JumpMem { .. } => {
                    if let Some(t) = jump_tables.iter().find(|t| t.jump_addr == *addr) {
                        let mut seen = HashSet::new();
                        for (_, target) in &t.targets {
                            if seen.insert(*target) {
                                b.succs
                                    .push(Edge { target: *target, kind: EdgeKind::JumpTable });
                            }
                        }
                    }
                    // Unresolved: no intra edges (tail call or failure).
                }
                _ => {} // Ret / Halt / Trap: no successors
            }
            let done = std::mem::take(&mut cur).expect("current block");
            blocks.insert(done.start, done);
        }
    }
    if let Some(b) = cur.take() {
        blocks.insert(b.start, b);
    }

    FuncCfg {
        name: sym.name.clone(),
        entry: sym.addr,
        start: range.0,
        end: range.1,
        blocks,
        insts,
        jump_tables,
        indirect_tailcalls,
        tail_calls,
        call_sites,
        landing_pads,
        inline_data,
        has_indirect_calls,
        fp_landing_targets: Vec::new(),
        status,
    }
}

/// §5.1 Failure 1's layout heuristic: decode the function's gaps; a
/// gap that is all `nop` (alignment padding) or empty is benign.
fn gaps_are_benign(
    binary: &Binary,
    insts: &BTreeMap<u64, (Inst, u8)>,
    inline_data: &[(u64, u64)],
    range: (u64, u64),
) -> bool {
    let mut covered: Vec<(u64, u64)> = insts
        .iter()
        .map(|(a, (_, l))| (*a, a + u64::from(*l)))
        .chain(inline_data.iter().copied())
        .collect();
    covered.sort_unstable();
    let mut cursor = range.0;
    let mut gaps: Vec<(u64, u64)> = Vec::new();
    for (s, e) in covered {
        if s > cursor {
            gaps.push((cursor, s));
        }
        cursor = cursor.max(e);
    }
    if cursor < range.1 {
        gaps.push((cursor, range.1));
    }
    for (gs, ge) in gaps {
        let mut a = gs;
        while a < ge {
            let Ok(bytes) = binary.read(a, (ge - a).min(16) as usize) else { return false };
            match decode(bytes, binary.arch) {
                Ok((Inst::Nop, len)) => a += len as u64,
                _ => return false,
            }
        }
    }
    true
}

/// The classic tail-call heuristic: frame teardown (`add sp, sp, N`)
/// shortly before the indirect jump.
fn has_frame_teardown_before(
    insts: &BTreeMap<u64, (Inst, u8)>,
    jump_addr: u64,
    arch: Arch,
) -> bool {
    let sp = arch.sp();
    insts.range(..jump_addr).rev().take(8).any(|(_, (inst, _))| {
        matches!(inst,
            Inst::AluImm { op: AluOp::Add, dst, src, imm }
                if *dst == sp && *src == sp && *imm > 0)
    })
}

/// Apply table-level injected faults.
fn apply_injections(
    config: &AnalysisConfig,
    desc: &mut crate::jumptable::JumpTableDesc,
    insts: &BTreeMap<u64, (Inst, u8)>,
    range: (u64, u64),
) {
    for fault in &config.inject {
        match fault {
            InjectedFault::UnderApproximateTable { jump_addr, drop }
                if *jump_addr == desc.jump_addr =>
            {
                desc.count = desc.count.saturating_sub(*drop);
                desc.targets.retain(|(i, _)| *i < desc.count);
            }
            InjectedFault::OverApproximateTable { jump_addr, extra }
                if *jump_addr == desc.jump_addr =>
            {
                // Fabricate infeasible edges to instruction boundaries
                // that are not already targets.
                let existing: HashSet<u64> = desc.targets.iter().map(|(_, t)| *t).collect();
                let fakes: Vec<u64> = insts
                    .keys()
                    .filter(|a| **a > range.0 && !existing.contains(*a))
                    .take(*extra as usize)
                    .copied()
                    .collect();
                let base_idx = desc.count;
                for (k, t) in fakes.into_iter().enumerate() {
                    desc.targets.push((base_idx + k as u64, t));
                }
                desc.count += extra;
            }
            _ => {}
        }
    }
}

#![warn(missing_docs)]
//! Binary analysis: disassembly, CFG construction, and the indirect
//! control-flow analyses the rewriter builds on.
//!
//! The paper's central reliability argument (§4.3, Figure 2) is that a
//! rewriter must be engineered around *analysis failure modes*:
//!
//! * **analysis reporting failure** — this crate reports per-function
//!   [`AnalysisFailure`]s instead of guessing; the rewriter then skips
//!   the function (partial instrumentation, lower coverage);
//! * **over-approximation** — jump-table bound extension
//!   ([`AnalysisConfig::table_end_extension`]) deliberately
//!   over-approximates rather than under-approximates table sizes;
//!   over-approximated edges only waste trampolines;
//! * **under-approximation** — the one catastrophic failure class; the
//!   [`inject`](AnalysisConfig::inject) hooks let the evaluation
//!   harness create each failure class on purpose and measure its
//!   blast radius (the Figure 2 experiment).
//!
//! Analyses implemented:
//!
//! * control-flow traversal disassembly with block splitting
//!   ([`analyze_function`]);
//! * **jump-table analysis** by backward slicing from indirect jumps —
//!   table base materialisation (x64 `lea`/`mov`, ppc64le TOC pairs,
//!   aarch64 `adrp` pairs), entry width/kind recovery, bound inference
//!   from `cmp`/`ja` pairs, optional stack-spill tracking, and
//!   table-end extension to the nearest known data boundary;
//! * **indirect tail-call identification** via the paper's new
//!   function-layout gap heuristic (decode the gaps; all-nop or no
//!   gaps ⇒ the unresolved jump is a tail call) next to the classic
//!   frame-teardown heuristic used by older rewriters;
//! * **function-pointer analysis** (relocation-based plus code-based
//!   materialisation with forward slicing for `&f + delta` arithmetic,
//!   the Go `runtime.goexit+1` pattern of Listing 1);
//! * **register liveness** for scratch-register selection in long
//!   trampolines (§7).

mod analysis;
mod block;
mod funcptr;
mod jumptable;
mod liveness;

pub use analysis::{
    analyze, analyze_function, analyze_function_isolated, assemble_analysis, prepass_boundaries,
    AddrConstEvent, AnalysisConfig, AnalysisFailure, BinaryAnalysis, FuncStatus, InjectedFault,
};
pub use block::{Block, Edge, EdgeKind, FuncCfg};
pub use funcptr::{FpDef, FpDefSite, FpEvidence};
pub use jumptable::{BoundEvidence, JumpTableDesc, TableKind};
pub use liveness::{live_in_at_blocks, LivenessResult};

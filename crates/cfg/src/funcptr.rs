//! Function-pointer analysis (§5.2).
//!
//! Rewriting inter-procedural indirect control flow does not require
//! knowing where indirect calls go — only where function pointers are
//! *defined*. Definitions found:
//!
//! * **relocation slots** (PIE): every RELATIVE relocation whose
//!   target is a function entry, excluding slots inside discovered
//!   jump tables (those are cloned, not pointer-rewritten). This
//!   deliberately includes language-specific function tables such as
//!   the Go `.pclntab` — the analysis has no way to tell them apart,
//!   which is exactly why `func-ptr` mode fails on Go binaries;
//! * **bare data words** (non-PIE): 8-byte-aligned words whose value
//!   equals a function entry. This over-approximates — an integer that
//!   happens to collide with a code address gets rewritten too, the
//!   documented unsafety of `func-ptr` mode;
//! * **code materialisations**: `lea`/`mov`/`adrp`+`add`/TOC pairs
//!   producing a function entry, with optional forward slicing through
//!   add-immediates to catch the `&runtime.goexit + 1` pattern of
//!   Listing 1 (the stored pointer targets `entry + delta`).

use crate::analysis::{collect_addr_consts, AnalysisConfig};
use crate::block::FuncCfg;
use icfgp_isa::{AluOp, Inst};
use icfgp_obj::{Binary, SectionKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The evidence class behind a function-pointer definition — the
/// provenance the soundness auditor (`icfgp-audit`) grades for
/// `ICFGP-A003`. Trust order: `Relocation` (link-time ground truth) >
/// `CodeMaterialisation` without escape > `WordScan` and escaping
/// materialisations (the value's uses cannot be enumerated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpEvidence {
    /// A RELATIVE relocation slot: link-time ground truth.
    Relocation,
    /// A bare data word whose value happens to equal a function entry
    /// (the non-PIE scan): the word may be an integer that collides
    /// with a code address.
    WordScan,
    /// A code-side materialisation of the entry address.
    CodeMaterialisation {
        /// The materialised value is subsequently stored to memory, so
        /// its consumers cannot be enumerated statically — the pointer
        /// *escapes*.
        escapes: bool,
    },
}

/// Where a function pointer is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpDefSite {
    /// An 8-byte data slot (relocation target or matched word).
    DataSlot {
        /// Slot virtual address.
        addr: u64,
    },
    /// A code-side materialisation; the rewriter fixes the relocated
    /// copy of these instructions instead of a data slot.
    CodeImm {
        /// Address of the (completing) materialising instruction.
        inst_addr: u64,
        /// First instruction of a two-instruction idiom, if any.
        pair_first: Option<u64>,
    },
}

/// One function-pointer definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpDef {
    /// The definition site.
    pub site: FpDefSite,
    /// Entry address of the pointed-to function.
    pub target_fn: u64,
    /// Delta applied by downstream arithmetic before the pointer is
    /// used (`&goexit + 1` has delta 1). The rewritten value must be
    /// `relocated(target_fn + delta) - delta` so consumers that add
    /// `delta` land on a real relocated instruction.
    pub delta: i64,
    /// Evidence provenance of this definition (see [`FpEvidence`]).
    pub evidence: FpEvidence,
}

/// Find all function-pointer definitions in the binary.
#[must_use]
pub fn analyze_function_pointers(
    binary: &Binary,
    funcs: &BTreeMap<u64, FuncCfg>,
    config: &AnalysisConfig,
) -> Vec<FpDef> {
    let mut defs: Vec<FpDef> = Vec::new();
    let in_jump_table = |addr: u64| {
        funcs.values().flat_map(|f| &f.jump_tables).any(|t| {
            addr >= t.table_addr && addr < t.table_addr + t.count * u64::from(t.entry_width)
        })
    };
    let is_entry = |v: u64| binary.function_starting_at(v).is_some();

    if binary.meta.pie {
        for reloc in binary.runtime_relocations() {
            if is_entry(reloc.addend) && !in_jump_table(reloc.at) {
                defs.push(FpDef {
                    site: FpDefSite::DataSlot { addr: reloc.at },
                    target_fn: reloc.addend,
                    delta: 0,
                    evidence: FpEvidence::Relocation,
                });
            }
        }
    } else {
        // Non-PIE: scan data sections for words matching entries.
        for sec in binary.sections() {
            if sec.flags().exec
                || !sec.flags().alloc
                || !matches!(sec.kind(), SectionKind::Data | SectionKind::ReadOnlyData)
            {
                continue;
            }
            let mut addr = sec.addr() & !7;
            if addr < sec.addr() {
                addr += 8;
            }
            while addr + 8 <= sec.end() {
                if let Ok(v) = binary.read_u64(addr) {
                    if is_entry(v) && !in_jump_table(addr) {
                        defs.push(FpDef {
                            site: FpDefSite::DataSlot { addr },
                            target_fn: v,
                            delta: 0,
                            evidence: FpEvidence::WordScan,
                        });
                    }
                }
                addr += 8;
            }
        }
    }

    // Code-side materialisations of function entries.
    for func in funcs.values() {
        for ev in collect_addr_consts(&func.insts, binary) {
            if !is_entry(ev.value) {
                continue;
            }
            // Skip materialisations that are actually jump-table base
            // setups.
            if func
                .jump_tables
                .iter()
                .any(|t| t.base_insts.contains(&ev.inst_addr))
            {
                continue;
            }
            let mut delta = 0i64;
            if config.funcptr_arith_tracking {
                delta = forward_delta(&func.insts, ev.inst_addr, ev.reg);
            }
            let escapes = escapes_to_memory(&func.insts, ev.inst_addr, ev.reg);
            defs.push(FpDef {
                site: FpDefSite::CodeImm { inst_addr: ev.inst_addr, pair_first: ev.pair_first },
                target_fn: ev.value,
                delta,
                evidence: FpEvidence::CodeMaterialisation { escapes },
            });
        }
    }

    // The Listing 1 pattern: a function-pointer *load* from a data
    // slot followed by arithmetic before the value is stored. The
    // definition is the slot; record the delta against it.
    if config.funcptr_arith_tracking {
        let slot_defs: Vec<(usize, u64)> = defs
            .iter()
            .enumerate()
            .filter_map(|(i, d)| match d.site {
                FpDefSite::DataSlot { addr } => Some((i, addr)),
                FpDefSite::CodeImm { .. } => None,
            })
            .collect();
        for func in funcs.values() {
            // Find loads whose source address resolves to a known slot.
            for (addr, (inst, len)) in &func.insts {
                let Inst::Load { dst, addr: a, .. } = inst else { continue };
                let src_addr = if a.pc_rel {
                    Some(addr.wrapping_add_signed(a.disp))
                } else {
                    // RISC: materialised address in the base register.
                    collect_addr_consts(&func.insts, binary)
                        .iter()
                        .rev()
                        .find(|ev| ev.inst_addr < *addr && Some(ev.reg) == a.base)
                        .map(|ev| ev.value)
                };
                let Some(src_addr) = src_addr else { continue };
                if let Some((i, _)) = slot_defs.iter().find(|(_, s)| *s == src_addr) {
                    let delta = forward_delta(&func.insts, addr + u64::from(*len) - 1, *dst);
                    if delta != 0 {
                        defs[*i].delta = delta;
                    }
                }
            }
        }
    }

    defs.sort_by_key(|d| match d.site {
        FpDefSite::DataSlot { addr } => (0, addr),
        FpDefSite::CodeImm { inst_addr, .. } => (1, inst_addr),
    });
    defs.dedup();
    defs
}

/// Forward scan: does the value in `reg` (as of just after
/// `from_addr`) get stored to memory before the register is
/// redefined? A stored function-pointer value escapes the slice — its
/// consumers cannot be enumerated statically.
fn escapes_to_memory(
    insts: &BTreeMap<u64, (Inst, u8)>,
    from_addr: u64,
    reg: icfgp_isa::Reg,
) -> bool {
    for (_, (inst, _)) in insts.range(from_addr + 1..).take(8) {
        match inst {
            Inst::Store { src, .. } if *src == reg => return true,
            _ => {
                if inst.def_reg() == Some(reg) {
                    return false;
                }
            }
        }
    }
    false
}

/// Forward-slice `reg` from just after `from_addr`: accumulate
/// add-immediates applied before the value is stored or the register
/// is clobbered.
fn forward_delta(
    insts: &BTreeMap<u64, (Inst, u8)>,
    from_addr: u64,
    reg: icfgp_isa::Reg,
) -> i64 {
    let mut delta = 0i64;
    for (_, (inst, _)) in insts.range(from_addr + 1..).take(8) {
        match inst {
            Inst::AluImm { op: AluOp::Add, dst, src, imm } if *dst == reg && *src == reg => {
                delta += i64::from(*imm);
            }
            Inst::AddImm16 { dst, src, imm } if *dst == reg && *src == reg => {
                delta += i64::from(*imm);
            }
            Inst::Store { src, .. } if *src == reg => return delta,
            _ => {
                if inst.def_reg() == Some(reg) {
                    return delta;
                }
            }
        }
    }
    delta
}

//! Basic blocks, edges and the per-function CFG.

use crate::analysis::FuncStatus;
use crate::jumptable::JumpTableDesc;
use icfgp_isa::Inst;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why one block flows to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Straight-line continuation.
    FallThrough,
    /// Unconditional direct branch.
    Branch,
    /// Conditional branch, taken side.
    CondTaken,
    /// Continuation after a call returns.
    CallFallThrough,
    /// Resolved jump-table dispatch.
    JumpTable,
}

/// A control-flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Destination block start address.
    pub target: u64,
    /// Edge classification.
    pub kind: EdgeKind,
}

/// A basic block: `[start, end)` with at most one control-flow
/// instruction, at the end.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// First instruction address.
    pub start: u64,
    /// One past the last instruction byte.
    pub end: u64,
    /// Address of the terminating control-flow instruction, when the
    /// block ends in one.
    pub terminator: Option<u64>,
    /// Intra-procedural successors.
    pub succs: Vec<Edge>,
}

impl Block {
    /// Block size in bytes — the budget available for installing a
    /// trampoline at this block.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the block is empty (never true for constructed CFGs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// The analysis result for one function.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct FuncCfg {
    /// Function name (may be empty for stripped binaries).
    pub name: String,
    /// Entry address.
    pub entry: u64,
    /// Symbol range start.
    pub start: u64,
    /// Symbol range end.
    pub end: u64,
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u64, Block>,
    /// Every decoded instruction: address → (instruction, length).
    pub insts: BTreeMap<u64, (Inst, u8)>,
    /// Resolved jump tables.
    pub jump_tables: Vec<JumpTableDesc>,
    /// Indirect jumps classified as tail calls (unresolved targets,
    /// judged safe by a heuristic).
    pub indirect_tailcalls: Vec<u64>,
    /// Direct tail calls: (jump address, target function entry).
    pub tail_calls: Vec<(u64, u64)>,
    /// Call sites: (call instruction address, return address,
    /// direct target if known).
    pub call_sites: Vec<(u64, u64, Option<u64>)>,
    /// Exception landing pads inside this function (from the unwind
    /// table) — control flow lands here from the language runtime.
    pub landing_pads: Vec<u64>,
    /// In-code jump-table data ranges (`[start, end)`), excluded from
    /// gap decoding.
    pub inline_data: Vec<(u64, u64)>,
    /// Whether the function contains indirect calls.
    pub has_indirect_calls: bool,
    /// Addresses inside this function that function-pointer analysis
    /// proved reachable through pointer arithmetic (`&f + delta`,
    /// §5.2 Listing 1). They are block leaders, and modes that leave
    /// function pointers unrewritten must trampoline them.
    pub fp_landing_targets: Vec<u64>,
    /// Analysis verdict.
    pub status: FuncStatus,
}

impl FuncCfg {
    /// The block containing `addr`.
    #[must_use]
    pub fn block_at(&self, addr: u64) -> Option<&Block> {
        self.blocks
            .range(..=addr)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| addr < b.end)
    }

    /// The block starting exactly at `addr`.
    #[must_use]
    pub fn block_starting_at(&self, addr: u64) -> Option<&Block> {
        self.blocks.get(&addr)
    }

    /// All intra-procedural predecessor start addresses, per block.
    #[must_use]
    pub fn predecessors(&self) -> BTreeMap<u64, Vec<u64>> {
        let mut preds: BTreeMap<u64, Vec<u64>> =
            self.blocks.keys().map(|k| (*k, Vec::new())).collect();
        for (start, block) in &self.blocks {
            for e in &block.succs {
                if let Some(v) = preds.get_mut(&e.target) {
                    v.push(*start);
                }
            }
        }
        preds
    }

    /// Whether `addr` is a decoded instruction boundary.
    #[must_use]
    pub fn is_inst_boundary(&self, addr: u64) -> bool {
        self.insts.contains_key(&addr)
    }

    /// Split the block containing `addr` so a block starts exactly at
    /// `addr`. Returns `true` when `addr` now starts a block (either
    /// it already did, or the split succeeded on an instruction
    /// boundary).
    pub fn split_block_at(&mut self, addr: u64) -> bool {
        let Some((&bs, _)) = self.blocks.range(..=addr).next_back() else {
            return false;
        };
        if bs == addr {
            return true;
        }
        let block = self.blocks.get_mut(&bs).expect("range hit");
        if addr >= block.end || !self.insts.contains_key(&addr) {
            return false;
        }
        let tail = Block {
            start: addr,
            end: block.end,
            terminator: block.terminator,
            succs: std::mem::take(&mut block.succs),
        };
        block.end = addr;
        block.terminator = None;
        block.succs.push(Edge { target: addr, kind: EdgeKind::FallThrough });
        self.blocks.insert(addr, tail);
        true
    }

    /// Total bytes covered by decoded instructions and inline data.
    #[must_use]
    pub fn covered_bytes(&self) -> u64 {
        let inst_bytes: u64 = self.insts.values().map(|(_, l)| u64::from(*l)).sum();
        let data_bytes: u64 = self.inline_data.iter().map(|(s, e)| e - s).sum();
        inst_bytes + data_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(start: u64, end: u64, succs: Vec<Edge>) -> Block {
        Block { start, end, terminator: None, succs }
    }

    #[test]
    fn block_lookup() {
        let mut blocks = BTreeMap::new();
        blocks.insert(0x10, block(0x10, 0x20, vec![Edge { target: 0x20, kind: EdgeKind::FallThrough }]));
        blocks.insert(0x20, block(0x20, 0x30, vec![]));
        let f = FuncCfg {
            name: "f".into(),
            entry: 0x10,
            start: 0x10,
            end: 0x30,
            blocks,
            insts: BTreeMap::new(),
            jump_tables: vec![],
            indirect_tailcalls: vec![],
            tail_calls: vec![],
            call_sites: vec![],
            landing_pads: vec![],
            inline_data: vec![],
            has_indirect_calls: false,
            fp_landing_targets: vec![],
            status: FuncStatus::Ok,
        };
        assert_eq!(f.block_at(0x15).unwrap().start, 0x10);
        assert_eq!(f.block_at(0x20).unwrap().start, 0x20);
        assert!(f.block_at(0x30).is_none());
        let preds = f.predecessors();
        assert_eq!(preds[&0x20], vec![0x10]);
        assert!(preds[&0x10].is_empty());
    }
}

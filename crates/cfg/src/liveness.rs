//! Register liveness, used to pick scratch registers for the long
//! trampoline sequences (§7: ppc64le saves/restores when no register
//! is dead; aarch64 falls back to a trap).

use crate::block::FuncCfg;
use icfgp_isa::{Arch, Reg};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bitmask register set (bit *i* = `r<i>`).
type RegSet = u64;

/// Per-block live-in sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LivenessResult {
    live_in: BTreeMap<u64, RegSet>,
    arch: Arch,
}

impl LivenessResult {
    /// A deliberately wrong result claiming every register is dead in
    /// every block of `func`. Backs the chaos layer's corrupt-liveness
    /// fault (`InjectedFault::CorruptLiveness`): trampolines may then
    /// pick a live scratch register, which the verifier's *strict*
    /// liveness recomputation flags as a clobber.
    #[must_use]
    pub fn assume_all_dead(func: &FuncCfg, arch: Arch) -> LivenessResult {
        LivenessResult { live_in: func.blocks.keys().map(|k| (*k, 0)).collect(), arch }
    }

    /// Whether `reg` may be read before being written when control
    /// enters the block at `block_start`. Unknown blocks are fully
    /// live (conservative).
    #[must_use]
    pub fn is_live_in(&self, block_start: u64, reg: Reg) -> bool {
        match self.live_in.get(&block_start) {
            Some(set) => set & (1 << reg.0) != 0,
            None => true,
        }
    }

    /// The registers live on entry to the block, or `None` when the
    /// block is unknown to this analysis (callers that treat unknown
    /// blocks as fully live can keep using [`Self::is_live_in`]; the
    /// verifier uses `None` to tell "provably live" apart from "no
    /// information").
    #[must_use]
    pub fn live_in_regs(&self, block_start: u64) -> Option<Vec<Reg>> {
        let set = *self.live_in.get(&block_start)?;
        Some(
            (0..self.arch.gpr_count())
                .map(Reg)
                .filter(|r| set & (1 << r.0) != 0)
                .collect(),
        )
    }

    /// A register that is dead on entry to the block, usable as a
    /// trampoline scratch register. The stack pointer, the ppc64le TOC
    /// register and `r0` (the prologue scratch) are never returned.
    #[must_use]
    pub fn scratch_reg_at(&self, block_start: u64) -> Option<Reg> {
        let set = *self.live_in.get(&block_start)?;
        let reserved: RegSet = {
            let mut r = 1 << self.arch.sp().0 | 1 << 0;
            if let Some(toc) = self.arch.toc() {
                r |= 1 << toc.0;
            }
            r
        };
        (0..self.arch.gpr_count())
            .map(Reg)
            .find(|r| set & (1 << r.0) == 0 && reserved & (1 << r.0) == 0)
    }
}

/// Compute per-block live-in sets with a standard backward dataflow.
///
/// The ABI modelled here matches the workload generator's "simple
/// compiler": values are never kept in registers across calls (callers
/// spill to their own frame), arguments/returns live in `r8..r11`,
/// and `sp`/`r2` are reserved. At function exits (returns, tail
/// calls, unresolved indirect jumps) only the ABI registers are
/// treated as live — everything else is clobberable, which is what
/// makes per-function liveness a sound scratch-register oracle for
/// trampolines.
#[must_use]
pub fn live_in_at_blocks(func: &FuncCfg, arch: Arch) -> LivenessResult {
    let all: RegSet = if arch.gpr_count() >= 64 {
        u64::MAX
    } else {
        (1u64 << arch.gpr_count()) - 1
    };
    let abi_regs: RegSet = {
        let mut r = (1 << 8) | (1 << 9) | (1 << 10) | (1 << 11) | (1 << arch.sp().0);
        if let Some(toc) = arch.toc() {
            r |= 1 << toc.0;
        }
        r
    };
    let mut use_set: BTreeMap<u64, RegSet> = BTreeMap::new();
    let mut def_set: BTreeMap<u64, RegSet> = BTreeMap::new();
    let mut boundary_live: BTreeMap<u64, RegSet> = BTreeMap::new();
    for (start, block) in &func.blocks {
        let mut uses: RegSet = 0;
        let mut defs: RegSet = 0;
        for (_, (inst, _)) in func.insts.range(block.start..block.end) {
            for r in inst.use_regs() {
                if defs & (1 << r.0) == 0 {
                    uses |= 1 << r.0;
                }
            }
            if let Some(d) = inst.def_reg() {
                defs |= 1 << d.0;
            }
        }
        use_set.insert(*start, uses);
        def_set.insert(*start, defs);
        // Exit boundary: the ABI registers stay live across every exit
        // (returns, tail calls, calls into callees, unresolved
        // indirect jumps); the rest is clobberable under the
        // spill-around-calls ABI.
        let term = block
            .terminator
            .and_then(|t| func.insts.get(&t).map(|(i, _)| i.clone()));
        let escapes = match term {
            None => block.succs.is_empty(),
            Some(t) => {
                t.is_call()
                    || matches!(
                        t,
                        icfgp_isa::Inst::Ret
                            | icfgp_isa::Inst::JumpReg { .. }
                            | icfgp_isa::Inst::JumpTar
                            | icfgp_isa::Inst::JumpMem { .. }
                            | icfgp_isa::Inst::Halt
                            | icfgp_isa::Inst::Trap
                    )
                    || t.direct_offset().is_some_and(|off| {
                        // Direct branch leaving the function: tail call.
                        block.terminator.is_some_and(|ta| {
                            let target = ta.wrapping_add_signed(off);
                            target < func.start || target >= func.end
                        })
                    })
            }
        };
        boundary_live.insert(*start, if escapes { abi_regs } else { 0 });
    }

    let mut live_in: BTreeMap<u64, RegSet> = func.blocks.keys().map(|k| (*k, 0)).collect();
    // Iterate to fixpoint (monotone, bounded by bit count).
    loop {
        let mut changed = false;
        for (start, block) in func.blocks.iter().rev() {
            let mut out: RegSet = boundary_live[start];
            for e in &block.succs {
                out |= live_in.get(&e.target).copied().unwrap_or(all);
            }
            let new_in = use_set[start] | (out & !def_set[start]);
            let slot = live_in.get_mut(start).expect("block key");
            if *slot != new_in {
                *slot = new_in;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    LivenessResult { live_in, arch }
}

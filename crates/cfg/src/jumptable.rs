//! Jump-table analysis: backward slicing from indirect jumps.
//!
//! Recovers the three elements §5.1 names: the table start address,
//! the entry count, and the target expression `tar(x)` — here one of
//! [`TableKind`]'s three forms. The slice walks *backwards over the
//! instruction stream by address* (bounded), which reproduces the
//! linear imprecision real slicers have: complicated paths, spilled
//! values and unusual materialisations make the slice fail, and those
//! failures are first-class results the rewriter must handle.

use crate::analysis::AnalysisConfig;
use icfgp_isa::{AluOp, Cond, Inst, Reg};
use icfgp_obj::Binary;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The recovered target expression `tar(x)` of a jump table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableKind {
    /// `tar(x) = x` — absolute entries.
    Absolute,
    /// `tar(x) = table_base + x` — table-relative entries.
    Relative,
    /// `tar(x) = table_base + (x << 2)` — compact scaled entries
    /// (aarch64 byte/halfword tables).
    RelativeScaled,
}

impl TableKind {
    /// Evaluate `tar(x)`.
    #[must_use]
    pub fn target_of(self, entry: i64, table_base: u64) -> u64 {
        match self {
            TableKind::Absolute => entry as u64,
            TableKind::Relative => table_base.wrapping_add_signed(entry),
            TableKind::RelativeScaled => table_base.wrapping_add_signed(entry << 2),
        }
    }

    /// Solve `tar(x) = target` for the stored entry value — the
    /// equation jump-table *cloning* solves when filling the new table.
    #[must_use]
    pub fn entry_for(self, target: u64, table_base: u64) -> i64 {
        match self {
            TableKind::Absolute => target as i64,
            TableKind::Relative => target as i64 - table_base as i64,
            TableKind::RelativeScaled => (target as i64 - table_base as i64) >> 2,
        }
    }

    /// Whether entries are read sign-extended.
    #[must_use]
    pub fn signed(self) -> bool {
        !matches!(self, TableKind::Absolute)
    }
}

/// How a table's entry count was established — the evidence
/// provenance the soundness auditor (`icfgp-audit`) grades. The
/// lattice order of trust is `CmpDirect` > `CmpTracked` (weaker the
/// more indirection, catastrophically weaker with an alias hazard) >
/// `Extended` (no bound proof at all, over-approximated by
/// construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundEvidence {
    /// A `cmp`/unsigned-branch pair over the index register itself.
    CmpDirect,
    /// The bound check was connected through register copies and/or
    /// stack spill slots.
    CmpTracked {
        /// The def-use chain crossed a stack spill/reload pair.
        spilled: bool,
        /// A store the slicer cannot disambiguate sits between the
        /// spill and the reload it connected: the reloaded value may
        /// not be the spilled one (aliased slot), so the recovered
        /// bound may be wrong — the under-approximation hazard.
        alias_hazard: bool,
    },
    /// No bound check was connected; the count comes from table-end
    /// extension to the nearest known data boundary.
    Extended,
}

/// A resolved jump table.
#[derive(Debug, Clone, PartialEq, Hash, Serialize, Deserialize)]
pub struct JumpTableDesc {
    /// Address of the indirect jump instruction.
    pub jump_addr: u64,
    /// Table start address.
    pub table_addr: u64,
    /// Entry width in bytes.
    pub entry_width: u8,
    /// Target expression.
    pub kind: TableKind,
    /// Number of entries (possibly over-approximated).
    pub count: u64,
    /// Whether the count came from table-end extension rather than a
    /// recovered bound check (over-approximation possible).
    pub extended: bool,
    /// Evidence provenance of `count` (see [`BoundEvidence`]).
    pub bound: BoundEvidence,
    /// Addresses of the instructions that materialise the table base —
    /// the instructions cloning overwrites to reference the new table.
    pub base_insts: Vec<u64>,
    /// Address of the entry-load instruction (widened when cloning
    /// compact tables).
    pub load_addr: u64,
    /// The index register at the load.
    pub index_reg: Reg,
    /// Valid targets as (entry index, target address); garbage entries
    /// from over-approximation are omitted (and copied verbatim by
    /// cloning).
    pub targets: Vec<(u64, u64)>,
    /// Whether the table data lives inside `.text` (the ppc64le
    /// embedded idiom).
    pub in_text: bool,
}

/// Why the slice failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JtFail {
    /// The value flowing into the jump doesn't match any dispatch
    /// pattern.
    NoPattern,
    /// The table base could not be resolved to a constant.
    NoBase,
    /// The entry count could not be bounded (and extension is off).
    NoBound,
    /// Table memory could not be read.
    BadTableRead,
}

/// Everything the slicer needs about its surroundings.
pub(crate) struct SliceCtx<'a> {
    pub insts: &'a BTreeMap<u64, (Inst, u8)>,
    pub binary: &'a Binary,
    pub toc: Option<u64>,
    /// Known data-access boundaries (for table-end extension): other
    /// tables' starts plus every address the code is seen referencing.
    pub boundaries: &'a BTreeSet<u64>,
    pub config: &'a AnalysisConfig,
    pub func_range: (u64, u64),
}

impl<'a> SliceCtx<'a> {
    /// Find the defining instruction of `reg` strictly before `addr`,
    /// within the slice window.
    fn find_def(&self, reg: Reg, addr: u64) -> Option<(u64, &'a Inst)> {
        self.insts
            .range(..addr)
            .rev()
            .take(self.config.max_slice_insts)
            .find(|(_, (inst, _))| inst.def_reg() == Some(reg))
            .map(|(a, (inst, _))| (*a, inst))
    }

    /// Follow copies and (optionally) stack spill/reload chains to the
    /// canonical source of a register value: `(register, def site)`,
    /// with `None` when the value comes from outside the slice window.
    /// `flags` accumulates the evidence provenance of the chain.
    fn resolve_origin(
        &self,
        reg: Reg,
        addr: u64,
        depth: usize,
        flags: &mut OriginFlags,
    ) -> (Reg, Option<u64>) {
        if depth == 0 {
            return (reg, None);
        }
        let Some((def_addr, def)) = self.find_def(reg, addr) else {
            return (reg, None);
        };
        match def {
            Inst::MovReg { src, .. } => {
                flags.copied = true;
                self.resolve_origin(*src, def_addr, depth - 1, flags)
            }
            Inst::Load { addr: a, width, .. }
                if self.config.track_spills
                    && *width == icfgp_isa::Width::W8
                    && a.base == Some(self.binary.arch.sp())
                    && a.index.is_none() =>
            {
                // Reload from a spill slot: find the matching store.
                // Any intervening store the slicer cannot prove
                // disjoint from the slot is an alias hazard — the
                // connected store may not be the value's real source.
                flags.spilled = true;
                let slot = a.disp;
                let sp = self.binary.arch.sp();
                let mut store = None;
                for (sa, (inst, _)) in
                    self.insts.range(..def_addr).rev().take(self.config.max_slice_insts)
                {
                    let Inst::Store { src, addr: st, width } = inst else { continue };
                    if *width == icfgp_isa::Width::W8
                        && st.base == Some(sp)
                        && st.index.is_none()
                        && st.disp == slot
                    {
                        store = Some((*sa, *src));
                        break;
                    }
                    let provably_disjoint =
                        st.base == Some(sp) && st.index.is_none() && st.disp != slot;
                    if !provably_disjoint {
                        flags.alias_hazard = true;
                    }
                }
                match store {
                    Some((sa, src)) => self.resolve_origin(src, sa, depth - 1, flags),
                    None => (reg, Some(def_addr)),
                }
            }
            _ => (reg, Some(def_addr)),
        }
    }

    /// Resolve `reg` (as of `addr`) to a constant address, following
    /// the materialisation idioms of all three architectures.
    fn resolve_addr_const(&self, reg: Reg, addr: u64, depth: usize) -> Option<(u64, Vec<u64>)> {
        if depth == 0 {
            return None;
        }
        let (def_addr, def) = self.find_def(reg, addr)?;
        match def {
            Inst::Lea { addr: a, .. } if a.pc_rel => {
                Some((def_addr.wrapping_add_signed(a.disp), vec![def_addr]))
            }
            Inst::MovImm { imm, .. } => Some((*imm as u64, vec![def_addr])),
            Inst::AdrPage { page_delta, .. } => {
                Some(((def_addr & !0xFFF).wrapping_add_signed(page_delta << 12), vec![def_addr]))
            }
            Inst::AddShl16 { src, imm, .. } => {
                if Some(*src) == self.binary.arch.toc() {
                    let toc = self.toc?;
                    Some((toc.wrapping_add_signed(i64::from(*imm) << 16), vec![def_addr]))
                } else {
                    let (v, mut insts) = self.resolve_addr_const(*src, def_addr, depth - 1)?;
                    insts.push(def_addr);
                    Some((v.wrapping_add_signed(i64::from(*imm) << 16), insts))
                }
            }
            Inst::AddImm16 { src, imm, .. } => {
                let (v, mut insts) = self.resolve_addr_const(*src, def_addr, depth - 1)?;
                insts.push(def_addr);
                Some((v.wrapping_add_signed(i64::from(*imm)), insts))
            }
            Inst::AluImm { op: AluOp::Add, src, imm, .. } => {
                let (v, mut insts) = self.resolve_addr_const(*src, def_addr, depth - 1)?;
                insts.push(def_addr);
                Some((v.wrapping_add_signed(i64::from(*imm)), insts))
            }
            Inst::MovReg { src, .. } => {
                let (v, insts) = self.resolve_addr_const(*src, def_addr, depth - 1)?;
                Some((v, insts))
            }
            _ => None,
        }
    }

    /// Find the bound check guarding index register `idx`: a
    /// `cmp idx, N` + unsigned-above conditional before `jump_addr`.
    /// Returns the bound plus the evidence provenance of the
    /// connection.
    fn find_bound(&self, idx: Reg, jump_addr: u64) -> Option<(u64, BoundEvidence)> {
        let mut idx_flags = OriginFlags::default();
        let idx_origin = self.resolve_origin(idx, jump_addr, 8, &mut idx_flags);
        let mut saw_cond = false;
        for (addr, (inst, _)) in
            self.insts.range(..jump_addr).rev().take(self.config.max_slice_insts)
        {
            match inst {
                Inst::JumpCond { cond: Cond::UGt, .. } => saw_cond = true,
                Inst::JumpCond { cond: Cond::UGe, .. } => saw_cond = true,
                Inst::CmpImm { a, imm } if saw_cond => {
                    let mut flags = idx_flags;
                    let origin = self.resolve_origin(*a, *addr, 8, &mut flags);
                    if origin == idx_origin {
                        let evidence = if flags.copied || flags.spilled {
                            BoundEvidence::CmpTracked {
                                spilled: flags.spilled,
                                alias_hazard: flags.alias_hazard,
                            }
                        } else {
                            BoundEvidence::CmpDirect
                        };
                        return Some((*imm as u64 + 1, evidence));
                    }
                    // A bound check over an unrelated register: the
                    // slice cannot connect it; keep scanning.
                }
                _ => {}
            }
        }
        None
    }
}

/// Accumulated provenance of an origin-resolution chain.
#[derive(Debug, Default, Clone, Copy)]
struct OriginFlags {
    /// The chain crossed a register copy.
    copied: bool,
    /// The chain crossed a stack spill/reload pair.
    spilled: bool,
    /// A store the slicer cannot disambiguate sat between a spill and
    /// its connected reload.
    alias_hazard: bool,
}

/// Analyse the indirect jump at `jump_addr`.
pub(crate) fn analyze_jump(ctx: &SliceCtx<'_>, jump_addr: u64) -> Result<JumpTableDesc, JtFail> {
    let (jump_inst, _) = ctx.insts.get(&jump_addr).ok_or(JtFail::NoPattern)?;
    // x64 one-instruction dispatch: `jmp [base + idx*8]` or
    // `jmp [idx*8 + table]`. The "load" is the jump itself.
    if let Inst::JumpMem { addr } = jump_inst {
        if addr.pc_rel || addr.index.is_none() {
            return Err(JtFail::NoPattern);
        }
        let (table_base_part, base_insts) = match addr.base {
            Some(base) => {
                let (v, insts) = ctx
                    .resolve_addr_const(base, jump_addr, 6)
                    .ok_or(JtFail::NoBase)?;
                (v, insts)
            }
            // Absolute-displacement form: the table address is the
            // displacement itself; cloning rewrites the copied jump.
            None => (0, Vec::new()),
        };
        let table_addr = table_base_part.wrapping_add_signed(addr.disp);
        if ctx.binary.section_at(table_addr).is_none() {
            return Err(JtFail::NoBase);
        }
        let fake_load = Inst::Load {
            dst: Reg(0),
            addr: *addr,
            width: crate::jumptable::width_of_scale(addr.scale).ok_or(JtFail::NoPattern)?,
            sign: false,
        };
        return finish_table(
            ctx,
            jump_addr,
            jump_addr,
            &fake_load,
            base_insts,
            Some(TableKind::Absolute),
            Some(table_addr),
        );
    }
    // The register holding the final target.
    let value_reg = match jump_inst {
        Inst::JumpReg { src } => *src,
        Inst::JumpTar => {
            // Find the preceding mtspr tar.
            ctx.insts
                .range(..jump_addr)
                .rev()
                .take(8)
                .find_map(|(_, (inst, _))| match inst {
                    Inst::MoveToTar { src } => Some(*src),
                    _ => None,
                })
                .ok_or(JtFail::NoPattern)?
        }
        _ => return Err(JtFail::NoPattern),
    };

    // Resolve the value: either a direct table load (absolute) or
    // base + loaded-delta (relative / scaled).
    let (vdef_addr, vdef) = ctx.find_def(value_reg, jump_addr).ok_or(JtFail::NoPattern)?;
    #[allow(unused_assignments)]
    let (load_addr, load, mut base_insts, kind_hint) = match vdef {
        Inst::Load { .. } => (vdef_addr, vdef.clone(), Vec::new(), None),
        Inst::Alu { op: AluOp::Add, a, b, .. } => {
            // One side is the loaded delta (possibly shifted), the
            // other the table base.
            let resolve_side = |entry: Reg, base: Reg| -> Option<(u64, Inst, Vec<u64>, bool)> {
                let (edef_addr, edef) = ctx.find_def(entry, vdef_addr)?;
                let (edef_addr, edef, scaled) = match edef {
                    Inst::AluImm { op: AluOp::Shl, src, imm: 2, .. } => {
                        let (ld_addr, ld) = ctx.find_def(*src, edef_addr)?;
                        (ld_addr, ld, true)
                    }
                    _ => (edef_addr, edef, false),
                };
                if !matches!(edef, Inst::Load { .. }) {
                    return None;
                }
                let (_, base_set) = ctx.resolve_addr_const(base, vdef_addr, 6)?;
                Some((edef_addr, edef.clone(), base_set, scaled))
            };
            let (la, ld, bi, scaled) = resolve_side(*a, *b)
                .or_else(|| resolve_side(*b, *a))
                .ok_or(JtFail::NoPattern)?;
            let kind =
                if scaled { Some(TableKind::RelativeScaled) } else { Some(TableKind::Relative) };
            (la, ld, bi, kind)
        }
        _ => return Err(JtFail::NoPattern),
    };

    let Inst::Load { addr: laddr, .. } = &load else {
        return Err(JtFail::NoPattern);
    };
    let base_reg = laddr.base.ok_or(JtFail::NoPattern)?;
    // Table base: resolved through the base register.
    let (table_addr, base_set) =
        ctx.resolve_addr_const(base_reg, load_addr, 6).ok_or(JtFail::NoBase)?;
    base_insts = base_set;
    finish_table(ctx, jump_addr, load_addr, &load, base_insts, kind_hint, Some(table_addr))
}

/// Entry width for an index scale.
pub(crate) fn width_of_scale(scale: u8) -> Option<icfgp_isa::Width> {
    icfgp_isa::Width::from_log2(scale.checked_ilog2().unwrap_or(0) as u8)
        .filter(|w| w.bytes() == u64::from(scale))
}

/// Shared tail: bound inference, entry reading, target validation.
#[allow(clippy::too_many_arguments)]
fn finish_table(
    ctx: &SliceCtx<'_>,
    jump_addr: u64,
    load_addr: u64,
    load: &Inst,
    base_insts: Vec<u64>,
    kind_hint: Option<TableKind>,
    table_addr_hint: Option<u64>,
) -> Result<JumpTableDesc, JtFail> {
    let Inst::Load { addr: laddr, width, .. } = load else {
        return Err(JtFail::NoPattern);
    };
    let index_reg = laddr.index.ok_or(JtFail::NoPattern)?;
    let entry_width = laddr.scale;
    if u64::from(entry_width) != width.bytes() {
        return Err(JtFail::NoPattern);
    }
    let table_addr = table_addr_hint.ok_or(JtFail::NoBase)?;
    let kind = kind_hint.unwrap_or(TableKind::Absolute);

    // Entry count: recovered bound check, else table-end extension.
    let (count, extended, bound) = match ctx.find_bound(index_reg, jump_addr) {
        Some((n, evidence)) => (n.min(ctx.config.max_table_entries), false, evidence),
        None if ctx.config.table_end_extension => {
            let next = ctx
                .boundaries
                .range(table_addr + 1..)
                .next()
                .copied()
                .unwrap_or(table_addr + ctx.config.max_table_entries * u64::from(entry_width));
            let n = (next.saturating_sub(table_addr)) / u64::from(entry_width);
            if n == 0 {
                return Err(JtFail::NoBound);
            }
            (n.min(ctx.config.max_table_entries), true, BoundEvidence::Extended)
        }
        None => return Err(JtFail::NoBound),
    };

    // Read entries and validate targets.
    let mut targets = Vec::new();
    for i in 0..count {
        let entry_addr = table_addr + i * u64::from(entry_width);
        let Ok(bytes) = ctx.binary.read(entry_addr, entry_width as usize) else {
            if extended {
                break; // extension overran the section: trim
            }
            return Err(JtFail::BadTableRead);
        };
        let mut buf = [0u8; 8];
        buf[..entry_width as usize].copy_from_slice(bytes);
        let mut v = u64::from_le_bytes(buf) as i64;
        if kind.signed() && entry_width < 8 {
            let shift = 64 - u32::from(entry_width) * 8;
            v = (v << shift) >> shift;
        }
        let target = kind.target_of(v, table_addr);
        let (fs, fe) = ctx.func_range;
        let aligned = target.is_multiple_of(ctx.binary.arch.inst_align());
        if target >= fs && target < fe && aligned {
            targets.push((i, target));
        }
        // Entries that do not decode to in-function targets are
        // over-approximation garbage: remembered as absent so cloning
        // copies them verbatim.
    }
    if targets.is_empty() {
        return Err(JtFail::NoPattern);
    }

    let in_text = ctx
        .binary
        .section_at(table_addr)
        .is_some_and(|s| s.flags().exec);

    Ok(JumpTableDesc {
        jump_addr,
        table_addr,
        entry_width,
        kind,
        count,
        extended,
        bound,
        base_insts,
        load_addr,
        index_reg,
        targets,
        in_text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_kind_solver_roundtrip() {
        for kind in [TableKind::Absolute, TableKind::Relative, TableKind::RelativeScaled] {
            let base = 0x5000;
            let target = 0x4100;
            let x = kind.entry_for(target, base);
            assert_eq!(kind.target_of(x, base), target, "{kind:?}");
        }
    }

    #[test]
    fn signedness() {
        assert!(!TableKind::Absolute.signed());
        assert!(TableKind::Relative.signed());
        assert!(TableKind::RelativeScaled.signed());
    }
}

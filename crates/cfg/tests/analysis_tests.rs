//! Integration tests: run the analyses over binaries assembled with
//! the canonical compiler patterns, on all three architectures.

use icfgp_asm::patterns::{
    emit_indirect_call, emit_indirect_tailcall, emit_switch, switch_table_item, SwitchHardness,
    SwitchSpec,
};
use icfgp_asm::{epilogue, prologue, BinaryBuilder, DataItem, EntryKind, FuncDef, Item, RefTarget};
use icfgp_cfg::{
    analyze, AnalysisConfig, AnalysisFailure, EdgeKind, FpDefSite, FuncStatus, InjectedFault,
    TableKind,
};
use icfgp_isa::{AluOp, Arch, Cond, Inst, Reg, SysOp};
use icfgp_obj::{Binary, Language};

fn out(reg: u8) -> Item {
    Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(reg) })
}

fn movi(reg: u8, v: i64) -> Item {
    Item::I(Inst::MovImm { dst: Reg(reg), imm: v })
}

/// A function with a 4-case switch using the given table shape.
fn switch_func(
    arch: Arch,
    name: &str,
    hardness: SwitchHardness,
    entry_width: u8,
    kind: EntryKind,
    inline: bool,
) -> (FuncDef, Option<DataItem>) {
    let cases = 4;
    let mut items = prologue(arch, 32, true);
    let spec = SwitchSpec {
        idx_reg: Reg(8),
        table_name: format!("{name}_jt"),
        case_labels: (0..cases).map(|i| format!("case{i}")).collect(),
        default_label: "default".to_string(),
        entry_width,
        kind,
        inline,
        hardness,
        spill_slot: 8,
        scratch: (Reg(9), Reg(10)),
        mem_indirect: false,
    };
    emit_switch(&mut items, arch, &spec);
    for i in 0..cases {
        items.push(Item::Label(format!("case{i}")));
        items.push(movi(8, 100 + i as i64));
        items.push(out(8));
        items.push(Item::JmpL("end".to_string()));
    }
    items.push(Item::Label("default".to_string()));
    items.push(movi(8, 0));
    items.push(out(8));
    items.push(Item::Label("end".to_string()));
    items.extend(epilogue(arch, 32, true));
    let table = (!inline).then(|| switch_table_item(name, &spec));
    (FuncDef::new(name, Language::C, items), table)
}

fn build_with_switch(
    arch: Arch,
    pie: bool,
    hardness: SwitchHardness,
    entry_width: u8,
    kind: EntryKind,
    inline: bool,
) -> Binary {
    let mut b = BinaryBuilder::new(arch);
    b.pie(pie);
    let (f, table) = switch_func(arch, "dispatch", hardness, entry_width, kind, inline);
    b.add_function(f);
    if let Some(t) = table {
        b.push_rodata(Some("dispatch_jt"), t);
        // A known data object right after the table bounds extension.
        b.push_rodata(Some("after_jt"), DataItem::Bytes(vec![0; 16]));
    }
    let mut main = prologue(arch, 16, false);
    main.push(movi(8, 2));
    main.push(Item::CallF("dispatch".to_string()));
    main.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", Language::C, main));
    b.set_entry("main");
    b.build().expect("builds")
}

#[test]
fn easy_switch_resolves_on_all_arches() {
    for arch in Arch::ALL {
        // ppc64le uses inline 8-byte absolute tables; x64 rodata
        // absolute; aarch64 rodata 4-byte relative.
        let (width, kind, inline) = match arch {
            Arch::X64 => (8, EntryKind::Absolute, false),
            Arch::Ppc64le => (8, EntryKind::Absolute, true),
            Arch::Aarch64 => (4, EntryKind::Relative, false),
        };
        let bin = build_with_switch(arch, false, SwitchHardness::Easy, width, kind, inline);
        let a = analyze(&bin, &AnalysisConfig::default());
        let f = &a.funcs[&bin.function_named("dispatch").unwrap().addr];
        assert_eq!(f.status, FuncStatus::Ok, "{arch}");
        assert_eq!(f.jump_tables.len(), 1, "{arch}");
        let jt = &f.jump_tables[0];
        assert_eq!(jt.count, 4, "{arch}: exact bound recovered");
        assert!(!jt.extended, "{arch}");
        assert_eq!(jt.targets.len(), 4, "{arch}");
        assert_eq!(jt.in_text, inline, "{arch}");
        match (arch, jt.kind) {
            (Arch::X64 | Arch::Ppc64le, TableKind::Absolute) => {}
            (Arch::Aarch64, TableKind::Relative) => {}
            other => panic!("unexpected kind {other:?}"),
        }
        // The jump's block has 4 jump-table successors.
        let jb = f.block_at(jt.jump_addr).unwrap();
        assert_eq!(
            jb.succs.iter().filter(|e| e.kind == EdgeKind::JumpTable).count(),
            4,
            "{arch}"
        );
        assert!((a.coverage() - 1.0).abs() < 1e-9);
    }
}

#[test]
fn compact_scaled_table_resolves_on_aarch64() {
    let bin = build_with_switch(
        Arch::Aarch64,
        true,
        SwitchHardness::Easy,
        1,
        EntryKind::RelativeScaled,
        true,
    );
    let a = analyze(&bin, &AnalysisConfig::default());
    let f = &a.funcs[&bin.function_named("dispatch").unwrap().addr];
    assert_eq!(f.status, FuncStatus::Ok);
    let jt = &f.jump_tables[0];
    assert_eq!(jt.kind, TableKind::RelativeScaled);
    assert_eq!(jt.entry_width, 1);
    assert_eq!(jt.targets.len(), 4);
}

#[test]
fn copied_bound_needs_copy_tracking() {
    for arch in Arch::ALL {
        let bin =
            build_with_switch(arch, false, SwitchHardness::CopiedBound, 8, EntryKind::Absolute, false);
        let a = analyze(&bin, &AnalysisConfig::default());
        let f = &a.funcs[&bin.function_named("dispatch").unwrap().addr];
        assert_eq!(f.status, FuncStatus::Ok, "{arch}");
        assert_eq!(f.jump_tables[0].count, 4, "{arch}: bound via copy chain");
        assert!(!f.jump_tables[0].extended, "{arch}");
    }
}

#[test]
fn spilled_index_bound_needs_spill_tracking() {
    let arch = Arch::X64;
    let bin =
        build_with_switch(arch, false, SwitchHardness::SpilledIndex, 8, EntryKind::Absolute, false);
    // Modern analysis: exact bound.
    let a = analyze(&bin, &AnalysisConfig::default());
    let f = &a.funcs[&bin.function_named("dispatch").unwrap().addr];
    assert_eq!(f.status, FuncStatus::Ok);
    let jt = &f.jump_tables[0];
    assert_eq!((jt.count, jt.extended), (4, false), "spill tracking finds the bound");

    // SRBI analysis: no spill tracking, no extension -> the function
    // is reported failed (coverage loss, the Table 3 story).
    let a2 = analyze(&bin, &AnalysisConfig::srbi());
    let f2 = &a2.funcs[&bin.function_named("dispatch").unwrap().addr];
    assert!(matches!(
        f2.status,
        FuncStatus::Failed(AnalysisFailure::JumpTableUnresolved { .. })
    ));
    assert!(a2.coverage() < 1.0);

    // Our analysis with spill tracking off but extension on: the table
    // is over-approximated up to the next data boundary — safe.
    let cfg3 = AnalysisConfig { track_spills: false, ..AnalysisConfig::default() };
    let a3 = analyze(&bin, &cfg3);
    let f3 = &a3.funcs[&bin.function_named("dispatch").unwrap().addr];
    assert_eq!(f3.status, FuncStatus::Ok);
    let jt3 = &f3.jump_tables[0];
    assert!(jt3.extended);
    assert!(jt3.count >= 4, "extension must not under-approximate");
    assert!(jt3.targets.len() >= 4);
}

#[test]
fn unanalyzable_base_fails_function() {
    let bin =
        build_with_switch(Arch::X64, false, SwitchHardness::Unanalyzable, 8, EntryKind::Absolute, false);
    let a = analyze(&bin, &AnalysisConfig::default());
    let f = &a.funcs[&bin.function_named("dispatch").unwrap().addr];
    assert!(
        matches!(f.status, FuncStatus::Failed(AnalysisFailure::JumpTableUnresolved { .. })),
        "{:?}",
        f.status
    );
    // Other functions are unaffected (the §4.3 isolation property).
    let main = &a.funcs[&bin.function_named("main").unwrap().addr];
    assert_eq!(main.status, FuncStatus::Ok);
}

#[test]
fn indirect_tailcall_rescued_by_gap_heuristic() {
    for arch in Arch::ALL {
        let mut b = BinaryBuilder::new(arch);
        // A frameless function ending in an indirect tail call: the
        // teardown heuristic misses it (no frame), the gap heuristic
        // accepts it (no gaps).
        let mut items = vec![movi(8, 1), out(8)];
        emit_indirect_tailcall(&mut items, arch, "fp_slot", (Reg(9), Reg(10)));
        b.add_function(FuncDef::new("hop", Language::C, items));
        let mut tgt = vec![movi(8, 7), out(8)];
        tgt.extend(epilogue(arch, 0, true));
        b.add_function(FuncDef::new("target", Language::C, tgt));
        b.push_data(
            Some("fp_slot"),
            DataItem::Addr { target: RefTarget::Func("target".into()), delta: 0 },
        );
        let mut main = prologue(arch, 16, false);
        main.push(Item::CallF("hop".into()));
        main.push(Item::I(Inst::Halt));
        b.add_function(FuncDef::new("main", Language::C, main));
        b.set_entry("main");
        let bin = b.build().unwrap();

        let ours = analyze(&bin, &AnalysisConfig::default());
        let f = &ours.funcs[&bin.function_named("hop").unwrap().addr];
        assert_eq!(f.status, FuncStatus::Ok, "{arch}: gap heuristic rescues");
        assert_eq!(f.indirect_tailcalls.len(), 1, "{arch}");

        let srbi = analyze(&bin, &AnalysisConfig::srbi());
        let f2 = &srbi.funcs[&bin.function_named("hop").unwrap().addr];
        assert!(
            matches!(f2.status, FuncStatus::Failed(_)),
            "{arch}: teardown heuristic misses frameless tail calls"
        );
    }
}

#[test]
fn teardown_heuristic_accepts_framed_tailcall() {
    let arch = Arch::X64;
    let mut b = BinaryBuilder::new(arch);
    let mut items = prologue(arch, 32, true);
    items.push(movi(8, 1));
    // Tear the frame down, then tail call.
    items.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(4), src: Reg(4), imm: 32 }));
    emit_indirect_tailcall(&mut items, arch, "fp_slot", (Reg(9), Reg(10)));
    b.add_function(FuncDef::new("hop", Language::C, items));
    let mut tgt = vec![movi(8, 7), out(8)];
    tgt.extend(epilogue(arch, 0, true));
    b.add_function(FuncDef::new("target", Language::C, tgt));
    b.push_data(
        Some("fp_slot"),
        DataItem::Addr { target: RefTarget::Func("target".into()), delta: 0 },
    );
    let mut main = prologue(arch, 16, false);
    main.push(Item::CallF("hop".into()));
    main.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", Language::C, main));
    b.set_entry("main");
    let bin = b.build().unwrap();
    let srbi = analyze(&bin, &AnalysisConfig::srbi());
    let f = &srbi.funcs[&bin.function_named("hop").unwrap().addr];
    assert_eq!(f.status, FuncStatus::Ok, "teardown heuristic applies");
    assert_eq!(f.indirect_tailcalls.len(), 1);
}

#[test]
fn function_pointers_found_via_relocations_in_pie() {
    for arch in Arch::ALL {
        let mut b = BinaryBuilder::new(arch);
        b.pie(true);
        let mut main = prologue(arch, 16, false);
        emit_indirect_call(&mut main, arch, "fp_slot", (Reg(9), Reg(10)));
        main.push(Item::I(Inst::Halt));
        b.add_function(FuncDef::new("main", Language::C, main));
        let mut tgt = vec![movi(8, 7), out(8)];
        tgt.extend(epilogue(arch, 0, true));
        b.add_function(FuncDef::new("target", Language::C, tgt));
        b.push_data(
            Some("fp_slot"),
            DataItem::Addr { target: RefTarget::Func("target".into()), delta: 0 },
        );
        b.set_entry("main");
        let bin = b.build().unwrap();
        let a = analyze(&bin, &AnalysisConfig::default());
        let target = bin.function_named("target").unwrap().addr;
        let slot_defs: Vec<_> = a
            .fp_defs
            .iter()
            .filter(|d| matches!(d.site, FpDefSite::DataSlot { .. }) && d.target_fn == target)
            .collect();
        assert_eq!(slot_defs.len(), 1, "{arch}");
        assert_eq!(slot_defs[0].delta, 0, "{arch}");
        let main_cfg = &a.funcs[&bin.entry];
        assert!(main_cfg.has_indirect_calls, "{arch}");
    }
}

#[test]
fn goexit_plus_one_delta_is_tracked() {
    // Listing 1: load a relocated pointer, increment, store.
    let arch = Arch::X64;
    let mut b = BinaryBuilder::new(arch);
    b.pie(true);
    let mut main = prologue(arch, 32, false);
    main.push(Item::LoadFrom {
        dst: Reg(9),
        target: RefTarget::Data("fp_slot".into()),
        offset: 0,
        width: icfgp_isa::Width::W8,
        sign: false,
        tmp: Reg(10),
    });
    main.push(Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(9), src: Reg(9), imm: 1 }));
    main.push(Item::StoreTo {
        src: Reg(9),
        target: RefTarget::Data("vtab".into()),
        offset: 0,
        width: icfgp_isa::Width::W8,
        tmp: Reg(10),
    });
    main.push(Item::I(Inst::Halt));
    b.add_function(FuncDef::new("main", Language::Go, main));
    b.add_function(FuncDef::new(
        "goexit",
        Language::Go,
        vec![Item::I(Inst::Nop), Item::I(Inst::Halt)],
    ));
    b.push_data(
        Some("fp_slot"),
        DataItem::Addr { target: RefTarget::Func("goexit".into()), delta: 0 },
    );
    b.push_data(Some("vtab"), DataItem::Zeros(8));
    b.set_entry("main");
    let bin = b.build().unwrap();

    let a = analyze(&bin, &AnalysisConfig::default());
    let goexit = bin.function_named("goexit").unwrap().addr;
    let def = a
        .fp_defs
        .iter()
        .find(|d| matches!(d.site, FpDefSite::DataSlot { .. }) && d.target_fn == goexit)
        .expect("slot def found");
    assert_eq!(def.delta, 1, "forward slicing recovers the +1");

    // Without arithmetic tracking the delta is invisible.
    let naive = AnalysisConfig { funcptr_arith_tracking: false, ..AnalysisConfig::default() };
    let a2 = analyze(&bin, &naive);
    let def2 = a2
        .fp_defs
        .iter()
        .find(|d| matches!(d.site, FpDefSite::DataSlot { .. }) && d.target_fn == goexit)
        .unwrap();
    assert_eq!(def2.delta, 0);
}

#[test]
fn injected_faults_shape_the_cfg() {
    let arch = Arch::X64;
    let bin = build_with_switch(arch, false, SwitchHardness::Easy, 8, EntryKind::Absolute, false);
    let dispatch = bin.function_named("dispatch").unwrap().addr;
    let base = analyze(&bin, &AnalysisConfig::default());
    let jump_addr = base.funcs[&dispatch].jump_tables[0].jump_addr;

    // Reporting failure: function skipped, others fine.
    let c1 = AnalysisConfig {
        inject: vec![InjectedFault::FailFunction { entry: dispatch }],
        ..AnalysisConfig::default()
    };
    let a1 = analyze(&bin, &c1);
    assert!(matches!(a1.funcs[&dispatch].status, FuncStatus::Failed(AnalysisFailure::Injected)));
    assert!(a1.coverage() < 1.0);

    // Under-approximation: edges go missing.
    let c2 = AnalysisConfig {
        inject: vec![InjectedFault::UnderApproximateTable { jump_addr, drop: 2 }],
        ..AnalysisConfig::default()
    };
    let a2 = analyze(&bin, &c2);
    assert_eq!(a2.funcs[&dispatch].jump_tables[0].targets.len(), 2);

    // Over-approximation: extra infeasible edges appear.
    let c3 = AnalysisConfig {
        inject: vec![InjectedFault::OverApproximateTable { jump_addr, extra: 3 }],
        ..AnalysisConfig::default()
    };
    let a3 = analyze(&bin, &c3);
    assert_eq!(a3.funcs[&dispatch].jump_tables[0].targets.len(), 7);
}

#[test]
fn liveness_finds_scratch_registers() {
    let arch = Arch::Aarch64;
    let mut b = BinaryBuilder::new(arch);
    let mut items = vec![
        movi(8, 1),
        Item::Label("top".into()),
        Item::I(Inst::AluImm { op: AluOp::Add, dst: Reg(8), src: Reg(8), imm: 1 }),
        Item::I(Inst::CmpImm { a: Reg(8), imm: 10 }),
        Item::JccL(Cond::Lt, "top".into()),
        out(8),
    ];
    items.extend(epilogue(arch, 0, true));
    b.add_function(FuncDef::new("f", Language::C, items));
    b.set_entry("f");
    let bin = b.build().unwrap();
    let a = analyze(&bin, &AnalysisConfig::default());
    let f = &a.funcs[&bin.entry];
    let live = icfgp_cfg::live_in_at_blocks(f, arch);
    // r8 is live at the loop head; some other register is free.
    let loop_head = f
        .blocks
        .keys()
        .copied()
        .find(|s| {
            f.blocks[s]
                .succs
                .iter()
                .any(|e| e.kind == EdgeKind::CondTaken || e.kind == EdgeKind::Branch)
        })
        .expect("loop block");
    assert!(live.is_live_in(f.entry, Reg(8)) || !live.is_live_in(loop_head, Reg(20)));
    let scratch = live.scratch_reg_at(f.entry).expect("a dead register exists");
    assert_ne!(scratch, arch.sp());
    assert_ne!(scratch, Reg(8));
}

#[test]
fn call_sites_and_tail_calls_recorded() {
    let arch = Arch::X64;
    let mut b = BinaryBuilder::new(arch);
    let mut main = prologue(arch, 16, false);
    main.push(Item::CallF("callee".into()));
    main.push(Item::TailJmpF("callee".into()));
    b.add_function(FuncDef::new("main", Language::C, main));
    b.add_function(FuncDef::new("callee", Language::C, vec![Item::I(Inst::Halt)]));
    b.set_entry("main");
    let bin = b.build().unwrap();
    let a = analyze(&bin, &AnalysisConfig::default());
    let f = &a.funcs[&bin.entry];
    let callee = bin.function_named("callee").unwrap().addr;
    assert_eq!(f.call_sites.len(), 1);
    assert_eq!(f.call_sites[0].2, Some(callee));
    assert_eq!(f.tail_calls.len(), 1);
    assert_eq!(f.tail_calls[0].1, callee);
}

#[test]
fn landing_pads_are_block_leaders() {
    let arch = Arch::X64;
    let mut b = BinaryBuilder::new(arch);
    let mut c = prologue(arch, 32, false);
    c.push(Item::Label("try_s".into()));
    c.push(Item::CallF("thrower".into()));
    c.push(Item::Label("try_e".into()));
    c.extend(epilogue(arch, 32, false));
    c.push(Item::Label("landing".into()));
    c.push(out(8));
    c.extend(epilogue(arch, 32, false));
    b.add_function(
        FuncDef::new("catcher", Language::Cpp, c).with_unwind(icfgp_asm::UnwindSpec {
            frame_size: 32,
            ra: None,
            call_sites: vec![("try_s".into(), "try_e".into(), "landing".into())],
        }),
    );
    b.add_function(FuncDef::new("thrower", Language::Cpp, vec![Item::I(Inst::Ret)]));
    b.set_entry("catcher");
    let bin = b.build().unwrap();
    let a = analyze(&bin, &AnalysisConfig::default());
    let f = &a.funcs[&bin.entry];
    assert_eq!(f.landing_pads.len(), 1);
    let lp = f.landing_pads[0];
    assert!(f.block_starting_at(lp).is_some(), "landing pad starts a block");
}

//! Structural CFG invariants: blocks partition the decoded
//! instructions, edges land on block starts, and block splitting
//! behaves.

use icfgp_cfg::{analyze, AnalysisConfig, FuncStatus};
use icfgp_isa::Arch;
use icfgp_workloads::{generate, spec_params, GenParams};
use proptest::prelude::*;

fn check_invariants(binary: &icfgp_obj::Binary) {
    let a = analyze(binary, &AnalysisConfig::default());
    for func in a.funcs.values() {
        // 1. Blocks are sorted, non-overlapping, and instruction-aligned.
        let blocks: Vec<_> = func.blocks.values().collect();
        for w in blocks.windows(2) {
            assert!(w[0].end <= w[1].start, "{}: blocks overlap", func.name);
        }
        for b in &blocks {
            assert!(b.start < b.end, "{}: empty block", func.name);
            assert!(
                func.insts.contains_key(&b.start),
                "{}: block start {:#x} is not an instruction",
                func.name,
                b.start
            );
        }
        // 2. Every decoded instruction belongs to exactly one block.
        for (addr, (_, len)) in &func.insts {
            let covering = blocks
                .iter()
                .filter(|b| *addr >= b.start && addr + u64::from(*len) <= b.end)
                .count();
            assert_eq!(
                covering, 1,
                "{}: instruction {:#x} covered by {covering} blocks",
                func.name, addr
            );
        }
        // 3. Every intra edge targets a block start.
        for b in func.blocks.values() {
            for e in &b.succs {
                assert!(
                    func.blocks.contains_key(&e.target),
                    "{}: edge from {:#x} to non-block {:#x}",
                    func.name,
                    b.start,
                    e.target
                );
            }
        }
        // 4. An Ok function's entry is a block.
        if func.status == FuncStatus::Ok {
            assert!(func.blocks.contains_key(&func.entry), "{}", func.name);
        }
        // 5. Jump-table targets are block starts.
        for jt in &func.jump_tables {
            for (_, t) in &jt.targets {
                assert!(
                    func.blocks.contains_key(t),
                    "{}: table target {:#x} is not a block",
                    func.name,
                    t
                );
            }
        }
    }
}

#[test]
fn invariants_hold_for_the_spec_suite() {
    for arch in Arch::ALL {
        for bench in icfgp_workloads::spec_suite(arch, false).iter().take(6) {
            check_invariants(&bench.workload.binary);
        }
    }
}

#[test]
fn invariants_hold_for_go_and_driver_binaries() {
    check_invariants(&icfgp_workloads::docker_like(Arch::X64, 1, 10).binary);
    let (w, _) = icfgp_workloads::driverlib_like(Arch::Aarch64, 200, 20);
    check_invariants(&w.binary);
}

#[test]
fn invariants_hold_for_pie_suite() {
    let p = spec_params("602.gcc_s", Arch::X64, true);
    check_invariants(&generate(&p).binary);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn invariants_hold_for_random_workloads(seed in 0u64..10_000,
                                            arch in prop_oneof![
                                                Just(Arch::X64),
                                                Just(Arch::Ppc64le),
                                                Just(Arch::Aarch64)
                                            ]) {
        let mut p = GenParams::small("prop", arch, seed);
        p.switch_funcs = 3;
        p.fnptr_tables = 2;
        p.exceptions = seed % 2 == 0;
        check_invariants(&generate(&p).binary);
    }
}

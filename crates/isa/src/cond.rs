//! Branch condition codes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Condition codes evaluated against the last `cmp` result.
///
/// The comparison instructions record their two operands; a conditional
/// branch then evaluates one of these predicates over them. Signed and
/// unsigned orderings are distinguished because jump-table bound checks
/// compile to *unsigned* comparisons (`ja` on x86-64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    ULt,
    /// Unsigned below-or-equal.
    ULe,
    /// Unsigned above.
    UGt,
    /// Unsigned above-or-equal.
    UGe,
}

impl Cond {
    /// All condition codes, in encoding order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::ULt,
        Cond::ULe,
        Cond::UGt,
        Cond::UGe,
    ];

    /// Encoding value (fits in 4 bits).
    #[must_use]
    pub fn code(self) -> u8 {
        Cond::ALL.iter().position(|c| *c == self).unwrap_or(0) as u8
    }

    /// Decode a 4-bit condition code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Cond> {
        Cond::ALL.get(code as usize).copied()
    }

    /// Evaluate the predicate over the recorded comparison operands.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::ULt => (a as u64) < (b as u64),
            Cond::ULe => (a as u64) <= (b as u64),
            Cond::UGt => (a as u64) > (b as u64),
            Cond::UGe => (a as u64) >= (b as u64),
        }
    }

    /// The negated predicate (`!cond.eval(a, b) == cond.invert().eval(a, b)`).
    #[must_use]
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::ULt => Cond::UGe,
            Cond::ULe => Cond::UGt,
            Cond::UGt => Cond::ULe,
            Cond::UGe => Cond::ULt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::ULt => "ult",
            Cond::ULe => "ule",
            Cond::UGt => "ugt",
            Cond::UGe => "uge",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(10), None);
    }

    #[test]
    fn unsigned_vs_signed() {
        // -1 as u64 is the largest value: unsigned-above but signed-less.
        assert!(Cond::UGt.eval(-1, 5));
        assert!(!Cond::Gt.eval(-1, 5));
        assert!(Cond::Lt.eval(-1, 5));
    }

    #[test]
    fn invert_is_complement() {
        let pairs = [(-3i64, 7i64), (7, -3), (5, 5), (0, i64::MIN), (i64::MAX, 1)];
        for c in Cond::ALL {
            for (a, b) in pairs {
                assert_eq!(c.eval(a, b), !c.invert().eval(a, b), "{c} over ({a},{b})");
            }
        }
    }
}

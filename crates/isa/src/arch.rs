//! Architecture descriptors and the Table 2 branch-reach parameters.

use crate::inst::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three target architectures of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Variable-length CISC model of x86-64.
    X64,
    /// Fixed 4-byte RISC model of little-endian POWER; indirect branches
    /// go through the `tar` special register, and `r2` is the TOC base.
    Ppc64le,
    /// Fixed 4-byte RISC model of AArch64 with `adrp`-style page
    /// addressing and register-indirect branches.
    Aarch64,
}

impl Arch {
    /// All architectures, in the order the paper's tables list them.
    pub const ALL: [Arch; 3] = [Arch::X64, Arch::Ppc64le, Arch::Aarch64];

    /// Number of general-purpose registers in the register file.
    #[must_use]
    pub fn gpr_count(self) -> u8 {
        match self {
            Arch::X64 => 16,
            Arch::Ppc64le | Arch::Aarch64 => 32,
        }
    }

    /// The stack-pointer register under this model's ABI.
    #[must_use]
    pub fn sp(self) -> Reg {
        match self {
            Arch::X64 => Reg(4),
            Arch::Ppc64le | Arch::Aarch64 => Reg(1),
        }
    }

    /// The TOC base register (`r2`) on ppc64le; `None` elsewhere.
    #[must_use]
    pub fn toc(self) -> Option<Reg> {
        match self {
            Arch::Ppc64le => Some(Reg(2)),
            _ => None,
        }
    }

    /// Whether instructions are fixed-size 4-byte words.
    #[must_use]
    pub fn is_fixed_width(self) -> bool {
        !matches!(self, Arch::X64)
    }

    /// Instruction alignment requirement in bytes.
    #[must_use]
    pub fn inst_align(self) -> u64 {
        if self.is_fixed_width() {
            4
        } else {
            1
        }
    }

    /// Longest possible instruction in bytes.
    #[must_use]
    pub fn max_inst_len(self) -> usize {
        match self {
            Arch::X64 => 10,
            Arch::Ppc64le | Arch::Aarch64 => 4,
        }
    }

    /// Whether the architecture has a link register (calls store the
    /// return address in `lr` instead of pushing it on the stack).
    #[must_use]
    pub fn has_link_register(self) -> bool {
        self.is_fixed_width()
    }

    /// Whether register-indirect jumps (`br reg` / `jmp reg`) exist.
    /// On ppc64le indirect control flow must go through `tar`/`ctr`.
    #[must_use]
    pub fn has_reg_indirect_branch(self) -> bool {
        !matches!(self, Arch::Ppc64le)
    }

    /// Reach of the *short* trampoline branch, in bytes (± this value).
    ///
    /// Table 2: 128 B on x64 (2-byte branch), 32 MB on ppc64le (`b`),
    /// 128 MB on aarch64 (`b`).
    #[must_use]
    pub fn short_branch_reach(self) -> i64 {
        match self {
            Arch::X64 => 128,
            Arch::Ppc64le => 32 << 20,
            Arch::Aarch64 => 128 << 20,
        }
    }

    /// Size of the short trampoline branch in bytes.
    #[must_use]
    pub fn short_branch_len(self) -> usize {
        match self {
            Arch::X64 => 2,
            Arch::Ppc64le | Arch::Aarch64 => 4,
        }
    }

    /// Reach of the *long* trampoline sequence, in bytes (± this value).
    ///
    /// Table 2: 2 GB on x64 (5-byte near branch), 2 GB on ppc64le
    /// (`addis/addi/mtspr tar/bctar`), 4 GB on aarch64 (`adrp/add/br`).
    #[must_use]
    pub fn long_branch_reach(self) -> i64 {
        match self {
            Arch::X64 | Arch::Ppc64le => 2 << 30,
            Arch::Aarch64 => 4u64 as i64 * (1 << 30),
        }
    }

    /// Size of the long trampoline sequence in bytes (excluding any
    /// register save/restore the sequence may additionally need).
    #[must_use]
    pub fn long_branch_len(self) -> usize {
        match self {
            Arch::X64 => 5,
            Arch::Ppc64le => 16, // addis + addi + mtspr tar + bctar
            Arch::Aarch64 => 12, // adrp + add + br
        }
    }

    /// Size of a trap instruction in bytes.
    #[must_use]
    pub fn trap_len(self) -> usize {
        match self {
            Arch::X64 => 1,
            Arch::Ppc64le | Arch::Aarch64 => 4,
        }
    }

    /// Page size used by `adrp`-style page addressing.
    #[must_use]
    pub fn page_size(self) -> u64 {
        4096
    }

    /// The Table 2 rows for this architecture.
    #[must_use]
    pub fn branch_specs(self) -> Vec<BranchSpec> {
        match self {
            Arch::X64 => vec![
                BranchSpec { name: "2-byte branch", reach: 128, len_bytes: 2, insns: 1 },
                BranchSpec { name: "5-byte branch", reach: 2 << 30, len_bytes: 5, insns: 1 },
            ],
            Arch::Ppc64le => vec![
                BranchSpec { name: "b", reach: 32 << 20, len_bytes: 4, insns: 1 },
                BranchSpec {
                    name: "addis reg, r2, off@high; addi reg, reg, off@low; mtspr tar, reg; bctar",
                    reach: 2 << 30,
                    len_bytes: 16,
                    insns: 4,
                },
            ],
            Arch::Aarch64 => vec![
                BranchSpec { name: "b", reach: 128 << 20, len_bytes: 4, insns: 1 },
                BranchSpec {
                    name: "adrp reg, off@high; add reg, reg, off@low; br reg",
                    reach: 4 * (1i64 << 30),
                    len_bytes: 12,
                    insns: 3,
                },
            ],
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Arch::X64 => "x86-64",
            Arch::Ppc64le => "ppc64le",
            Arch::Aarch64 => "aarch64",
        };
        f.write_str(s)
    }
}

/// One row of the paper's Table 2: a trampoline branch form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchSpec {
    /// Human-readable instruction sequence.
    pub name: &'static str,
    /// ± branching range in bytes.
    pub reach: i64,
    /// Sequence length in bytes.
    pub len_bytes: usize,
    /// Sequence length in instructions.
    pub insns: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reaches() {
        assert_eq!(Arch::X64.short_branch_reach(), 128);
        assert_eq!(Arch::X64.long_branch_reach(), 2 << 30);
        assert_eq!(Arch::Ppc64le.short_branch_reach(), 32 << 20);
        assert_eq!(Arch::Ppc64le.long_branch_reach(), 2 << 30);
        assert_eq!(Arch::Aarch64.short_branch_reach(), 128 << 20);
        assert_eq!(Arch::Aarch64.long_branch_reach(), 4 * (1i64 << 30));
    }

    #[test]
    fn table2_lengths() {
        assert_eq!(Arch::X64.short_branch_len(), 2);
        assert_eq!(Arch::X64.long_branch_len(), 5);
        assert_eq!(Arch::Ppc64le.long_branch_len(), 16); // 4 insns
        assert_eq!(Arch::Aarch64.long_branch_len(), 12); // 3 insns
    }

    #[test]
    fn ppc_has_no_reg_indirect_branch() {
        assert!(!Arch::Ppc64le.has_reg_indirect_branch());
        assert!(Arch::X64.has_reg_indirect_branch());
        assert!(Arch::Aarch64.has_reg_indirect_branch());
    }

    #[test]
    fn display_names() {
        assert_eq!(Arch::X64.to_string(), "x86-64");
        assert_eq!(Arch::Ppc64le.to_string(), "ppc64le");
        assert_eq!(Arch::Aarch64.to_string(), "aarch64");
    }

    #[test]
    fn branch_spec_rows_match_scalar_accessors() {
        for arch in Arch::ALL {
            let specs = arch.branch_specs();
            assert_eq!(specs.len(), 2);
            assert_eq!(specs[0].reach, arch.short_branch_reach());
            assert_eq!(specs[0].len_bytes, arch.short_branch_len());
            assert_eq!(specs[1].reach, arch.long_branch_reach());
            assert_eq!(specs[1].len_bytes, arch.long_branch_len());
        }
    }
}

//! The architecture-neutral semantic instruction set.

use crate::cond::Cond;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A general-purpose register identifier.
///
/// The register file holds 16 GPRs on the x64 model and 32 on the RISC
/// models; encoders validate the id against the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Memory operand width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 1 byte.
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl Width {
    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// log2 of the width; used as an index scale encoding.
    #[must_use]
    pub fn log2(self) -> u8 {
        match self {
            Width::W1 => 0,
            Width::W2 => 1,
            Width::W4 => 2,
            Width::W8 => 3,
        }
    }

    /// Inverse of [`Width::log2`].
    #[must_use]
    pub fn from_log2(v: u8) -> Option<Width> {
        match v {
            0 => Some(Width::W1),
            1 => Some(Width::W2),
            2 => Some(Width::W4),
            3 => Some(Width::W8),
            _ => None,
        }
    }
}

/// A memory addressing mode: `[base + index * scale + disp]`, or a
/// PC-relative address `[pc_of_inst + disp]`.
///
/// The RISC models restrict which combinations are encodable (base+disp
/// or base+index, never both, no PC-relative data addressing); the
/// encoders enforce this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Addr {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register scaled by `scale`, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4, or 8).
    pub scale: u8,
    /// Constant displacement (or the full PC-relative offset).
    pub disp: i64,
    /// When set, the effective address is `inst_addr + disp` and
    /// `base`/`index` must be empty (x64 RIP-relative addressing).
    pub pc_rel: bool,
}

impl Addr {
    /// `[base + disp]`.
    #[must_use]
    pub fn base_disp(base: Reg, disp: i64) -> Addr {
        Addr { base: Some(base), index: None, scale: 1, disp, pc_rel: false }
    }

    /// `[base]`.
    #[must_use]
    pub fn base_only(base: Reg) -> Addr {
        Addr::base_disp(base, 0)
    }

    /// `[base + index * scale]`.
    #[must_use]
    pub fn base_index(base: Reg, index: Reg, scale: u8) -> Addr {
        Addr { base: Some(base), index: Some(index), scale, disp: 0, pc_rel: false }
    }

    /// `[pc + disp]` (x64 RIP-relative; `disp` is from the instruction
    /// *start* under this model).
    #[must_use]
    pub fn pc_rel(disp: i64) -> Addr {
        Addr { base: None, index: None, scale: 1, disp, pc_rel: true }
    }
}

/// Format an i64 as `+0xNN`/`-0xNN` (hex with an explicit sign).
fn signed_hex(v: i64) -> String {
    if v < 0 {
        format!("-{:#x}", v.unsigned_abs())
    } else {
        format!("+{v:#x}")
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pc_rel {
            return write!(f, "[pc{}]", signed_hex(self.disp));
        }
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 || first {
            if first {
                write!(f, "{:#x}", self.disp)?;
            } else {
                write!(f, " {}", signed_hex(self.disp))?;
            }
        }
        write!(f, "]")
    }
}

/// Arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low 64 bits).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (count masked to 63).
    Shl,
    /// Logical shift right (count masked to 63).
    Shr,
}

impl AluOp {
    /// All operations, in encoding order.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ];

    /// Encoding index.
    #[must_use]
    pub fn code(self) -> u8 {
        AluOp::ALL.iter().position(|o| *o == self).unwrap_or(0) as u8
    }

    /// Inverse of [`AluOp::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<AluOp> {
        AluOp::ALL.get(code as usize).copied()
    }

    /// Evaluate the operation (wrapping semantics).
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
        }
    }
}

/// Observable or runtime-mediated operations (the model's "syscalls").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SysOp {
    /// Append the register value to the program's output stream. Output
    /// equality is the correctness oracle for rewritten binaries.
    Out,
    /// Raise a language-level exception carrying the register value;
    /// triggers stack unwinding in the emulator's language runtime.
    Throw,
    /// Translate the 8-byte return address stored at the *address held in
    /// the register* through the loaded `.ra_map`, in place. Emitted by
    /// the rewriter when instrumenting Go-style `findfunc`/`pcvalue`
    /// entries (§6.2 of the paper).
    RaTranslate,
    /// Abort the program with the register value as an error code
    /// (models a Go runtime panic such as "unknown return pc").
    Abort,
}

impl SysOp {
    /// All operations, in encoding order.
    pub const ALL: [SysOp; 4] = [SysOp::Out, SysOp::Throw, SysOp::RaTranslate, SysOp::Abort];

    /// Encoding index.
    #[must_use]
    pub fn code(self) -> u8 {
        SysOp::ALL.iter().position(|o| *o == self).unwrap_or(0) as u8
    }

    /// Inverse of [`SysOp::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<SysOp> {
        SysOp::ALL.get(code as usize).copied()
    }
}

/// The semantic instruction set.
///
/// All control-flow offsets (`Jump`, `JumpCond`, `Call`, PC-relative
/// addresses) are relative to the **start** of the instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings are given in each variant's equation
pub enum Inst {
    /// Stop the program normally.
    Halt,
    /// No operation (also the padding byte/word compilers emit).
    Nop,
    /// Trap to the runtime (signal). Used as the last-resort trampoline.
    Trap,
    /// `dst = imm` (full 64-bit immediate on x64; ±32 K on RISC).
    MovImm { dst: Reg, imm: i64 },
    /// `dst = src`.
    MovReg { dst: Reg, src: Reg },
    /// `dst = a op b`.
    Alu { op: AluOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = src op imm` (imm32 on x64, imm12 on RISC).
    AluImm { op: AluOp, dst: Reg, src: Reg, imm: i32 },
    /// `dst = (dst << 16) | imm` — RISC constant materialisation
    /// (`ori`-after-`lis` / `movk` analog).
    OrShl16 { dst: Reg, imm: u16 },
    /// `dst = src + (imm << 16)` — ppc64le `addis`; paired with
    /// [`Inst::AddImm16`] it forms the ±2 GB long-trampoline address
    /// compute.
    AddShl16 { dst: Reg, src: Reg, imm: i16 },
    /// `dst = src + imm` with a full 16-bit immediate — ppc64le `addi`.
    /// (aarch64's add-immediate is the 12-bit [`Inst::AluImm`].)
    AddImm16 { dst: Reg, src: Reg, imm: i16 },
    /// `dst = (pc & !0xfff) + (page_delta << 12)` — aarch64 `adrp`.
    AdrPage { dst: Reg, page_delta: i64 },
    /// Record `a ? b` for a following conditional branch.
    Cmp { a: Reg, b: Reg },
    /// Record `a ? imm`.
    CmpImm { a: Reg, imm: i32 },
    /// `dst = mem[addr]`, zero- or sign-extended from `width`.
    Load { dst: Reg, addr: Addr, width: Width, sign: bool },
    /// `mem[addr] = src` truncated to `width`.
    Store { src: Reg, addr: Addr, width: Width },
    /// `dst = effective_address(addr)` (x64 only).
    Lea { dst: Reg, addr: Addr },
    /// Push `src` on the stack (x64 only).
    Push { src: Reg },
    /// Pop into `dst` (x64 only).
    Pop { dst: Reg },
    /// Unconditional PC-relative jump.
    Jump { offset: i64 },
    /// Conditional PC-relative jump.
    JumpCond { cond: Cond, offset: i64 },
    /// Register-indirect jump (x64 `jmp reg`, aarch64 `br`).
    JumpReg { src: Reg },
    /// Memory-indirect jump (x64 only, `jmp [mem]`).
    JumpMem { addr: Addr },
    /// Direct call. Pushes the return address (x64) or sets `lr` (RISC).
    Call { offset: i64 },
    /// Register-indirect call (x64 `call reg`, aarch64 `blr`).
    CallReg { src: Reg },
    /// Memory-indirect call (x64 only, `call [mem]`).
    CallMem { addr: Addr },
    /// Return: pop the return address (x64) or branch to `lr` (RISC).
    Ret,
    /// `tar = src` — ppc64le `mtspr tar, reg`.
    MoveToTar { src: Reg },
    /// Branch to `tar` — ppc64le `bctar`.
    JumpTar,
    /// Call through `tar` — ppc64le `bctarl` (sets `lr`).
    CallTar,
    /// `dst = lr` — RISC `mflr`.
    MoveFromLr { dst: Reg },
    /// `lr = src` — RISC `mtlr`.
    MoveToLr { src: Reg },
    /// Runtime-mediated operation; see [`SysOp`].
    Sys { op: SysOp, arg: Reg },
}

impl Inst {
    /// Whether the instruction ends a basic block (any control transfer
    /// or program stop).
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jump { .. }
                | Inst::JumpCond { .. }
                | Inst::JumpReg { .. }
                | Inst::JumpMem { .. }
                | Inst::Call { .. }
                | Inst::CallReg { .. }
                | Inst::CallMem { .. }
                | Inst::Ret
                | Inst::JumpTar
                | Inst::CallTar
                | Inst::Halt
                | Inst::Trap
        )
    }

    /// Whether the instruction is a call of any kind.
    #[must_use]
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            Inst::Call { .. } | Inst::CallReg { .. } | Inst::CallMem { .. } | Inst::CallTar
        )
    }

    /// Whether the instruction is an *indirect* control transfer
    /// (jump or call whose target is computed at run time).
    #[must_use]
    pub fn is_indirect(&self) -> bool {
        matches!(
            self,
            Inst::JumpReg { .. }
                | Inst::JumpMem { .. }
                | Inst::CallReg { .. }
                | Inst::CallMem { .. }
                | Inst::JumpTar
                | Inst::CallTar
        )
    }

    /// For direct jumps/calls, the PC-relative offset.
    #[must_use]
    pub fn direct_offset(&self) -> Option<i64> {
        match self {
            Inst::Jump { offset } | Inst::Call { offset } | Inst::JumpCond { offset, .. } => {
                Some(*offset)
            }
            _ => None,
        }
    }

    /// Whether execution can fall through to the next instruction.
    #[must_use]
    pub fn falls_through(&self) -> bool {
        match self {
            Inst::Jump { .. } | Inst::JumpReg { .. } | Inst::JumpMem { .. } | Inst::JumpTar
            | Inst::Ret | Inst::Halt | Inst::Trap => false,
            // Calls fall through (to the return point) from the CFG's
            // perspective; Sys::Throw/Abort are modelled as falling
            // through because resumption is a runtime matter.
            _ => true,
        }
    }

    /// Destination register written by this instruction, if exactly one
    /// GPR is written. Used by the analyses' def-use tracking.
    #[must_use]
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            Inst::MovImm { dst, .. }
            | Inst::MovReg { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::AluImm { dst, .. }
            | Inst::OrShl16 { dst, .. }
            | Inst::AddShl16 { dst, .. }
            | Inst::AddImm16 { dst, .. }
            | Inst::AdrPage { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Lea { dst, .. }
            | Inst::Pop { dst }
            | Inst::MoveFromLr { dst } => Some(*dst),
            _ => None,
        }
    }

    /// GPRs read by this instruction.
    #[must_use]
    pub fn use_regs(&self) -> Vec<Reg> {
        fn addr_regs(a: &Addr, out: &mut Vec<Reg>) {
            if let Some(b) = a.base {
                out.push(b);
            }
            if let Some(i) = a.index {
                out.push(i);
            }
        }
        let mut out = Vec::new();
        match self {
            Inst::MovReg { src, .. }
            | Inst::OrShl16 { dst: src, .. }
            | Inst::AddShl16 { src, .. }
            | Inst::AddImm16 { src, .. }
            | Inst::Push { src }
            | Inst::JumpReg { src }
            | Inst::CallReg { src }
            | Inst::MoveToTar { src }
            | Inst::MoveToLr { src }
            | Inst::Sys { arg: src, .. } => out.push(*src),
            Inst::Alu { a, b, .. } | Inst::Cmp { a, b } => {
                out.push(*a);
                out.push(*b);
            }
            Inst::AluImm { src, .. } => out.push(*src),
            Inst::CmpImm { a, .. } => out.push(*a),
            Inst::Load { addr, .. } | Inst::Lea { addr, .. } | Inst::JumpMem { addr }
            | Inst::CallMem { addr } => addr_regs(addr, &mut out),
            Inst::Store { src, addr, .. } => {
                out.push(*src);
                addr_regs(addr, &mut out);
            }
            _ => {}
        }
        out
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
            Inst::Trap => write!(f, "trap"),
            Inst::MovImm { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Inst::MovReg { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Alu { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}"),
            Inst::AluImm { op, dst, src, imm } => write!(f, "{op:?} {dst}, {src}, {imm:#x}"),
            Inst::OrShl16 { dst, imm } => write!(f, "orshl16 {dst}, {imm:#x}"),
            Inst::AddShl16 { dst, src, imm } => write!(f, "addis {dst}, {src}, {imm:#x}"),
            Inst::AddImm16 { dst, src, imm } => write!(f, "addi {dst}, {src}, {imm:#x}"),
            Inst::AdrPage { dst, page_delta } => write!(f, "adrp {dst}, {}", signed_hex(*page_delta)),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::CmpImm { a, imm } => write!(f, "cmp {a}, {imm:#x}"),
            Inst::Load { dst, addr, width, sign } => {
                write!(f, "ld{}{} {dst}, {addr}", width.bytes(), if *sign { "s" } else { "" })
            }
            Inst::Store { src, addr, width } => write!(f, "st{} {src}, {addr}", width.bytes()),
            Inst::Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::Jump { offset } => write!(f, "jmp pc{}", signed_hex(*offset)),
            Inst::JumpCond { cond, offset } => write!(f, "j{cond} pc{}", signed_hex(*offset)),
            Inst::JumpReg { src } => write!(f, "jmp {src}"),
            Inst::JumpMem { addr } => write!(f, "jmp {addr}"),
            Inst::Call { offset } => write!(f, "call pc{}", signed_hex(*offset)),
            Inst::CallReg { src } => write!(f, "call {src}"),
            Inst::CallMem { addr } => write!(f, "call {addr}"),
            Inst::Ret => write!(f, "ret"),
            Inst::MoveToTar { src } => write!(f, "mtspr tar, {src}"),
            Inst::JumpTar => write!(f, "bctar"),
            Inst::CallTar => write!(f, "bctarl"),
            Inst::MoveFromLr { dst } => write!(f, "mflr {dst}"),
            Inst::MoveToLr { src } => write!(f, "mtlr {src}"),
            Inst::Sys { op, arg } => write!(f, "sys {op:?}, {arg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flow_classification() {
        assert!(Inst::Ret.is_control_flow());
        assert!(Inst::Jump { offset: 0 }.is_control_flow());
        assert!(!Inst::Nop.is_control_flow());
        assert!(Inst::CallTar.is_call());
        assert!(Inst::JumpMem { addr: Addr::pc_rel(8) }.is_indirect());
        assert!(!Inst::Call { offset: 16 }.is_indirect());
    }

    #[test]
    fn fall_through() {
        assert!(!Inst::Jump { offset: 4 }.falls_through());
        assert!(Inst::JumpCond { cond: Cond::Eq, offset: 4 }.falls_through());
        assert!(Inst::Call { offset: 4 }.falls_through());
        assert!(!Inst::Ret.falls_through());
    }

    #[test]
    fn def_use() {
        let i = Inst::Alu { op: AluOp::Add, dst: Reg(1), a: Reg(2), b: Reg(3) };
        assert_eq!(i.def_reg(), Some(Reg(1)));
        assert_eq!(i.use_regs(), vec![Reg(2), Reg(3)]);

        let s = Inst::Store {
            src: Reg(5),
            addr: Addr::base_index(Reg(6), Reg(7), 8),
            width: Width::W8,
        };
        assert_eq!(s.def_reg(), None);
        assert_eq!(s.use_regs(), vec![Reg(5), Reg(6), Reg(7)]);
    }

    #[test]
    fn alu_eval() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), -1);
        assert_eq!(AluOp::Shl.eval(1, 12), 4096);
        assert_eq!(AluOp::Shr.eval(-1, 63), 1);
        assert_eq!(AluOp::Mul.eval(i64::MAX, 2), -2); // wrapping
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::pc_rel(16).to_string(), "[pc+0x10]");
        assert_eq!(Addr::base_disp(Reg(4), -8).to_string(), "[r4 -0x8]");
        assert_eq!(Addr::base_index(Reg(1), Reg(2), 8).to_string(), "[r1 + r2*8]");
    }
}

//! Byte encoding for the RISC models (ppc64le-like and aarch64-like):
//! fixed 4-byte little-endian words with bit-packed fields.
//!
//! The immediate-field widths are chosen so that the branch reaches of
//! the paper's Table 2 fall out mechanically:
//!
//! * direct branch/call: offset>>2 in a signed **24-bit** field on
//!   ppc64le (±32 MB) and a signed **26-bit** field on aarch64
//!   (±128 MB);
//! * `adrp` (aarch64 only): a signed **21-bit** page delta (±4 GB);
//! * `addis` (ppc64le only): a 16-bit high immediate (±2 GB around the
//!   base register, normally the TOC pointer `r2`);
//! * conditional branches: offset>>2 in a signed 19-bit field (±1 MB).
//!
//! Instructions that exist on only one of the two RISC machines
//! (`adrp`, `addis`, `mtspr tar`/`bctar`, `br reg`/`blr reg`) are
//! rejected by the encoder for the other machine, mirroring the real
//! ISA differences the paper's trampoline designs navigate.

use crate::{Addr, AluOp, Arch, Cond, DecodeError, EncodeError, Inst, Reg, SysOp, Width};

// Top-6-bit opcodes (word bits 31:26) for wide-immediate formats.
const T6_JUMP: u32 = 0x30;
const T6_CALL: u32 = 0x31;
const T6_ADRP: u32 = 0x32;
const T6_ADDIS: u32 = 0x33;
const T6_ADDI: u32 = 0x34;

// Top-8-bit opcodes (word bits 31:24). Must stay below 0xC0 so they
// never alias the top-6 space.
const OP_HALT: u32 = 0x00;
const OP_NOP: u32 = 0x01;
const OP_TRAP: u32 = 0x02;
const OP_RET: u32 = 0x03;
const OP_MOVIMM16: u32 = 0x10;
const OP_MOVREG: u32 = 0x11;
const OP_ALU_BASE: u32 = 0x12; // ..=0x19
const OP_ALUIMM_BASE: u32 = 0x20; // ..=0x27
const OP_ORSHL16: u32 = 0x28;
const OP_CMP: u32 = 0x2A;
const OP_CMPIMM16: u32 = 0x2B;
const OP_LOAD_DISP: u32 = 0x40;
const OP_LOAD_IDX: u32 = 0x41;
const OP_STORE_DISP: u32 = 0x42;
const OP_STORE_IDX: u32 = 0x43;
const OP_JUMPCOND: u32 = 0x50;
const OP_JUMPREG: u32 = 0x51;
const OP_CALLREG: u32 = 0x52;
const OP_MOVETOTAR: u32 = 0x53;
const OP_JUMPTAR: u32 = 0x54;
const OP_CALLTAR: u32 = 0x55;
const OP_MFLR: u32 = 0x56;
const OP_MTLR: u32 = 0x57;
const OP_SYS: u32 = 0x60;

fn check_reg(arch: Arch, r: Reg) -> Result<u32, EncodeError> {
    if r.0 < 32 {
        Ok(u32::from(r.0))
    } else {
        Err(EncodeError::BadRegister { arch, reg: r })
    }
}

/// Sign-extend the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((i64::from(v)) << shift) >> shift
}

fn fits_signed(v: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

fn branch_field_bits(arch: Arch) -> u32 {
    match arch {
        Arch::Ppc64le => 24,
        Arch::Aarch64 => 26,
        Arch::X64 => unreachable!("x64 is not a RISC model"),
    }
}

fn encode_branch_offset(arch: Arch, offset: i64) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::Misaligned { arch, offset });
    }
    let bits = branch_field_bits(arch);
    let word_off = offset / 4;
    if !fits_signed(word_off, bits) {
        return Err(EncodeError::BranchOutOfRange {
            arch,
            offset,
            max: ((1i64 << (bits - 1)) - 1) * 4,
        });
    }
    Ok((word_off as u32) & ((1 << bits) - 1))
}

fn unsupported(arch: Arch, what: &'static str) -> EncodeError {
    EncodeError::UnsupportedOnArch { arch, what }
}

/// Encode a base+disp memory operand's width/sign/disp fields.
fn mem_disp_fields(
    arch: Arch,
    addr: &Addr,
    width: Width,
    sign: bool,
) -> Result<(u32, u32, u32), EncodeError> {
    if addr.pc_rel {
        return Err(EncodeError::BadAddressingMode { arch, what: "pc-relative data access" });
    }
    let base = addr
        .base
        .ok_or(EncodeError::BadAddressingMode { arch, what: "memory access without base" })?;
    let base = check_reg(arch, base)?;
    if !fits_signed(addr.disp, 11) {
        return Err(EncodeError::DispOutOfRange { arch, disp: addr.disp, bits: 11 });
    }
    let disp = (addr.disp as u32) & 0x7FF;
    let ws = (u32::from(width.log2()) << 12) | (u32::from(sign) << 11);
    Ok((base, ws, disp))
}

/// Encode one instruction for a RISC model.
pub(crate) fn encode(inst: &Inst, arch: Arch) -> Result<Vec<u8>, EncodeError> {
    debug_assert!(arch.is_fixed_width());
    let word = encode_word(inst, arch)?;
    Ok(word.to_le_bytes().to_vec())
}

fn encode_word(inst: &Inst, arch: Arch) -> Result<u32, EncodeError> {
    let op8 = |op: u32, fields: u32| (op << 24) | (fields & 0x00FF_FFFF);
    Ok(match inst {
        Inst::Halt => op8(OP_HALT, 0),
        Inst::Nop => op8(OP_NOP, 0),
        Inst::Trap => op8(OP_TRAP, 0),
        Inst::Ret => op8(OP_RET, 0),
        Inst::MovImm { dst, imm } => {
            let d = check_reg(arch, *dst)?;
            if !fits_signed(*imm, 16) {
                return Err(EncodeError::ImmOutOfRange { arch, imm: *imm, bits: 16 });
            }
            op8(OP_MOVIMM16, (d << 19) | ((*imm as u32) & 0xFFFF))
        }
        Inst::MovReg { dst, src } => {
            let d = check_reg(arch, *dst)?;
            let s = check_reg(arch, *src)?;
            op8(OP_MOVREG, (d << 19) | (s << 14))
        }
        Inst::Alu { op, dst, a, b } => {
            let d = check_reg(arch, *dst)?;
            let ra = check_reg(arch, *a)?;
            let rb = check_reg(arch, *b)?;
            op8(OP_ALU_BASE + u32::from(op.code()), (d << 19) | (ra << 14) | (rb << 9))
        }
        Inst::AluImm { op, dst, src, imm } => {
            let d = check_reg(arch, *dst)?;
            let s = check_reg(arch, *src)?;
            if !fits_signed(i64::from(*imm), 12) {
                return Err(EncodeError::ImmOutOfRange { arch, imm: i64::from(*imm), bits: 12 });
            }
            op8(
                OP_ALUIMM_BASE + u32::from(op.code()),
                (d << 19) | (s << 14) | ((*imm as u32) & 0xFFF),
            )
        }
        Inst::OrShl16 { dst, imm } => {
            let d = check_reg(arch, *dst)?;
            op8(OP_ORSHL16, (d << 19) | u32::from(*imm))
        }
        Inst::AddShl16 { dst, src, imm } => {
            if arch != Arch::Ppc64le {
                return Err(unsupported(arch, "addis"));
            }
            let d = check_reg(arch, *dst)?;
            let s = check_reg(arch, *src)?;
            (T6_ADDIS << 26) | (d << 21) | (s << 16) | (u32::from(*imm as u16))
        }
        Inst::AddImm16 { dst, src, imm } => {
            if arch != Arch::Ppc64le {
                return Err(unsupported(arch, "addi (16-bit)"));
            }
            let d = check_reg(arch, *dst)?;
            let s = check_reg(arch, *src)?;
            (T6_ADDI << 26) | (d << 21) | (s << 16) | (u32::from(*imm as u16))
        }
        Inst::AdrPage { dst, page_delta } => {
            if arch != Arch::Aarch64 {
                return Err(unsupported(arch, "adrp"));
            }
            let d = check_reg(arch, *dst)?;
            if !fits_signed(*page_delta, 21) {
                return Err(EncodeError::ImmOutOfRange { arch, imm: *page_delta, bits: 21 });
            }
            (T6_ADRP << 26) | (d << 21) | ((*page_delta as u32) & 0x1F_FFFF)
        }
        Inst::Cmp { a, b } => {
            let ra = check_reg(arch, *a)?;
            let rb = check_reg(arch, *b)?;
            op8(OP_CMP, (ra << 19) | (rb << 14))
        }
        Inst::CmpImm { a, imm } => {
            let ra = check_reg(arch, *a)?;
            if !fits_signed(i64::from(*imm), 16) {
                return Err(EncodeError::ImmOutOfRange { arch, imm: i64::from(*imm), bits: 16 });
            }
            op8(OP_CMPIMM16, (ra << 19) | ((*imm as u32) & 0xFFFF))
        }
        Inst::Load { dst, addr, width, sign } => {
            let d = check_reg(arch, *dst)?;
            if let Some(index) = addr.index {
                if addr.disp != 0 {
                    return Err(EncodeError::BadAddressingMode {
                        arch,
                        what: "indexed access with displacement",
                    });
                }
                let base = addr.base.ok_or(EncodeError::BadAddressingMode {
                    arch,
                    what: "indexed access without base",
                })?;
                let b = check_reg(arch, base)?;
                let i = check_reg(arch, index)?;
                if !matches!(addr.scale, 1 | 2 | 4 | 8) {
                    return Err(EncodeError::BadAddressingMode { arch, what: "scale" });
                }
                let scale_log2 = addr.scale.trailing_zeros();
                op8(
                    OP_LOAD_IDX,
                    (d << 19)
                        | (b << 14)
                        | (i << 9)
                        | (u32::from(width.log2()) << 7)
                        | (u32::from(*sign) << 6)
                        | (scale_log2 << 4),
                )
            } else {
                let (b, ws, disp) = mem_disp_fields(arch, addr, *width, *sign)?;
                op8(OP_LOAD_DISP, (d << 19) | (b << 14) | ws | disp)
            }
        }
        Inst::Store { src, addr, width } => {
            let s = check_reg(arch, *src)?;
            if let Some(index) = addr.index {
                if addr.disp != 0 {
                    return Err(EncodeError::BadAddressingMode {
                        arch,
                        what: "indexed access with displacement",
                    });
                }
                let base = addr.base.ok_or(EncodeError::BadAddressingMode {
                    arch,
                    what: "indexed access without base",
                })?;
                let b = check_reg(arch, base)?;
                let i = check_reg(arch, index)?;
                if !matches!(addr.scale, 1 | 2 | 4 | 8) {
                    return Err(EncodeError::BadAddressingMode { arch, what: "scale" });
                }
                let scale_log2 = addr.scale.trailing_zeros();
                op8(
                    OP_STORE_IDX,
                    (s << 19)
                        | (b << 14)
                        | (i << 9)
                        | (u32::from(width.log2()) << 7)
                        | (scale_log2 << 4),
                )
            } else {
                let (b, ws, disp) = mem_disp_fields(arch, addr, *width, false)?;
                op8(OP_STORE_DISP, (s << 19) | (b << 14) | ws | disp)
            }
        }
        Inst::Lea { .. } => return Err(unsupported(arch, "lea")),
        Inst::Push { .. } => return Err(unsupported(arch, "push")),
        Inst::Pop { .. } => return Err(unsupported(arch, "pop")),
        Inst::Jump { offset } => (T6_JUMP << 26) | encode_branch_offset(arch, *offset)?,
        Inst::Call { offset } => (T6_CALL << 26) | encode_branch_offset(arch, *offset)?,
        Inst::JumpCond { cond, offset } => {
            if offset % 4 != 0 {
                return Err(EncodeError::Misaligned { arch, offset: *offset });
            }
            let word_off = offset / 4;
            if !fits_signed(word_off, 19) {
                return Err(EncodeError::BranchOutOfRange {
                    arch,
                    offset: *offset,
                    max: ((1i64 << 18) - 1) * 4,
                });
            }
            op8(
                OP_JUMPCOND,
                (u32::from(cond.code()) << 20) | ((word_off as u32) & 0x7_FFFF),
            )
        }
        Inst::JumpReg { src } => {
            if arch != Arch::Aarch64 {
                return Err(unsupported(arch, "br reg"));
            }
            op8(OP_JUMPREG, check_reg(arch, *src)? << 19)
        }
        Inst::CallReg { src } => {
            if arch != Arch::Aarch64 {
                return Err(unsupported(arch, "blr reg"));
            }
            op8(OP_CALLREG, check_reg(arch, *src)? << 19)
        }
        Inst::JumpMem { .. } => return Err(unsupported(arch, "jmp [mem]")),
        Inst::CallMem { .. } => return Err(unsupported(arch, "call [mem]")),
        Inst::MoveToTar { src } => {
            if arch != Arch::Ppc64le {
                return Err(unsupported(arch, "mtspr tar"));
            }
            op8(OP_MOVETOTAR, check_reg(arch, *src)? << 19)
        }
        Inst::JumpTar => {
            if arch != Arch::Ppc64le {
                return Err(unsupported(arch, "bctar"));
            }
            op8(OP_JUMPTAR, 0)
        }
        Inst::CallTar => {
            if arch != Arch::Ppc64le {
                return Err(unsupported(arch, "bctarl"));
            }
            op8(OP_CALLTAR, 0)
        }
        Inst::MoveFromLr { dst } => op8(OP_MFLR, check_reg(arch, *dst)? << 19),
        Inst::MoveToLr { src } => op8(OP_MTLR, check_reg(arch, *src)? << 19),
        Inst::Sys { op, arg } => {
            op8(OP_SYS, (u32::from(op.code()) << 16) | (check_reg(arch, *arg)? << 11))
        }
    })
}

/// Decode one instruction from the front of `bytes` on a RISC model.
pub(crate) fn decode(bytes: &[u8], arch: Arch) -> Result<(Inst, usize), DecodeError> {
    debug_assert!(arch.is_fixed_width());
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated { arch, needed: 4, have: bytes.len() });
    }
    let word = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    let inst = decode_word(word, arch)?;
    Ok((inst, 4))
}

fn decode_word(word: u32, arch: Arch) -> Result<Inst, DecodeError> {
    let top6 = word >> 26;
    let reg = |v: u32| Reg((v & 0x1F) as u8);
    match top6 {
        T6_JUMP | T6_CALL => {
            let bits = branch_field_bits(arch);
            let offset = sext(word & ((1 << bits) - 1), bits) * 4;
            return Ok(if top6 == T6_JUMP {
                Inst::Jump { offset }
            } else {
                Inst::Call { offset }
            });
        }
        T6_ADRP => {
            if arch != Arch::Aarch64 {
                return Err(DecodeError::IllegalOpcode { arch, opcode: (word >> 24) as u8 });
            }
            return Ok(Inst::AdrPage {
                dst: reg(word >> 21),
                page_delta: sext(word & 0x1F_FFFF, 21),
            });
        }
        T6_ADDIS | T6_ADDI => {
            if arch != Arch::Ppc64le {
                return Err(DecodeError::IllegalOpcode { arch, opcode: (word >> 24) as u8 });
            }
            let dst = reg(word >> 21);
            let src = reg(word >> 16);
            let imm = (word & 0xFFFF) as u16 as i16;
            return Ok(if top6 == T6_ADDIS {
                Inst::AddShl16 { dst, src, imm }
            } else {
                Inst::AddImm16 { dst, src, imm }
            });
        }
        _ => {}
    }
    let op = word >> 24;
    let f = word & 0x00FF_FFFF;
    let bad = |what: &'static str| DecodeError::BadOperand { arch, what };
    Ok(match op {
        OP_HALT => Inst::Halt,
        OP_NOP => Inst::Nop,
        OP_TRAP => Inst::Trap,
        OP_RET => Inst::Ret,
        OP_MOVIMM16 => Inst::MovImm { dst: reg(f >> 19), imm: sext(f & 0xFFFF, 16) },
        OP_MOVREG => Inst::MovReg { dst: reg(f >> 19), src: reg(f >> 14) },
        _ if (OP_ALU_BASE..OP_ALU_BASE + 8).contains(&op) => Inst::Alu {
            op: AluOp::from_code((op - OP_ALU_BASE) as u8).ok_or(bad("alu op"))?,
            dst: reg(f >> 19),
            a: reg(f >> 14),
            b: reg(f >> 9),
        },
        _ if (OP_ALUIMM_BASE..OP_ALUIMM_BASE + 8).contains(&op) => Inst::AluImm {
            op: AluOp::from_code((op - OP_ALUIMM_BASE) as u8).ok_or(bad("alu op"))?,
            dst: reg(f >> 19),
            src: reg(f >> 14),
            imm: sext(f & 0xFFF, 12) as i32,
        },
        OP_ORSHL16 => Inst::OrShl16 { dst: reg(f >> 19), imm: (f & 0xFFFF) as u16 },
        OP_CMP => Inst::Cmp { a: reg(f >> 19), b: reg(f >> 14) },
        OP_CMPIMM16 => Inst::CmpImm { a: reg(f >> 19), imm: sext(f & 0xFFFF, 16) as i32 },
        OP_LOAD_DISP => Inst::Load {
            dst: reg(f >> 19),
            addr: Addr::base_disp(reg(f >> 14), sext(f & 0x7FF, 11)),
            width: Width::from_log2(((f >> 12) & 3) as u8).ok_or(bad("width"))?,
            sign: f & (1 << 11) != 0,
        },
        OP_LOAD_IDX => Inst::Load {
            dst: reg(f >> 19),
            addr: Addr::base_index(reg(f >> 14), reg(f >> 9), 1 << ((f >> 4) & 3)),
            width: Width::from_log2(((f >> 7) & 3) as u8).ok_or(bad("width"))?,
            sign: f & (1 << 6) != 0,
        },
        OP_STORE_DISP => Inst::Store {
            src: reg(f >> 19),
            addr: Addr::base_disp(reg(f >> 14), sext(f & 0x7FF, 11)),
            width: Width::from_log2(((f >> 12) & 3) as u8).ok_or(bad("width"))?,
        },
        OP_STORE_IDX => Inst::Store {
            src: reg(f >> 19),
            addr: Addr::base_index(reg(f >> 14), reg(f >> 9), 1 << ((f >> 4) & 3)),
            width: Width::from_log2(((f >> 7) & 3) as u8).ok_or(bad("width"))?,
        },
        OP_JUMPCOND => Inst::JumpCond {
            cond: Cond::from_code(((f >> 20) & 0xF) as u8).ok_or(bad("cond"))?,
            offset: sext(f & 0x7_FFFF, 19) * 4,
        },
        OP_JUMPREG if arch == Arch::Aarch64 => Inst::JumpReg { src: reg(f >> 19) },
        OP_CALLREG if arch == Arch::Aarch64 => Inst::CallReg { src: reg(f >> 19) },
        OP_MOVETOTAR if arch == Arch::Ppc64le => Inst::MoveToTar { src: reg(f >> 19) },
        OP_JUMPTAR if arch == Arch::Ppc64le => Inst::JumpTar,
        OP_CALLTAR if arch == Arch::Ppc64le => Inst::CallTar,
        OP_MFLR => Inst::MoveFromLr { dst: reg(f >> 19) },
        OP_MTLR => Inst::MoveToLr { src: reg(f >> 19) },
        OP_SYS => Inst::Sys {
            op: SysOp::from_code(((f >> 16) & 0xFF) as u8).ok_or(bad("sys op"))?,
            arg: reg(f >> 11),
        },
        _ => return Err(DecodeError::IllegalOpcode { arch, opcode: op as u8 }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst, arch: Arch) {
        let bytes = encode(&inst, arch).expect("encode");
        assert_eq!(bytes.len(), 4);
        let (decoded, len) = decode(&bytes, arch).expect("decode");
        assert_eq!(decoded, inst, "on {arch}");
        assert_eq!(len, 4);
    }

    fn roundtrip_both(inst: Inst) {
        roundtrip(inst.clone(), Arch::Ppc64le);
        roundtrip(inst, Arch::Aarch64);
    }

    #[test]
    fn roundtrip_common() {
        roundtrip_both(Inst::Halt);
        roundtrip_both(Inst::Nop);
        roundtrip_both(Inst::Trap);
        roundtrip_both(Inst::Ret);
        roundtrip_both(Inst::MovImm { dst: Reg(31), imm: -32768 });
        roundtrip_both(Inst::MovReg { dst: Reg(7), src: Reg(30) });
        roundtrip_both(Inst::Alu { op: AluOp::Xor, dst: Reg(1), a: Reg(2), b: Reg(3) });
        roundtrip_both(Inst::AluImm { op: AluOp::Add, dst: Reg(1), src: Reg(1), imm: -2048 });
        roundtrip_both(Inst::OrShl16 { dst: Reg(9), imm: 0xBEEF });
        roundtrip_both(Inst::Cmp { a: Reg(4), b: Reg(5) });
        roundtrip_both(Inst::CmpImm { a: Reg(4), imm: 1000 });
        roundtrip_both(Inst::MoveFromLr { dst: Reg(0) });
        roundtrip_both(Inst::MoveToLr { src: Reg(0) });
        roundtrip_both(Inst::Sys { op: SysOp::Throw, arg: Reg(8) });
    }

    #[test]
    fn roundtrip_memory() {
        roundtrip_both(Inst::Load {
            dst: Reg(3),
            addr: Addr::base_disp(Reg(1), -1024),
            width: Width::W8,
            sign: false,
        });
        roundtrip_both(Inst::Load {
            dst: Reg(3),
            addr: Addr::base_index(Reg(10), Reg(11), 4),
            width: Width::W4,
            sign: true,
        });
        roundtrip_both(Inst::Store {
            src: Reg(3),
            addr: Addr::base_disp(Reg(1), 1023),
            width: Width::W1,
        });
        roundtrip_both(Inst::Store {
            src: Reg(3),
            addr: Addr::base_index(Reg(10), Reg(11), 8),
            width: Width::W8,
        });
    }

    #[test]
    fn roundtrip_branches() {
        roundtrip_both(Inst::Jump { offset: 4096 });
        roundtrip_both(Inst::Jump { offset: -4096 });
        roundtrip_both(Inst::Call { offset: (32 << 20) - 4 });
        roundtrip_both(Inst::JumpCond { cond: Cond::UGt, offset: -(1 << 20) });
        roundtrip(Inst::Jump { offset: 64 << 20 }, Arch::Aarch64); // beyond ppc reach
    }

    #[test]
    fn arch_specific_instructions() {
        roundtrip(Inst::AddShl16 { dst: Reg(12), src: Reg(2), imm: -0x7000 }, Arch::Ppc64le);
        roundtrip(Inst::AddImm16 { dst: Reg(12), src: Reg(12), imm: 0x7FFF }, Arch::Ppc64le);
        assert!(encode(&Inst::AddImm16 { dst: Reg(0), src: Reg(0), imm: 1 }, Arch::Aarch64)
            .is_err());
        roundtrip(Inst::MoveToTar { src: Reg(12) }, Arch::Ppc64le);
        roundtrip(Inst::JumpTar, Arch::Ppc64le);
        roundtrip(Inst::CallTar, Arch::Ppc64le);
        roundtrip(Inst::AdrPage { dst: Reg(16), page_delta: -(1 << 20) }, Arch::Aarch64);
        roundtrip(Inst::JumpReg { src: Reg(16) }, Arch::Aarch64);
        roundtrip(Inst::CallReg { src: Reg(16) }, Arch::Aarch64);

        assert!(encode(&Inst::AdrPage { dst: Reg(0), page_delta: 1 }, Arch::Ppc64le).is_err());
        assert!(encode(&Inst::AddShl16 { dst: Reg(0), src: Reg(2), imm: 1 }, Arch::Aarch64)
            .is_err());
        assert!(encode(&Inst::JumpReg { src: Reg(0) }, Arch::Ppc64le).is_err());
        assert!(encode(&Inst::JumpTar, Arch::Aarch64).is_err());
    }

    #[test]
    fn branch_reach_matches_table2() {
        // ppc64le: ±32 MB.
        let max_ppc = (32 << 20) - 4;
        assert!(encode(&Inst::Jump { offset: max_ppc }, Arch::Ppc64le).is_ok());
        assert!(encode(&Inst::Jump { offset: 32 << 20 }, Arch::Ppc64le).is_err());
        assert!(encode(&Inst::Jump { offset: -(32 << 20) }, Arch::Ppc64le).is_ok());
        // aarch64: ±128 MB.
        let max_a64 = (128 << 20) - 4;
        assert!(encode(&Inst::Jump { offset: max_a64 }, Arch::Aarch64).is_ok());
        assert!(encode(&Inst::Jump { offset: 128 << 20 }, Arch::Aarch64).is_err());
    }

    #[test]
    fn adrp_reach_is_4gb() {
        // ±2^20 pages of 4 KiB = ±4 GB around the current page.
        assert!(encode(&Inst::AdrPage { dst: Reg(0), page_delta: (1 << 20) - 1 }, Arch::Aarch64)
            .is_ok());
        assert!(encode(&Inst::AdrPage { dst: Reg(0), page_delta: 1 << 20 }, Arch::Aarch64)
            .is_err());
    }

    #[test]
    fn misaligned_branch_rejected() {
        assert!(matches!(
            encode(&Inst::Jump { offset: 6 }, Arch::Ppc64le),
            Err(EncodeError::Misaligned { .. })
        ));
    }

    #[test]
    fn poison_word_is_illegal() {
        // 0xFFFFFFFF: top6 = 0x3F (not special), top8 = 0xFF (undefined).
        assert!(matches!(
            decode(&[0xFF, 0xFF, 0xFF, 0xFF], Arch::Aarch64),
            Err(DecodeError::IllegalOpcode { .. })
        ));
    }

    #[test]
    fn x64_only_insts_rejected() {
        assert!(encode(&Inst::Push { src: Reg(0) }, Arch::Ppc64le).is_err());
        assert!(encode(&Inst::Lea { dst: Reg(0), addr: Addr::pc_rel(0) }, Arch::Aarch64).is_err());
        assert!(encode(&Inst::JumpMem { addr: Addr::base_only(Reg(1)) }, Arch::Aarch64).is_err());
    }

    #[test]
    fn large_imm_rejected_needs_expansion() {
        assert!(matches!(
            encode(&Inst::MovImm { dst: Reg(0), imm: 1 << 20 }, Arch::Aarch64),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
    }
}

#![warn(missing_docs)]
//! Architecture models for the incremental-CFG-patching reproduction.
//!
//! This crate defines the three machine models the paper evaluates on —
//! x86-64, ppc64le and aarch64 — as *synthetic but structurally faithful*
//! instruction sets. The properties that matter for binary rewriting are
//! modelled exactly:
//!
//! * **Instruction granularity** — x64 instructions are variable length
//!   (1–10 bytes here, 1–15 on real hardware); ppc64le and aarch64
//!   instructions are fixed 4-byte words.
//! * **Branch reach** — per Table 2 of the paper: x64 short branch ±128 B
//!   (2 B), near branch ±2 GB (5 B); ppc64le `b` ±32 MB (1 insn) and the
//!   4-insn `addis/addi/mtspr tar/bctar` sequence reaching ±2 GB; aarch64
//!   `b` ±128 MB (1 insn) and the 3-insn `adrp/add/br` sequence reaching
//!   ±4 GB.
//! * **Trap size** — a trap is a 1-byte instruction on x64 (`int3`-like)
//!   and a single 4-byte word on the RISC architectures, so a trap always
//!   fits where any instruction fits.
//! * **Indirect-branch idioms** — ppc64le has no register-indirect jump;
//!   control must flow through the `tar` special register
//!   (`mtspr`/`bctar`), which is why its long trampoline is 4 instructions
//!   and needs a scratch GPR. aarch64 and x64 jump through a GPR directly.
//!
//! The semantic instruction set ([`Inst`]) is architecture-neutral; the
//! per-architecture byte encodings live in [`encode`]/[`decode`] and
//! enforce each machine's length and reach rules, returning
//! [`EncodeError::BranchOutOfRange`] exactly where a real assembler would.
//!
//! # Example
//!
//! ```
//! use icfgp_isa::{Arch, Inst, encode, decode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A near jump on x64 is five bytes; the same semantic jump on
//! // aarch64 is one 4-byte word.
//! let jmp = Inst::Jump { offset: 0x1000 };
//! assert_eq!(encode(&jmp, Arch::X64)?.len(), 5);
//! assert_eq!(encode(&jmp, Arch::Aarch64)?.len(), 4);
//!
//! // Round-trip through the decoder.
//! let bytes = encode(&jmp, Arch::Ppc64le)?;
//! let (decoded, len) = decode(&bytes, Arch::Ppc64le)?;
//! assert_eq!(decoded, jmp);
//! assert_eq!(len, 4);
//! # Ok(())
//! # }
//! ```

mod arch;
mod cond;
mod inst;
mod risc;
mod x64;

pub use arch::{Arch, BranchSpec};
pub use cond::Cond;
pub use inst::{Addr, AluOp, Inst, Reg, SysOp, Width};

use std::fmt;

/// Error returned when an instruction cannot be encoded for an
/// architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are named self-descriptively and shown by Display
pub enum EncodeError {
    /// The instruction does not exist on this architecture (e.g. `push`
    /// on ppc64le, `adrp` on x64).
    UnsupportedOnArch { arch: Arch, what: &'static str },
    /// A branch or page offset does not fit in the encoding's immediate
    /// field.
    BranchOutOfRange { arch: Arch, offset: i64, max: i64 },
    /// An immediate operand does not fit in the encoding's field.
    ImmOutOfRange { arch: Arch, imm: i64, bits: u8 },
    /// A displacement does not fit in the encoding's field.
    DispOutOfRange { arch: Arch, disp: i64, bits: u8 },
    /// A register id is outside the architecture's register file.
    BadRegister { arch: Arch, reg: Reg },
    /// The addressing mode is not expressible on this architecture.
    BadAddressingMode { arch: Arch, what: &'static str },
    /// A RISC branch target or offset is not 4-byte aligned.
    Misaligned { arch: Arch, offset: i64 },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnsupportedOnArch { arch, what } => {
                write!(f, "{what} is not encodable on {arch}")
            }
            EncodeError::BranchOutOfRange { arch, offset, max } => {
                write!(f, "branch offset {offset:#x} exceeds ±{max:#x} on {arch}")
            }
            EncodeError::ImmOutOfRange { arch, imm, bits } => {
                write!(f, "immediate {imm:#x} does not fit in {bits} bits on {arch}")
            }
            EncodeError::DispOutOfRange { arch, disp, bits } => {
                write!(f, "displacement {disp:#x} does not fit in {bits} bits on {arch}")
            }
            EncodeError::BadRegister { arch, reg } => {
                write!(f, "register r{} is out of range on {arch}", reg.0)
            }
            EncodeError::BadAddressingMode { arch, what } => {
                write!(f, "addressing mode not supported on {arch}: {what}")
            }
            EncodeError::Misaligned { arch, offset } => {
                write!(f, "offset {offset:#x} is not 4-byte aligned on {arch}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error returned when bytes cannot be decoded as an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // fields are named self-descriptively and shown by Display
pub enum DecodeError {
    /// The byte sequence starts with an opcode that is not defined.
    IllegalOpcode { arch: Arch, opcode: u8 },
    /// The byte sequence is shorter than the instruction it starts.
    Truncated { arch: Arch, needed: usize, have: usize },
    /// An operand field holds an invalid value (bad register, bad width,
    /// bad condition code...).
    BadOperand { arch: Arch, what: &'static str },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::IllegalOpcode { arch, opcode } => {
                write!(f, "illegal opcode {opcode:#04x} on {arch}")
            }
            DecodeError::Truncated { arch, needed, have } => {
                write!(f, "truncated instruction on {arch}: need {needed} bytes, have {have}")
            }
            DecodeError::BadOperand { arch, what } => {
                write!(f, "bad operand on {arch}: {what}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a semantic instruction into the byte encoding of `arch`.
///
/// # Errors
///
/// Returns an [`EncodeError`] when the instruction does not exist on the
/// architecture, an operand does not fit the encoding, or a RISC branch
/// offset is unaligned or out of reach.
///
/// # Example
///
/// ```
/// use icfgp_isa::{Arch, Inst, encode, EncodeError};
///
/// // ppc64le's direct branch reaches only ±32 MB (Table 2): a longer
/// // jump must go through the 4-instruction `tar` sequence instead.
/// let too_far = Inst::Jump { offset: 1 << 26 };
/// assert!(matches!(
///     encode(&too_far, Arch::Ppc64le),
///     Err(EncodeError::BranchOutOfRange { .. })
/// ));
/// assert!(encode(&too_far, Arch::Aarch64).is_ok()); // ±128 MB reach
/// ```
pub fn encode(inst: &Inst, arch: Arch) -> Result<Vec<u8>, EncodeError> {
    match arch {
        Arch::X64 => x64::encode(inst),
        Arch::Ppc64le | Arch::Aarch64 => risc::encode(inst, arch),
    }
}

/// Encode an instruction, appending to `out`; returns the encoded length.
///
/// # Errors
///
/// Same as [`encode`].
pub fn encode_into(inst: &Inst, arch: Arch, out: &mut Vec<u8>) -> Result<usize, EncodeError> {
    let bytes = encode(inst, arch)?;
    let n = bytes.len();
    out.extend_from_slice(&bytes);
    Ok(n)
}

/// Decode one instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes it occupies.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes, truncated input, or
/// malformed operand fields. Hitting an illegal opcode is load-bearing
/// for the rewriter's "overwrite `.text` with illegal bytes" strong test.
pub fn decode(bytes: &[u8], arch: Arch) -> Result<(Inst, usize), DecodeError> {
    match arch {
        Arch::X64 => x64::decode(bytes),
        Arch::Ppc64le | Arch::Aarch64 => risc::decode(bytes, arch),
    }
}

/// Length in bytes that `inst` occupies on `arch`.
///
/// # Errors
///
/// Same as [`encode`]; the instruction must be encodable.
pub fn encoded_len(inst: &Inst, arch: Arch) -> Result<usize, EncodeError> {
    encode(inst, arch).map(|b| b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_jump_lengths_match_table2() {
        let j = Inst::Jump { offset: 0x100000 };
        assert_eq!(encode(&j, Arch::X64).unwrap().len(), 5);
        assert_eq!(encode(&j, Arch::Ppc64le).unwrap().len(), 4);
        assert_eq!(encode(&j, Arch::Aarch64).unwrap().len(), 4);
    }

    #[test]
    fn short_jump_is_two_bytes_on_x64() {
        let j = Inst::Jump { offset: -100 };
        assert_eq!(encode(&j, Arch::X64).unwrap().len(), 2);
    }

    #[test]
    fn trap_is_one_instruction_everywhere() {
        assert_eq!(encode(&Inst::Trap, Arch::X64).unwrap().len(), 1);
        assert_eq!(encode(&Inst::Trap, Arch::Ppc64le).unwrap().len(), 4);
        assert_eq!(encode(&Inst::Trap, Arch::Aarch64).unwrap().len(), 4);
    }

    #[test]
    fn push_is_x64_only() {
        let p = Inst::Push { src: Reg(3) };
        assert!(encode(&p, Arch::X64).is_ok());
        assert!(matches!(
            encode(&p, Arch::Ppc64le),
            Err(EncodeError::UnsupportedOnArch { .. })
        ));
    }
}

//! Byte encoding for the x64 model: variable-length, 1–10 bytes.
//!
//! The encoding is deliberately x86-64-shaped without being x86-64:
//! `push`/`pop` pack the register into the opcode (1 byte), short jumps
//! are 2 bytes with an 8-bit displacement, near jumps/calls are 5 bytes,
//! the trap is the 1-byte `0xCC`, and memory operands use a mode byte
//! followed by optional index and displacement bytes. `0xFF` is an
//! illegal opcode, which the rewriter uses as poison filler for
//! overwritten `.text` bytes.

use crate::{Addr, AluOp, Arch, Cond, DecodeError, EncodeError, Inst, Reg, SysOp, Width};

const A: Arch = Arch::X64;

// Opcode map. Gaps are illegal opcodes.
const OP_HALT: u8 = 0x00;
const OP_NOP: u8 = 0x01;
const OP_RET: u8 = 0x03;
const OP_MOVIMM64: u8 = 0x10;
const OP_MOVIMM32: u8 = 0x11;
const OP_MOVREG: u8 = 0x12;
const OP_ALU_BASE: u8 = 0x13; // ..=0x1A
const OP_ALUIMM32_BASE: u8 = 0x20; // ..=0x27
const OP_ALUIMM8_BASE: u8 = 0x28; // ..=0x2F
const OP_CMP: u8 = 0x30;
const OP_CMPIMM32: u8 = 0x31;
const OP_CMPIMM8: u8 = 0x32;
const OP_LOAD: u8 = 0x40;
const OP_STORE: u8 = 0x41;
const OP_LEA: u8 = 0x42;
const OP_JMPMEM: u8 = 0x43;
const OP_CALLMEM: u8 = 0x44;
const OP_PUSH_BASE: u8 = 0x50; // ..=0x5F, reg in low nibble
const OP_POP_BASE: u8 = 0x60; // ..=0x6F
const OP_JMP_SHORT: u8 = 0x70;
const OP_JMP_NEAR: u8 = 0x71;
const OP_CALL_NEAR: u8 = 0x72;
const OP_JMP_REG: u8 = 0x73;
const OP_CALL_REG: u8 = 0x74;
const OP_JCC_SHORT: u8 = 0x80;
const OP_JCC_NEAR: u8 = 0x81;
const OP_SYS: u8 = 0xA0;
const OP_TRAP: u8 = 0xCC;

fn check_reg(r: Reg) -> Result<(), EncodeError> {
    if r.0 < 16 {
        Ok(())
    } else {
        Err(EncodeError::BadRegister { arch: A, reg: r })
    }
}

fn reg_pair(a: Reg, b: Reg) -> u8 {
    (a.0 << 4) | b.0
}

fn unsupported(what: &'static str) -> EncodeError {
    EncodeError::UnsupportedOnArch { arch: A, what }
}

/// Encode a memory operand (mode byte + operand bytes) after `opcode`.
fn encode_mem(out: &mut Vec<u8>, reg: Reg, addr: &Addr, width: Width, sign: bool)
    -> Result<(), EncodeError> {
    check_reg(reg)?;
    if addr.pc_rel {
        if addr.base.is_some() || addr.index.is_some() {
            return Err(EncodeError::BadAddressingMode {
                arch: A,
                what: "pc-relative with base or index",
            });
        }
        let disp = i32::try_from(addr.disp)
            .map_err(|_| EncodeError::DispOutOfRange { arch: A, disp: addr.disp, bits: 32 })?;
        let mode = width.log2() | (u8::from(sign) << 2) | (1 << 3) | (2 << 6);
        out.push(mode);
        out.push(reg.0 << 4);
        out.extend_from_slice(&disp.to_le_bytes());
        return Ok(());
    }
    if !matches!(addr.scale, 1 | 2 | 4 | 8) {
        return Err(EncodeError::BadAddressingMode { arch: A, what: "scale not 1/2/4/8" });
    }
    let disp_kind: u8 = if addr.disp == 0 {
        0
    } else if i8::try_from(addr.disp).is_ok() {
        1
    } else if i32::try_from(addr.disp).is_ok() {
        2
    } else {
        return Err(EncodeError::DispOutOfRange { arch: A, disp: addr.disp, bits: 32 });
    };
    let mut mode = width.log2() | (u8::from(sign) << 2) | (disp_kind << 6);
    if addr.base.is_some() {
        mode |= 1 << 4;
    }
    if addr.index.is_some() {
        mode |= 1 << 5;
    }
    out.push(mode);
    let base = addr.base.unwrap_or(Reg(0));
    if let Some(b) = addr.base {
        check_reg(b)?;
    }
    out.push(reg_pair(reg, base));
    if let Some(idx) = addr.index {
        check_reg(idx)?;
        out.push((idx.0 << 4) | addr.scale.trailing_zeros() as u8);
    }
    match disp_kind {
        1 => out.push(addr.disp as i8 as u8),
        2 => out.extend_from_slice(&(addr.disp as i32).to_le_bytes()),
        _ => {}
    }
    Ok(())
}

fn decode_mem(bytes: &[u8], needs_reg: bool)
    -> Result<(Reg, Addr, Width, bool, usize), DecodeError> {
    let trunc = |needed| DecodeError::Truncated { arch: A, needed, have: bytes.len() };
    if bytes.len() < 2 {
        return Err(trunc(2));
    }
    let mode = bytes[0];
    let width = Width::from_log2(mode & 3)
        .ok_or(DecodeError::BadOperand { arch: A, what: "width" })?;
    let sign = mode & (1 << 2) != 0;
    let pc_rel = mode & (1 << 3) != 0;
    let has_base = mode & (1 << 4) != 0;
    let has_index = mode & (1 << 5) != 0;
    let disp_kind = mode >> 6;
    let reg = Reg(bytes[1] >> 4);
    let base = Reg(bytes[1] & 0xF);
    let mut pos = 2usize;
    if pc_rel {
        if disp_kind != 2 || has_base || has_index {
            return Err(DecodeError::BadOperand { arch: A, what: "pc-relative mode bits" });
        }
        if bytes.len() < pos + 4 {
            return Err(trunc(pos + 4));
        }
        let disp = i32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        pos += 4;
        let _ = needs_reg;
        return Ok((reg, Addr::pc_rel(i64::from(disp)), width, sign, pos));
    }
    let mut addr = Addr {
        base: has_base.then_some(base),
        index: None,
        scale: 1,
        disp: 0,
        pc_rel: false,
    };
    if has_index {
        if bytes.len() < pos + 1 {
            return Err(trunc(pos + 1));
        }
        let ib = bytes[pos];
        pos += 1;
        let scale_log2 = ib & 0xF;
        if scale_log2 > 3 {
            return Err(DecodeError::BadOperand { arch: A, what: "scale" });
        }
        addr.index = Some(Reg(ib >> 4));
        addr.scale = 1 << scale_log2;
    }
    match disp_kind {
        0 => {}
        1 => {
            if bytes.len() < pos + 1 {
                return Err(trunc(pos + 1));
            }
            addr.disp = i64::from(bytes[pos] as i8);
            pos += 1;
        }
        2 => {
            if bytes.len() < pos + 4 {
                return Err(trunc(pos + 4));
            }
            addr.disp = i64::from(i32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()));
            pos += 4;
        }
        _ => return Err(DecodeError::BadOperand { arch: A, what: "disp kind" }),
    }
    Ok((reg, addr, width, sign, pos))
}

/// Encode one instruction for the x64 model.
pub(crate) fn encode(inst: &Inst) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(10);
    match inst {
        Inst::Halt => out.push(OP_HALT),
        Inst::Nop => out.push(OP_NOP),
        Inst::Trap => out.push(OP_TRAP),
        Inst::Ret => out.push(OP_RET),
        Inst::MovImm { dst, imm } => {
            check_reg(*dst)?;
            if let Ok(v) = i32::try_from(*imm) {
                out.push(OP_MOVIMM32);
                out.push(dst.0);
                out.extend_from_slice(&v.to_le_bytes());
            } else {
                out.push(OP_MOVIMM64);
                out.push(dst.0);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::MovReg { dst, src } => {
            check_reg(*dst)?;
            check_reg(*src)?;
            out.push(OP_MOVREG);
            out.push(reg_pair(*dst, *src));
        }
        Inst::Alu { op, dst, a, b } => {
            check_reg(*dst)?;
            check_reg(*a)?;
            check_reg(*b)?;
            out.push(OP_ALU_BASE + op.code());
            out.push(reg_pair(*dst, *a));
            out.push(b.0);
        }
        Inst::AluImm { op, dst, src, imm } => {
            check_reg(*dst)?;
            check_reg(*src)?;
            if let Ok(v) = i8::try_from(*imm) {
                out.push(OP_ALUIMM8_BASE + op.code());
                out.push(reg_pair(*dst, *src));
                out.push(v as u8);
            } else {
                out.push(OP_ALUIMM32_BASE + op.code());
                out.push(reg_pair(*dst, *src));
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::OrShl16 { .. } => return Err(unsupported("orshl16")),
        Inst::AddShl16 { .. } => return Err(unsupported("addis")),
        Inst::AddImm16 { .. } => return Err(unsupported("addi (16-bit)")),
        Inst::AdrPage { .. } => return Err(unsupported("adrp")),
        Inst::Cmp { a, b } => {
            check_reg(*a)?;
            check_reg(*b)?;
            out.push(OP_CMP);
            out.push(reg_pair(*a, *b));
        }
        Inst::CmpImm { a, imm } => {
            check_reg(*a)?;
            if let Ok(v) = i8::try_from(*imm) {
                out.push(OP_CMPIMM8);
                out.push(a.0);
                out.push(v as u8);
            } else {
                out.push(OP_CMPIMM32);
                out.push(a.0);
                out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        Inst::Load { dst, addr, width, sign } => {
            out.push(OP_LOAD);
            encode_mem(&mut out, *dst, addr, *width, *sign)?;
        }
        Inst::Store { src, addr, width } => {
            out.push(OP_STORE);
            encode_mem(&mut out, *src, addr, *width, false)?;
        }
        Inst::Lea { dst, addr } => {
            out.push(OP_LEA);
            encode_mem(&mut out, *dst, addr, Width::W8, false)?;
        }
        Inst::JumpMem { addr } => {
            out.push(OP_JMPMEM);
            encode_mem(&mut out, Reg(0), addr, Width::W8, false)?;
        }
        Inst::CallMem { addr } => {
            out.push(OP_CALLMEM);
            encode_mem(&mut out, Reg(0), addr, Width::W8, false)?;
        }
        Inst::Push { src } => {
            check_reg(*src)?;
            out.push(OP_PUSH_BASE | src.0);
        }
        Inst::Pop { dst } => {
            check_reg(*dst)?;
            out.push(OP_POP_BASE | dst.0);
        }
        Inst::Jump { offset } => {
            if let Ok(v) = i8::try_from(*offset) {
                out.push(OP_JMP_SHORT);
                out.push(v as u8);
            } else if let Ok(v) = i32::try_from(*offset) {
                out.push(OP_JMP_NEAR);
                out.extend_from_slice(&v.to_le_bytes());
            } else {
                return Err(EncodeError::BranchOutOfRange {
                    arch: A,
                    offset: *offset,
                    max: i64::from(i32::MAX),
                });
            }
        }
        Inst::Call { offset } => {
            let v = i32::try_from(*offset).map_err(|_| EncodeError::BranchOutOfRange {
                arch: A,
                offset: *offset,
                max: i64::from(i32::MAX),
            })?;
            out.push(OP_CALL_NEAR);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Inst::JumpCond { cond, offset } => {
            if let Ok(v) = i8::try_from(*offset) {
                out.push(OP_JCC_SHORT);
                out.push(cond.code());
                out.push(v as u8);
            } else if let Ok(v) = i32::try_from(*offset) {
                out.push(OP_JCC_NEAR);
                out.push(cond.code());
                out.extend_from_slice(&v.to_le_bytes());
            } else {
                return Err(EncodeError::BranchOutOfRange {
                    arch: A,
                    offset: *offset,
                    max: i64::from(i32::MAX),
                });
            }
        }
        Inst::JumpReg { src } => {
            check_reg(*src)?;
            out.push(OP_JMP_REG);
            out.push(src.0);
        }
        Inst::CallReg { src } => {
            check_reg(*src)?;
            out.push(OP_CALL_REG);
            out.push(src.0);
        }
        Inst::MoveToTar { .. } => return Err(unsupported("mtspr tar")),
        Inst::JumpTar => return Err(unsupported("bctar")),
        Inst::CallTar => return Err(unsupported("bctarl")),
        Inst::MoveFromLr { .. } => return Err(unsupported("mflr")),
        Inst::MoveToLr { .. } => return Err(unsupported("mtlr")),
        Inst::Sys { op, arg } => {
            check_reg(*arg)?;
            out.push(OP_SYS);
            out.push(op.code());
            out.push(arg.0);
        }
    }
    Ok(out)
}

/// Decode one instruction from the front of `bytes` on the x64 model.
pub(crate) fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    let trunc = |needed| DecodeError::Truncated { arch: A, needed, have: bytes.len() };
    let op = *bytes.first().ok_or(trunc(1))?;
    let need = |n: usize| if bytes.len() < n { Err(trunc(n)) } else { Ok(()) };
    let i32_at = |pos: usize| i32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
    match op {
        OP_HALT => Ok((Inst::Halt, 1)),
        OP_NOP => Ok((Inst::Nop, 1)),
        OP_TRAP => Ok((Inst::Trap, 1)),
        OP_RET => Ok((Inst::Ret, 1)),
        OP_MOVIMM64 => {
            need(10)?;
            let imm = i64::from_le_bytes(bytes[2..10].try_into().unwrap());
            Ok((Inst::MovImm { dst: Reg(bytes[1]), imm }, 10))
        }
        OP_MOVIMM32 => {
            need(6)?;
            Ok((Inst::MovImm { dst: Reg(bytes[1]), imm: i64::from(i32_at(2)) }, 6))
        }
        OP_MOVREG => {
            need(2)?;
            Ok((Inst::MovReg { dst: Reg(bytes[1] >> 4), src: Reg(bytes[1] & 0xF) }, 2))
        }
        _ if (OP_ALU_BASE..OP_ALU_BASE + 8).contains(&op) => {
            need(3)?;
            let aop = AluOp::from_code(op - OP_ALU_BASE)
                .ok_or(DecodeError::BadOperand { arch: A, what: "alu op" })?;
            Ok((
                Inst::Alu {
                    op: aop,
                    dst: Reg(bytes[1] >> 4),
                    a: Reg(bytes[1] & 0xF),
                    b: Reg(bytes[2]),
                },
                3,
            ))
        }
        _ if (OP_ALUIMM32_BASE..OP_ALUIMM32_BASE + 8).contains(&op) => {
            need(6)?;
            let aop = AluOp::from_code(op - OP_ALUIMM32_BASE).unwrap();
            Ok((
                Inst::AluImm {
                    op: aop,
                    dst: Reg(bytes[1] >> 4),
                    src: Reg(bytes[1] & 0xF),
                    imm: i32_at(2),
                },
                6,
            ))
        }
        _ if (OP_ALUIMM8_BASE..OP_ALUIMM8_BASE + 8).contains(&op) => {
            need(3)?;
            let aop = AluOp::from_code(op - OP_ALUIMM8_BASE).unwrap();
            Ok((
                Inst::AluImm {
                    op: aop,
                    dst: Reg(bytes[1] >> 4),
                    src: Reg(bytes[1] & 0xF),
                    imm: i32::from(bytes[2] as i8),
                },
                3,
            ))
        }
        OP_CMP => {
            need(2)?;
            Ok((Inst::Cmp { a: Reg(bytes[1] >> 4), b: Reg(bytes[1] & 0xF) }, 2))
        }
        OP_CMPIMM32 => {
            need(6)?;
            Ok((Inst::CmpImm { a: Reg(bytes[1]), imm: i32_at(2) }, 6))
        }
        OP_CMPIMM8 => {
            need(3)?;
            Ok((Inst::CmpImm { a: Reg(bytes[1]), imm: i32::from(bytes[2] as i8) }, 3))
        }
        OP_LOAD => {
            let (reg, addr, width, sign, n) = decode_mem(&bytes[1..], true)?;
            Ok((Inst::Load { dst: reg, addr, width, sign }, 1 + n))
        }
        OP_STORE => {
            let (reg, addr, width, _, n) = decode_mem(&bytes[1..], true)?;
            Ok((Inst::Store { src: reg, addr, width }, 1 + n))
        }
        OP_LEA => {
            let (reg, addr, _, _, n) = decode_mem(&bytes[1..], true)?;
            Ok((Inst::Lea { dst: reg, addr }, 1 + n))
        }
        OP_JMPMEM => {
            let (_, addr, _, _, n) = decode_mem(&bytes[1..], false)?;
            Ok((Inst::JumpMem { addr }, 1 + n))
        }
        OP_CALLMEM => {
            let (_, addr, _, _, n) = decode_mem(&bytes[1..], false)?;
            Ok((Inst::CallMem { addr }, 1 + n))
        }
        _ if (OP_PUSH_BASE..=OP_PUSH_BASE | 0xF).contains(&op) => {
            Ok((Inst::Push { src: Reg(op & 0xF) }, 1))
        }
        _ if (OP_POP_BASE..=OP_POP_BASE | 0xF).contains(&op) => {
            Ok((Inst::Pop { dst: Reg(op & 0xF) }, 1))
        }
        OP_JMP_SHORT => {
            need(2)?;
            Ok((Inst::Jump { offset: i64::from(bytes[1] as i8) }, 2))
        }
        OP_JMP_NEAR => {
            need(5)?;
            Ok((Inst::Jump { offset: i64::from(i32_at(1)) }, 5))
        }
        OP_CALL_NEAR => {
            need(5)?;
            Ok((Inst::Call { offset: i64::from(i32_at(1)) }, 5))
        }
        OP_JMP_REG => {
            need(2)?;
            Ok((Inst::JumpReg { src: Reg(bytes[1]) }, 2))
        }
        OP_CALL_REG => {
            need(2)?;
            Ok((Inst::CallReg { src: Reg(bytes[1]) }, 2))
        }
        OP_JCC_SHORT => {
            need(3)?;
            let cond = Cond::from_code(bytes[1])
                .ok_or(DecodeError::BadOperand { arch: A, what: "cond" })?;
            Ok((Inst::JumpCond { cond, offset: i64::from(bytes[2] as i8) }, 3))
        }
        OP_JCC_NEAR => {
            need(6)?;
            let cond = Cond::from_code(bytes[1])
                .ok_or(DecodeError::BadOperand { arch: A, what: "cond" })?;
            Ok((Inst::JumpCond { cond, offset: i64::from(i32_at(2)) }, 6))
        }
        OP_SYS => {
            need(3)?;
            let sop = SysOp::from_code(bytes[1])
                .ok_or(DecodeError::BadOperand { arch: A, what: "sys op" })?;
            Ok((Inst::Sys { op: sop, arg: Reg(bytes[2]) }, 3))
        }
        _ => Err(DecodeError::IllegalOpcode { arch: A, opcode: op }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst) {
        let bytes = encode(&inst).expect("encode");
        let (decoded, len) = decode(&bytes).expect("decode");
        assert_eq!(decoded, inst, "bytes: {bytes:x?}");
        assert_eq!(len, bytes.len());
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(Inst::Halt);
        roundtrip(Inst::Nop);
        roundtrip(Inst::Trap);
        roundtrip(Inst::Ret);
        roundtrip(Inst::Push { src: Reg(15) });
        roundtrip(Inst::Pop { dst: Reg(0) });
    }

    #[test]
    fn roundtrip_imm_forms() {
        roundtrip(Inst::MovImm { dst: Reg(3), imm: 42 });
        roundtrip(Inst::MovImm { dst: Reg(3), imm: 0x1234_5678_9abc });
        roundtrip(Inst::AluImm { op: AluOp::Add, dst: Reg(1), src: Reg(2), imm: 5 });
        roundtrip(Inst::AluImm { op: AluOp::Sub, dst: Reg(1), src: Reg(2), imm: 100_000 });
        roundtrip(Inst::CmpImm { a: Reg(9), imm: -2 });
        roundtrip(Inst::CmpImm { a: Reg(9), imm: 1 << 20 });
    }

    #[test]
    fn roundtrip_mem_forms() {
        roundtrip(Inst::Load {
            dst: Reg(2),
            addr: Addr::base_disp(Reg(4), -16),
            width: Width::W8,
            sign: false,
        });
        roundtrip(Inst::Load {
            dst: Reg(2),
            addr: Addr::base_index(Reg(5), Reg(6), 4),
            width: Width::W4,
            sign: true,
        });
        roundtrip(Inst::Load {
            dst: Reg(2),
            addr: Addr::pc_rel(0x1000),
            width: Width::W8,
            sign: false,
        });
        roundtrip(Inst::Store {
            src: Reg(7),
            addr: Addr::base_disp(Reg(4), 0x2000),
            width: Width::W2,
        });
        roundtrip(Inst::Lea { dst: Reg(8), addr: Addr::pc_rel(-64) });
        roundtrip(Inst::JumpMem { addr: Addr::base_disp(Reg(4), 8) });
        roundtrip(Inst::CallMem { addr: Addr::pc_rel(256) });
    }

    #[test]
    fn roundtrip_branches() {
        roundtrip(Inst::Jump { offset: 5 });
        roundtrip(Inst::Jump { offset: -120 });
        roundtrip(Inst::Jump { offset: 1 << 20 });
        roundtrip(Inst::Call { offset: -4096 });
        roundtrip(Inst::JumpCond { cond: Cond::UGt, offset: 64 });
        roundtrip(Inst::JumpCond { cond: Cond::Ne, offset: 1 << 16 });
        roundtrip(Inst::JumpReg { src: Reg(11) });
        roundtrip(Inst::CallReg { src: Reg(12) });
    }

    #[test]
    fn branch_length_selection() {
        assert_eq!(encode(&Inst::Jump { offset: 100 }).unwrap().len(), 2);
        assert_eq!(encode(&Inst::Jump { offset: 1000 }).unwrap().len(), 5);
        assert_eq!(encode(&Inst::JumpCond { cond: Cond::Eq, offset: 50 }).unwrap().len(), 3);
        assert_eq!(encode(&Inst::JumpCond { cond: Cond::Eq, offset: 5000 }).unwrap().len(), 6);
    }

    #[test]
    fn illegal_opcode_is_an_error() {
        assert!(matches!(
            decode(&[0xFF, 0, 0, 0]),
            Err(DecodeError::IllegalOpcode { opcode: 0xFF, .. })
        ));
    }

    #[test]
    fn risc_only_insts_rejected() {
        assert!(encode(&Inst::JumpTar).is_err());
        assert!(encode(&Inst::AdrPage { dst: Reg(0), page_delta: 1 }).is_err());
        assert!(encode(&Inst::MoveFromLr { dst: Reg(0) }).is_err());
    }

    #[test]
    fn register_bounds_checked() {
        assert!(encode(&Inst::MovReg { dst: Reg(16), src: Reg(0) }).is_err());
        assert!(encode(&Inst::Push { src: Reg(31) }).is_err());
    }

    #[test]
    fn out_of_range_branch_rejected() {
        assert!(matches!(
            encode(&Inst::Jump { offset: 3 << 31 }),
            Err(EncodeError::BranchOutOfRange { .. })
        ));
    }
}

//! Property tests: every encodable instruction round-trips through the
//! decoder, and decoding never panics on arbitrary bytes.

use icfgp_isa::{decode, encode, Addr, AluOp, Arch, Cond, Inst, Reg, SysOp, Width};
use proptest::prelude::*;

fn arb_reg(max: u8) -> impl Strategy<Value = Reg> {
    (0..max).prop_map(Reg)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W1), Just(Width::W2), Just(Width::W4), Just(Width::W8)]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..10).prop_map(|c| Cond::from_code(c).unwrap())
}

fn arb_aluop() -> impl Strategy<Value = AluOp> {
    (0u8..8).prop_map(|c| AluOp::from_code(c).unwrap())
}

fn arb_sysop() -> impl Strategy<Value = SysOp> {
    (0u8..4).prop_map(|c| SysOp::from_code(c).unwrap())
}

fn arb_arch() -> impl Strategy<Value = Arch> {
    prop_oneof![Just(Arch::X64), Just(Arch::Ppc64le), Just(Arch::Aarch64)]
}

/// Instructions that exist on every architecture, with operand values
/// kept within the tightest (RISC) encoding limits.
fn arb_common_inst(gprs: u8) -> impl Strategy<Value = Inst> {
    let r = move || arb_reg(gprs);
    prop_oneof![
        Just(Inst::Halt),
        Just(Inst::Nop),
        Just(Inst::Trap),
        Just(Inst::Ret),
        (r(), -32768i64..32768).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (r(), r()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (arb_aluop(), r(), r(), r()).prop_map(|(op, dst, a, b)| Inst::Alu { op, dst, a, b }),
        (arb_aluop(), r(), r(), -2048i32..2048)
            .prop_map(|(op, dst, src, imm)| Inst::AluImm { op, dst, src, imm }),
        (r(), r()).prop_map(|(a, b)| Inst::Cmp { a, b }),
        (r(), -32768i32..32768).prop_map(|(a, imm)| Inst::CmpImm { a, imm }),
        (r(), r(), -1024i64..1024, arb_width(), any::<bool>()).prop_map(
            |(dst, base, disp, width, sign)| Inst::Load {
                dst,
                addr: Addr::base_disp(base, disp),
                width,
                sign,
            }
        ),
        (r(), r(), r(), 0u8..4, arb_width(), any::<bool>()).prop_map(
            |(dst, base, index, slog, width, sign)| Inst::Load {
                dst,
                addr: Addr::base_index(base, index, 1 << slog),
                width,
                sign,
            }
        ),
        (r(), r(), -1024i64..1024, arb_width()).prop_map(|(src, base, disp, width)| {
            Inst::Store { src, addr: Addr::base_disp(base, disp), width }
        }),
        ((-(1i64 << 22)..(1i64 << 22)).prop_map(|w| Inst::Jump { offset: w * 4 })),
        ((-(1i64 << 22)..(1i64 << 22)).prop_map(|w| Inst::Call { offset: w * 4 })),
        (arb_cond(), -(1i64 << 17)..(1i64 << 17))
            .prop_map(|(cond, w)| Inst::JumpCond { cond, offset: w * 4 }),
        (arb_sysop(), r()).prop_map(|(op, arg)| Inst::Sys { op, arg }),
    ]
}

/// Instructions shared by both RISC models but absent on x64.
fn arb_risc_common_inst() -> impl Strategy<Value = Inst> {
    let r = || arb_reg(32);
    prop_oneof![
        (r(), any::<u16>()).prop_map(|(dst, imm)| Inst::OrShl16 { dst, imm }),
        r().prop_map(|dst| Inst::MoveFromLr { dst }),
        r().prop_map(|src| Inst::MoveToLr { src }),
    ]
}

proptest! {
    #[test]
    fn common_insts_roundtrip_on_every_arch(inst in arb_common_inst(16), arch in arb_arch()) {
        let bytes = encode(&inst, arch).expect("common instruction must encode");
        let (decoded, len) = decode(&bytes, arch).expect("must decode");
        prop_assert_eq!(&decoded, &inst);
        prop_assert_eq!(len, bytes.len());
        if arch.is_fixed_width() {
            prop_assert_eq!(len, 4);
        } else {
            prop_assert!(len <= arch.max_inst_len());
        }
    }

    #[test]
    fn risc_common_insts_roundtrip(inst in arb_risc_common_inst(),
                                   arch in prop_oneof![Just(Arch::Ppc64le), Just(Arch::Aarch64)]) {
        let bytes = encode(&inst, arch).expect("RISC-common instruction must encode");
        let (decoded, len) = decode(&bytes, arch).expect("must decode");
        prop_assert_eq!(decoded, inst);
        prop_assert_eq!(len, 4);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..16),
                           arch in arb_arch()) {
        let _ = decode(&bytes, arch);
    }

    #[test]
    fn x64_wide_operands_roundtrip(dst in arb_reg(16), imm in any::<i64>()) {
        let inst = Inst::MovImm { dst, imm };
        let bytes = encode(&inst, Arch::X64).unwrap();
        let (decoded, _) = decode(&bytes, Arch::X64).unwrap();
        prop_assert_eq!(decoded, inst);
    }

    #[test]
    fn x64_pc_rel_roundtrip(dst in arb_reg(16), disp in any::<i32>(), width in arb_width()) {
        let inst = Inst::Load { dst, addr: Addr::pc_rel(i64::from(disp)), width, sign: false };
        let bytes = encode(&inst, Arch::X64).unwrap();
        let (decoded, _) = decode(&bytes, Arch::X64).unwrap();
        prop_assert_eq!(decoded, inst);
    }

    #[test]
    fn risc_branch_reach_boundary(words in -(1i64 << 26)..(1i64 << 26)) {
        let offset = words * 4;
        let inst = Inst::Jump { offset };
        let ppc_ok = encode(&inst, Arch::Ppc64le).is_ok();
        let a64_ok = encode(&inst, Arch::Aarch64).is_ok();
        prop_assert_eq!(ppc_ok, (-(1i64 << 23)..(1i64 << 23)).contains(&words));
        prop_assert_eq!(a64_ok, (-(1i64 << 25)..(1i64 << 25)).contains(&words));
    }

    #[test]
    fn decoded_inst_reencodes_identically(inst in arb_common_inst(16), arch in arb_arch()) {
        // decode(encode(i)) re-encodes to the same bytes: the encoder is
        // deterministic and form selection is canonical.
        let bytes = encode(&inst, arch).unwrap();
        let (decoded, _) = decode(&bytes, arch).unwrap();
        let bytes2 = encode(&decoded, arch).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }
}

//! The incremental rewrite cache (the "analyse once, rewrite cheaply"
//! engine).
//!
//! Every expensive per-function artefact of the pipeline is memoised
//! in a [`RewriteCache`] under a **content-addressed key**:
//!
//! * per-function CFGs — keyed by `(binary fingerprint, function
//!   range, function bytes, fault-sliced analysis config, boundary
//!   prefix)`, so a fault injected into one function never invalidates
//!   its neighbours and a degradation-ladder round re-analyses
//!   nothing;
//! * relocation *fragments* (address-independent per-function entry
//!   lists, sized) — keyed by the CFG identity plus the rewrite-config
//!   bits relocation reads and the function's ladder rung;
//! * emitted per-function code — keyed by the fragment identity plus
//!   its layout inputs (base address, resolved branch targets, clone
//!   addresses);
//! * liveness results, the boundary pre-pass, and whole
//!   [`BinaryAnalysis`] results.
//!
//! There is no explicit invalidation: demoting a function on the
//! ladder changes its keys (a miss) while every untouched function
//! keeps hitting. [`analyze_incremental`] is the parallel analysis
//! driver; it reproduces the sequential [`icfgp_cfg::analyze`] result
//! exactly (see its docs for the replay argument).
//!
//! All fingerprints use the zero-keyed [`DefaultHasher`], which is
//! deterministic within and across processes for a given Rust
//! release; keys are 64-bit, so a cross-content collision is
//! astronomically unlikely but not impossible — acceptable for a
//! cache whose inputs are not adversarial.
//!
//! # Persistence and cross-binary sharing
//!
//! A cache may be backed by a crash-safe on-disk
//! [`CacheStore`] ([`RewriteCache::with_store`]): every stage lookup falls through to
//! the store on an in-memory miss, and computed entries are buffered
//! for the store's next flush. Store damage of any kind degrades to a
//! recompute, never to different bytes.
//!
//! Function-analysis entries are keyed on the *function's own
//! analysis inputs* (its address range and bytes, the environment
//! skeleton, the sliced config, the boundary prefix) rather than the
//! whole-binary fingerprint, so unchanged functions keep hitting
//! across edits to *other* functions — including across processes and
//! across different binaries sharing code. Whatever those inputs
//! cannot capture (jump-table data bytes live outside the function
//! range) is recorded as an explicit dependency read-set
//! (`FuncDep`) and re-validated against the binary at every lookup;
//! a failed validation is a miss.
//!
//! Fragment and emit entries share across binaries too: their keys
//! derive from the weak per-function analysis identity plus a content
//! fingerprint of the analysed CFG itself (so two binaries whose
//! out-of-range table data differs get different keys, with no
//! read-set to arbitrate), and the cached artefacts are
//! position-independent — fragments always were, and emissions are
//! canonical base-0 bytes plus a patch-point list the relocation
//! fix-up pass re-applies under the real layout (see the `relocate`
//! module). Each candidate still carries its
//! fingerprint and is re-validated per lookup, mirroring the analysis
//! path: a mismatch can only mean a logically corrupted record, which
//! is quarantined and recomputed. Liveness stays per-binary.
//!
//! Hits whose record was first computed for a *different* binary are
//! counted separately ([`StageStats::shared`]), so `--stats` and the
//! fleet bench can show how much cross-binary reuse happened.

use crate::pool;
use crate::relocate::{FuncFragment, RelocEmit};
use crate::rewriter::RewriteError;
use crate::store::{Stage, StoreBackend, StoreStats};
use crate::trace::{StoreSrc, Trace, TraceEvent};
use icfgp_cfg::{
    analyze_function_isolated, assemble_analysis, prepass_boundaries, AnalysisConfig,
    BinaryAnalysis, FuncCfg, FuncStatus, LivenessResult,
};
use icfgp_obj::Binary;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters for one cached stage of the rewrite pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// The subset of `hits` whose cached record was first computed for
    /// a *different* binary (cross-binary weak-key reuse). Zero for
    /// stages that never share across binaries.
    pub shared: u64,
}

impl StageStats {
    /// Total lookups.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// Wall-clock nanoseconds spent in each rewrite stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StageTimings {
    /// Binary analysis (or its cache lookup).
    pub analysis_ns: u64,
    /// Relocation: fragments, layout, emission, clone fill.
    pub relocate_ns: u64,
    /// Trampoline placement over the shared scratch pool.
    pub placement_ns: u64,
    /// Output-binary assembly (sections, maps, report).
    pub assemble_ns: u64,
    /// End-to-end rewrite time.
    pub total_ns: u64,
}

/// Cache-hit and timing counters for one rewrite, attached to
/// [`RewriteOutcome`](crate::RewriteOutcome) and printed by
/// `icfgp rewrite --stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RewriteStats {
    /// Worker threads the rewrite ran with.
    pub threads: usize,
    /// The whole [`BinaryAnalysis`] was served from the cache.
    pub analysis_memo_hit: bool,
    /// Parallel-analysis replay rounds (0 on a memo hit).
    pub analysis_rounds: u32,
    /// Per-function CFG analyses.
    pub func_analyses: StageStats,
    /// Per-function relocation fragments.
    pub fragments: StageStats,
    /// Per-function code emissions.
    pub emits: StageStats,
    /// Per-function liveness results.
    pub liveness: StageStats,
    /// Stage wall-clock timings.
    pub timings: StageTimings,
    /// The five slowest functions this rewrite touched, as
    /// `(entry, total_ns)` across analysis + fragment + emit, sorted
    /// slowest first and zero-padded — `rewrite --stats` prints these
    /// so watchdog budgets can be tuned against real offenders.
    pub slowest: [(u64, u64); 5],
    /// Persistent-store activity during this rewrite (all zero when no
    /// store is attached).
    pub store: StoreStats,
}

/// Fold per-function `(entry, ns)` samples into the top-5 `slowest`
/// array (summing samples for the same entry first).
#[must_use]
pub fn slowest_of(samples: &[(u64, u64)]) -> [(u64, u64); 5] {
    let mut per_func: BTreeMap<u64, u64> = BTreeMap::new();
    for &(entry, ns) in samples {
        *per_func.entry(entry).or_insert(0) += ns;
    }
    let mut all: Vec<(u64, u64)> = per_func.into_iter().collect();
    // Slowest first; ties broken by entry address for determinism.
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut top = [(0u64, 0u64); 5];
    for (slot, &(entry, ns)) in top.iter_mut().zip(all.iter()) {
        *slot = (entry, ns);
    }
    top
}

/// Hash a `Hash` value with the deterministic zero-keyed hasher.
pub(crate) fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// splitmix64 — used for the order-independent (XOR-folded) boundary
/// set hash, where each element must be well mixed on its own.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A key guaranteed never to collide with any content-derived key:
/// used as a fallback when a key input is unavailable, forcing a
/// cache miss instead of a wrong hit.
pub(crate) fn unique_key() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    // Fold a process-unique counter so even two caches never share it.
    mix(NEXT.fetch_add(1, Ordering::Relaxed)) ^ 0xDEAD_BEEF_0BAD_CAFE
}

/// A content fingerprint of a whole binary (all sections, symbols,
/// relocations and metadata), via its structural `Hash`. Every
/// per-item cache key folds this in, so a cache can be shared across
/// binaries without cross-talk. Cheap enough to recompute per rewrite
/// (it is the memo-lookup cost on a fully warm cache).
#[must_use]
pub fn binary_fingerprint(binary: &Binary) -> u64 {
    hash_of(binary)
}

/// A content fingerprint of one analysed CFG, **excluding the
/// function name**. Fragment construction never reads the name, so a
/// renamed-but-otherwise-identical function (the common case across
/// near-identical fleet binaries) fingerprints equal and shares its
/// fragment. Folded into the fragment key — a cached payload whose
/// recorded fingerprint disagrees with the key's can only be
/// corruption, and quarantines.
pub(crate) fn cfg_fingerprint(cfg: &FuncCfg) -> u64 {
    let mut h = DefaultHasher::new();
    0xCF97u64.hash(&mut h);
    cfg.entry.hash(&mut h);
    cfg.start.hash(&mut h);
    cfg.end.hash(&mut h);
    cfg.blocks.hash(&mut h);
    cfg.insts.hash(&mut h);
    cfg.jump_tables.hash(&mut h);
    cfg.indirect_tailcalls.hash(&mut h);
    cfg.tail_calls.hash(&mut h);
    cfg.call_sites.hash(&mut h);
    cfg.landing_pads.hash(&mut h);
    cfg.inline_data.hash(&mut h);
    cfg.has_indirect_calls.hash(&mut h);
    cfg.fp_landing_targets.hash(&mut h);
    cfg.status.hash(&mut h);
    h.finish()
}

/// The *environment* fingerprint a per-function analysis runs under:
/// everything `analyze_function_isolated` can observe about the binary
/// **outside** the function's own byte range, other than raw data
/// bytes (those are covered by [`FuncDep::Bytes`]). That is: the
/// architecture, PIE-ness, the TOC base, the Go line table, and the
/// section skeleton (ranges and flags — `section_at` classification
/// queries). Unwind entries are folded per function (analysis only
/// reads the entries inside the function's range), so one function's
/// unwind edit does not invalidate its neighbours. Two binaries with
/// equal environment fingerprints analyse a byte-identical function
/// at the same address identically, which is what lets analysis
/// entries be shared across binaries.
fn env_fingerprint(binary: &Binary) -> u64 {
    let mut h = DefaultHasher::new();
    0xE4F1u64.hash(&mut h);
    binary.arch.hash(&mut h);
    binary.meta.hash(&mut h);
    binary.toc_base.hash(&mut h);
    binary.pclntab.hash(&mut h);
    for s in binary.sections() {
        s.addr().hash(&mut h);
        s.end().hash(&mut h);
        s.flags().hash(&mut h);
    }
    h.finish()
}

/// One recorded out-of-range read of a cached function analysis — the
/// part of its input the content-addressed key cannot see. Persisted
/// alongside the CFG and re-validated against the binary at every
/// lookup; any mismatch turns the lookup into a miss.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum FuncDep {
    /// The analysis read `[addr, addr+len)` (jump-table data, including
    /// the one-entry extension probe) and saw bytes hashing to `hash`.
    Bytes {
        /// Read start address.
        addr: u64,
        /// Read length in bytes.
        len: u64,
        /// `hash_of` of `binary.read(addr, len).ok()` — unmapped reads
        /// only match unmapped reads.
        hash: u64,
    },
    /// The analysis outcome could depend on reads the key does not
    /// enumerate (failed analyses, unresolved jumps): only the exact
    /// same binary may reuse it.
    BinaryExact {
        /// Whole-binary fingerprint.
        fp: u64,
    },
}

/// The dependency read-set of one analysed function (see [`FuncDep`]).
fn func_deps(binary: &Binary, binary_fp: u64, cfg: &FuncCfg) -> Vec<FuncDep> {
    let mut deps = Vec::new();
    if cfg.status != FuncStatus::Ok {
        // The failure path may have read anything; pin to this binary.
        deps.push(FuncDep::BinaryExact { fp: binary_fp });
        return deps;
    }
    for jt in &cfg.jump_tables {
        if jt.in_text && jt.table_addr >= cfg.start && jt.table_addr < cfg.end {
            continue; // table data inside the function range: keyed already
        }
        // Cover the resolved entries plus the slicer's one-entry
        // extension probe past the end.
        let len = (jt.count + 1) * u64::from(jt.entry_width);
        let hash = hash_of(&binary.read(jt.table_addr, len as usize).ok());
        deps.push(FuncDep::Bytes { addr: jt.table_addr, len, hash });
    }
    deps
}

/// Whether a cached analysis' recorded reads still hold against
/// `binary`.
fn deps_hold(deps: &[FuncDep], binary: &Binary, binary_fp: u64) -> bool {
    deps.iter().all(|d| match d {
        FuncDep::Bytes { addr, len, hash } => {
            hash_of(&binary.read(*addr, *len as usize).ok()) == *hash
        }
        FuncDep::BinaryExact { fp } => *fp == binary_fp,
    })
}

/// The persisted form of one function-analysis entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FuncPayload {
    cfg: FuncCfg,
    deps: Vec<FuncDep>,
    /// Fingerprint of the binary this entry was first computed for —
    /// only used to classify a hit as cross-binary (shared).
    origin_fp: u64,
}

/// An in-memory function-analysis entry: the CFG plus its read-set.
#[derive(Clone)]
struct FuncEntry {
    cfg: Arc<FuncCfg>,
    deps: Arc<Vec<FuncDep>>,
    origin_fp: u64,
}

/// How a lookup was served: from the cache or computed, and whether
/// the cached record originated from a different binary.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Lookup {
    pub(crate) hit: bool,
    pub(crate) shared: bool,
}

impl Lookup {
    fn hit(origin_fp: u64, binary_fp: u64) -> Lookup {
        Lookup { hit: true, shared: origin_fp != binary_fp }
    }

    const MISS: Lookup = Lookup { hit: false, shared: false };
}

/// The persisted form of one relocation fragment: the fragment plus
/// the CFG content fingerprint it was built from. The fingerprint is
/// folded into the fragment key, so a well-formed record always
/// matches — re-validation at lookup (mirroring the analysis path)
/// catches logically corrupted records, which are quarantined and
/// recomputed instead of mis-relocating.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FragPayload {
    frag: FuncFragment,
    cfg_fp: u64,
    origin_fp: u64,
}

/// An in-memory fragment entry (see [`FragPayload`]).
#[derive(Clone)]
struct FragEntry {
    frag: Arc<FuncFragment>,
    cfg_fp: u64,
    origin_fp: u64,
}

/// The persisted form of one canonical (position-independent)
/// emission. Validated against its fragment at every lookup.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EmitPayload {
    emit: RelocEmit,
    origin_fp: u64,
}

/// An in-memory emission entry (see [`EmitPayload`]).
#[derive(Clone)]
struct EmitEntry {
    emit: Arc<RelocEmit>,
    origin_fp: u64,
}

/// An armed corrupt-patch-point fault (chaos): probability of
/// deterministically corrupting a fragment/emit record as it is read
/// back from the persistent store, *after* checksum validation — the
/// logical-corruption class the per-lookup re-validation must catch.
#[derive(Debug, Clone, Copy)]
struct PatchFault {
    seed: u64,
    probability: f64,
}

impl PatchFault {
    /// Deterministic per-key draw (same key always draws the same).
    fn fires(&self, key: u64) -> bool {
        self.probability > 0.0
            && mix(self.seed ^ key) % 10_000 < (self.probability * 10_000.0) as u64
    }
}

/// The boundary pre-pass result with its XOR-folded element hash.
struct Prepass {
    set: BTreeSet<u64>,
    hash: u64,
}

/// A memoised whole-binary analysis.
#[derive(Clone)]
struct AnalysisMemo {
    analysis: Arc<BinaryAnalysis>,
    func_keys: Arc<BTreeMap<u64, u64>>,
    weak_keys: Arc<BTreeMap<u64, u64>>,
    rounds: u32,
}

#[derive(Default)]
struct Maps {
    prepass: HashMap<u64, Arc<Prepass>>,
    analyses: HashMap<(u64, u64), AnalysisMemo>,
    funcs: HashMap<u64, FuncEntry>,
    liveness: HashMap<u64, Arc<LivenessResult>>,
    fragments: HashMap<u64, FragEntry>,
    emits: HashMap<u64, EmitEntry>,
    audits: HashMap<u64, Arc<icfgp_audit::AuditReport>>,
}

/// The content-addressed rewrite cache. Cheap to create, safe to
/// share across threads, rewrites, ladder rounds and fault seeds —
/// keys are self-describing, so reuse never changes results, only
/// how fast they arrive. Optionally backed by a persistent
/// [`CacheStore`] ([`RewriteCache::with_store`]).
///
/// Every lookup emits a [`TraceEvent::CacheLookup`] onto the cache's
/// trace spine; when the cache is backed by a store, the store's
/// trace is adopted so cache-level and store-level events share one
/// registry (and one [`RewriteStats`] projection).
pub struct RewriteCache {
    inner: Mutex<Maps>,
    store: Option<Arc<dyn StoreBackend>>,
    trace: Arc<Trace>,
    /// Chaos: corrupt fragment/emit records read back from the store
    /// (armed by [`crate::FaultPlan::arm_cached`]).
    patch_fault: Mutex<Option<PatchFault>>,
}

impl Default for RewriteCache {
    fn default() -> RewriteCache {
        RewriteCache {
            inner: Mutex::new(Maps::default()),
            store: None,
            trace: Trace::new(),
            patch_fault: Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for RewriteCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.inner.lock().expect("cache poisoned");
        f.debug_struct("RewriteCache")
            .field("analyses", &m.analyses.len())
            .field("funcs", &m.funcs.len())
            .field("fragments", &m.fragments.len())
            .field("emits", &m.emits.len())
            .field("liveness", &m.liveness.len())
            .field("audits", &m.audits.len())
            .finish()
    }
}

impl RewriteCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> RewriteCache {
        RewriteCache::default()
    }

    /// An empty in-memory cache backed by a persistent store: lookups
    /// fall through to the store, computed entries are buffered for
    /// its next [`StoreBackend::flush`]. Takes any backend — the
    /// local [`CacheStore`](crate::store::CacheStore) or a
    /// [`RemoteStore`](crate::net::RemoteStore).
    #[must_use]
    pub fn with_store<S: StoreBackend + 'static>(store: Arc<S>) -> RewriteCache {
        RewriteCache::with_backend(store)
    }

    /// [`RewriteCache::with_store`] over an already-erased backend.
    /// The backend's trace spine is adopted as the cache's, so both
    /// layers fold into one registry.
    #[must_use]
    pub fn with_backend(store: Arc<dyn StoreBackend>) -> RewriteCache {
        RewriteCache {
            inner: Mutex::new(Maps::default()),
            trace: store.trace(),
            store: Some(store),
            patch_fault: Mutex::new(None),
        }
    }

    /// An empty store-less cache emitting onto an existing trace
    /// spine (e.g. a chaos campaign's shared collector).
    #[must_use]
    pub fn with_trace(trace: Arc<Trace>) -> RewriteCache {
        RewriteCache { trace, ..RewriteCache::default() }
    }

    /// The trace spine this cache (and its store, if any) emits
    /// through.
    #[must_use]
    pub fn trace(&self) -> Arc<Trace> {
        Arc::clone(&self.trace)
    }

    /// Which registry source slot the attached store reports under
    /// (`None` without a store).
    #[must_use]
    pub fn store_src(&self) -> Option<StoreSrc> {
        self.store.as_ref().map(|s| s.trace_src())
    }

    fn note(&self, stage: Stage, key: u64, lk: Lookup) {
        self.trace.emit(TraceEvent::CacheLookup {
            stage,
            key,
            hit: lk.hit,
            shared: lk.shared,
        });
    }

    /// Chaos: with probability `probability` (deterministic per key,
    /// seeded), corrupt each fragment/emit record as it is read back
    /// from the persistent store — after the store's checksum passes,
    /// so only the per-lookup re-validation stands between the
    /// corrupted patch list and a mis-fixed-up branch. A detected
    /// corruption quarantines the record and recomputes; output bytes
    /// never change.
    pub fn arm_patch_corruption(&self, seed: u64, probability: f64) {
        *self.patch_fault.lock().expect("fault poisoned") =
            Some(PatchFault { seed, probability });
    }

    fn patch_fault_fires(&self, key: u64) -> bool {
        self.patch_fault
            .lock()
            .expect("fault poisoned")
            .is_some_and(|f| f.fires(key))
    }

    /// The attached persistent store backend, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<dyn StoreBackend>> {
        self.store.as_ref()
    }

    /// Flush the attached store (no-op without one). Returns the
    /// number of records persisted.
    pub fn flush_store(&self) -> usize {
        self.store.as_ref().map_or(0, |s| s.flush())
    }

    /// Counter snapshot of the attached store (zeroes without one).
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.store.as_ref().map_or_else(StoreStats::default, |s| s.stats())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Maps> {
        self.inner.lock().expect("cache poisoned")
    }

    /// Persisted-store lookup: decode failures quarantine the record
    /// and count as a miss, never an error.
    fn store_get<T: serde::Deserialize>(&self, stage: Stage, key: u64) -> Option<T> {
        let store = self.store.as_ref()?;
        let payload = store.get(stage, key)?;
        match serde_json::from_slice(&payload) {
            Ok(v) => Some(v),
            Err(e) => {
                store.quarantine_record(stage, key, &format!("{e:?}"));
                None
            }
        }
    }

    fn store_put<T: Serialize>(&self, stage: Stage, key: u64, value: &T) {
        if let Some(store) = &self.store {
            if let Ok(bytes) = serde_json::to_vec(value) {
                store.put(stage, key, bytes);
            }
        }
    }

    fn prepass(&self, binary_fp: u64, binary: &Binary) -> Arc<Prepass> {
        if let Some(p) = self.lock().prepass.get(&binary_fp) {
            return p.clone();
        }
        let set = prepass_boundaries(binary);
        let hash = set.iter().fold(0u64, |h, &a| h ^ mix(a));
        let p = Arc::new(Prepass { set, hash });
        self.lock()
            .prepass
            .entry(binary_fp)
            .or_insert_with(|| p.clone())
            .clone()
    }

    /// Look up or compute a per-function CFG. The lookup outcome is
    /// emitted onto the trace spine (`Stage::Func`), not returned.
    ///
    /// Keys are *weak* — they omit whatever the analysis read outside
    /// the function's byte range — so every candidate (in-memory or
    /// persisted) carries its [`FuncDep`] read-set and is validated
    /// against `binary` before being returned; a stale candidate is
    /// evicted and recomputed.
    pub(crate) fn func(
        &self,
        key: u64,
        binary: &Binary,
        binary_fp: u64,
        compute: impl FnOnce() -> FuncCfg,
    ) -> Arc<FuncCfg> {
        {
            let mut m = self.lock();
            if let Some(e) = m.funcs.get(&key) {
                if deps_hold(&e.deps, binary, binary_fp) {
                    let got = e.cfg.clone();
                    let lk = Lookup::hit(e.origin_fp, binary_fp);
                    drop(m);
                    self.note(Stage::Func, key, lk);
                    return got;
                }
                m.funcs.remove(&key);
            }
        }
        if let Some(p) = self.store_get::<FuncPayload>(Stage::Func, key) {
            if deps_hold(&p.deps, binary, binary_fp) {
                let entry = FuncEntry {
                    cfg: Arc::new(p.cfg),
                    deps: Arc::new(p.deps),
                    origin_fp: p.origin_fp,
                };
                let got = self
                    .lock()
                    .funcs
                    .entry(key)
                    .or_insert_with(|| entry.clone())
                    .clone();
                self.note(Stage::Func, key, Lookup::hit(got.origin_fp, binary_fp));
                return got.cfg;
            }
            // A different binary legitimately reusing the weak key:
            // not corruption, just a miss (the recompute replaces it).
        }
        let cfg = compute();
        let deps = func_deps(binary, binary_fp, &cfg);
        self.store_put(
            Stage::Func,
            key,
            &FuncPayload { cfg: cfg.clone(), deps: deps.clone(), origin_fp: binary_fp },
        );
        let entry = FuncEntry { cfg: Arc::new(cfg), deps: Arc::new(deps), origin_fp: binary_fp };
        let mut m = self.lock();
        let got = m.funcs.entry(key).or_insert(entry).clone();
        drop(m);
        self.note(Stage::Func, key, Lookup::MISS);
        got.cfg
    }

    /// Look up or compute a per-function liveness result. The lookup
    /// outcome is emitted onto the trace spine (`Stage::Liveness`).
    pub(crate) fn liveness(
        &self,
        key: u64,
        compute: impl FnOnce() -> LivenessResult,
    ) -> Arc<LivenessResult> {
        if let Some(v) = self.lock().liveness.get(&key) {
            let got = v.clone();
            self.note(Stage::Liveness, key, Lookup { hit: true, shared: false });
            return got;
        }
        if let Some(v) = self.store_get::<LivenessResult>(Stage::Liveness, key) {
            let v = Arc::new(v);
            let got = self.lock().liveness.entry(key).or_insert_with(|| v.clone()).clone();
            self.note(Stage::Liveness, key, Lookup { hit: true, shared: false });
            return got;
        }
        let v = Arc::new(compute());
        self.store_put(Stage::Liveness, key, &*v);
        let got = self
            .lock()
            .liveness
            .entry(key)
            .or_insert_with(|| v.clone())
            .clone();
        self.note(Stage::Liveness, key, Lookup::MISS);
        got
    }

    /// Look up or build a per-function relocation fragment. Errors are
    /// not cached (they abort the rewrite anyway).
    ///
    /// The key is position-independent and shared across binaries;
    /// `cfg_fp` (the CFG content fingerprint folded into the key) is
    /// re-validated against every candidate. A well-formed record
    /// always matches, so a mismatch means logical corruption: the
    /// record is quarantined and the fragment recomputed — output
    /// bytes never change.
    pub(crate) fn fragment(
        &self,
        key: u64,
        cfg_fp: u64,
        binary_fp: u64,
        compute: impl FnOnce() -> Result<FuncFragment, RewriteError>,
    ) -> Result<Arc<FuncFragment>, RewriteError> {
        {
            let mut m = self.lock();
            if let Some(e) = m.fragments.get(&key) {
                if e.cfg_fp == cfg_fp {
                    let got = e.frag.clone();
                    let lk = Lookup::hit(e.origin_fp, binary_fp);
                    drop(m);
                    self.note(Stage::Fragment, key, lk);
                    return Ok(got);
                }
                m.fragments.remove(&key);
            }
        }
        if let Some(mut p) = self.store_get::<FragPayload>(Stage::Fragment, key) {
            if self.patch_fault_fires(key) {
                // Injected logical corruption: flip the validation
                // fingerprint so the record no longer matches its key.
                p.cfg_fp ^= 1;
            }
            if p.cfg_fp == cfg_fp {
                let entry = FragEntry {
                    frag: Arc::new(p.frag),
                    cfg_fp: p.cfg_fp,
                    origin_fp: p.origin_fp,
                };
                let got = self
                    .lock()
                    .fragments
                    .entry(key)
                    .or_insert_with(|| entry.clone())
                    .clone();
                self.note(Stage::Fragment, key, Lookup::hit(got.origin_fp, binary_fp));
                return Ok(got.frag);
            }
            if let Some(store) = &self.store {
                store.quarantine_record(
                    Stage::Fragment,
                    key,
                    "fragment failed CFG-fingerprint re-validation",
                );
            }
        }
        let v = Arc::new(compute()?);
        self.store_put(
            Stage::Fragment,
            key,
            &FragPayload { frag: (*v).clone(), cfg_fp, origin_fp: binary_fp },
        );
        let entry = FragEntry { frag: v, cfg_fp, origin_fp: binary_fp };
        let got = self
            .lock()
            .fragments
            .entry(key)
            .or_insert_with(|| entry.clone())
            .clone()
            .frag;
        self.note(Stage::Fragment, key, Lookup::MISS);
        Ok(got)
    }

    /// Look up or emit one function's canonical (position-independent)
    /// relocated code. `validate` re-checks a candidate's patch-point
    /// list against the fragment it will be fixed up with — a failure
    /// means a logically corrupted record, which is quarantined and
    /// recomputed (never silently mis-fixed-up).
    pub(crate) fn emit(
        &self,
        key: u64,
        binary_fp: u64,
        validate: impl Fn(&RelocEmit) -> bool,
        compute: impl FnOnce() -> Result<RelocEmit, RewriteError>,
    ) -> Result<Arc<RelocEmit>, RewriteError> {
        {
            let mut m = self.lock();
            if let Some(e) = m.emits.get(&key) {
                if validate(&e.emit) {
                    let got = e.emit.clone();
                    let lk = Lookup::hit(e.origin_fp, binary_fp);
                    drop(m);
                    self.note(Stage::Emit, key, lk);
                    return Ok(got);
                }
                m.emits.remove(&key);
            }
        }
        if let Some(mut p) = self.store_get::<EmitPayload>(Stage::Emit, key) {
            if self.patch_fault_fires(key) {
                p.emit.corrupt_one_patch_point();
            }
            if validate(&p.emit) {
                let entry = EmitEntry { emit: Arc::new(p.emit), origin_fp: p.origin_fp };
                let got = self
                    .lock()
                    .emits
                    .entry(key)
                    .or_insert_with(|| entry.clone())
                    .clone();
                self.note(Stage::Emit, key, Lookup::hit(got.origin_fp, binary_fp));
                return Ok(got.emit);
            }
            if let Some(store) = &self.store {
                store.quarantine_record(
                    Stage::Emit,
                    key,
                    "emission failed patch-point re-validation",
                );
            }
        }
        let v = Arc::new(compute()?);
        debug_assert!(validate(&v), "freshly computed emission must validate");
        self.store_put(
            Stage::Emit,
            key,
            &EmitPayload { emit: (*v).clone(), origin_fp: binary_fp },
        );
        let entry = EmitEntry { emit: v, origin_fp: binary_fp };
        let got = self
            .lock()
            .emits
            .entry(key)
            .or_insert_with(|| entry.clone())
            .clone()
            .emit;
        self.note(Stage::Emit, key, Lookup::MISS);
        Ok(got)
    }

    /// Look up or compute a whole-binary audit report (predictive
    /// gating). Memoised in memory and — like every other stage —
    /// persisted through the attached store, under [`Stage::Audit`].
    /// Returns `(report, hit)`.
    pub fn audit(
        &self,
        key: u64,
        compute: impl FnOnce() -> icfgp_audit::AuditReport,
    ) -> (Arc<icfgp_audit::AuditReport>, bool) {
        if let Some(v) = self.lock().audits.get(&key) {
            let got = v.clone();
            self.note(Stage::Audit, key, Lookup { hit: true, shared: false });
            return (got, true);
        }
        if let Some(v) = self.store_get::<icfgp_audit::AuditReport>(Stage::Audit, key) {
            let v = Arc::new(v);
            let got = self.lock().audits.entry(key).or_insert_with(|| v.clone()).clone();
            self.note(Stage::Audit, key, Lookup { hit: true, shared: false });
            return (got, true);
        }
        let v = Arc::new(compute());
        self.store_put(Stage::Audit, key, &*v);
        let got = self.lock().audits.entry(key).or_insert_with(|| v.clone()).clone();
        self.note(Stage::Audit, key, Lookup::MISS);
        (got, false)
    }

    fn analysis_memo(&self, binary_fp: u64, config_fp: u64) -> Option<AnalysisMemo> {
        let m = self.lock();
        m.analyses.get(&(binary_fp, config_fp)).cloned()
    }

    fn store_analysis(
        &self,
        binary_fp: u64,
        config_fp: u64,
        analysis: Arc<BinaryAnalysis>,
        func_keys: Arc<BTreeMap<u64, u64>>,
        weak_keys: Arc<BTreeMap<u64, u64>>,
        rounds: u32,
    ) {
        self.lock()
            .analyses
            .entry((binary_fp, config_fp))
            .or_insert(AnalysisMemo {
                analysis,
                func_keys,
                weak_keys,
                rounds,
            });
    }
}

/// The result of [`analyze_incremental`]: the analysis plus the cache
/// identities the relocation stages key off.
pub struct AnalysisRun {
    /// The whole-binary analysis (identical to
    /// [`icfgp_cfg::analyze`]'s result).
    pub analysis: Arc<BinaryAnalysis>,
    /// Per-function cache identity: function entry address → the key
    /// its CFG was cached under, with the whole-binary fingerprint
    /// folded in. Liveness keys derive from these (strictly
    /// per-binary).
    pub func_keys: Arc<BTreeMap<u64, u64>>,
    /// The *weak* per-function identities: like [`AnalysisRun::func_keys`]
    /// but without the whole-binary fingerprint, so they agree across
    /// binaries sharing a function's bytes, address and environment.
    /// Fragment and emit keys derive from these (plus a CFG content
    /// fingerprint that arbitrates what the weak identity cannot see).
    pub weak_keys: Arc<BTreeMap<u64, u64>>,
    /// The whole analysis was served from the memo.
    pub memo_hit: bool,
    /// Replay rounds run (0 on a memo hit).
    pub rounds: u32,
}

/// Analyse `binary` incrementally and in parallel, reproducing the
/// sequential [`icfgp_cfg::analyze`] result **exactly**.
///
/// The sequential driver analyses functions in symbol order, and
/// function *i* sees the boundary set "pre-pass ∪ jump tables of
/// functions 0..i-1". This driver replays that prefix by iteration:
/// each round it computes every function's prefix-boundary snapshot
/// from the results known so far, re-analyses (in parallel, through
/// the per-function cache) exactly the functions whose snapshot hash
/// changed, and stops when nothing changed. By induction, after round
/// *k* the first *k* functions hold their final (sequential) results,
/// so the loop converges to the unique sequential solution; in
/// practice it takes two analysis rounds plus one check round,
/// because table addresses discovered in round one rarely change.
#[must_use]
pub fn analyze_incremental(
    binary: &Binary,
    config: &AnalysisConfig,
    cache: &RewriteCache,
    threads: usize,
) -> AnalysisRun {
    let binary_fp = binary_fingerprint(binary);
    let config_fp = config.fingerprint();
    if let Some(memo) = cache.analysis_memo(binary_fp, config_fp) {
        cache
            .trace()
            .emit(TraceEvent::AnalysisMemo { hit: true, rounds: memo.rounds });
        return AnalysisRun {
            analysis: memo.analysis,
            func_keys: memo.func_keys,
            weak_keys: memo.weak_keys,
            memo_hit: true,
            rounds: memo.rounds,
        };
    }
    let pre = cache.prepass(binary_fp, binary);
    let env_fp = env_fingerprint(binary);
    let syms: Vec<&icfgp_obj::Symbol> = binary.functions().collect();
    let n = syms.len();

    // The boundary-independent part of each function's key: the
    // function's own analysis inputs, *not* the whole-binary
    // fingerprint — so entries survive edits to other functions and
    // can be shared across binaries (out-of-range data reads are
    // covered by the entry's [`FuncDep`] read-set instead).
    let statics: Vec<u64> = syms
        .iter()
        .map(|s| {
            let mut h = DefaultHasher::new();
            0xFC02u64.hash(&mut h);
            env_fp.hash(&mut h);
            s.addr.hash(&mut h);
            s.size.hash(&mut h);
            h.write(binary.read(s.addr, s.size as usize).unwrap_or(&[]));
            config.slice_for(s.addr, s.end()).fingerprint().hash(&mut h);
            for e in binary.unwind.entries() {
                if e.start >= s.addr && e.start < s.end() {
                    e.hash(&mut h);
                }
            }
            h.finish()
        })
        .collect();

    let mut results: Vec<Option<Arc<FuncCfg>>> = vec![None; n];
    let mut analyzed: Vec<Option<u64>> = vec![None; n];
    let mut rounds = 0u32;
    let final_set: BTreeSet<u64>;
    loop {
        // Prefix snapshots from the results known so far. Consecutive
        // functions between table discoveries share one Arc'd set.
        let mut set = pre.set.clone();
        let mut h = pre.hash;
        let mut shared: Option<Arc<BTreeSet<u64>>> = None;
        let mut snaps: Vec<Option<(Arc<BTreeSet<u64>>, u64)>> = vec![None; n];
        let mut work: Vec<usize> = Vec::new();
        for i in 0..n {
            if analyzed[i] != Some(h) {
                let arc = match &shared {
                    Some(a) => a.clone(),
                    None => {
                        let a = Arc::new(set.clone());
                        shared = Some(a.clone());
                        a
                    }
                };
                snaps[i] = Some((arc, h));
                work.push(i);
            }
            if let Some(cfg) = &results[i] {
                for jt in &cfg.jump_tables {
                    if set.insert(jt.table_addr) {
                        h ^= mix(jt.table_addr);
                        shared = None;
                    }
                }
            }
        }
        if work.is_empty() {
            final_set = set;
            break;
        }
        rounds += 1;
        let outs = pool::map(threads, &work, |_, &i| {
            let (snap, input_hash) = snaps[i].as_ref().expect("snapshot for work item");
            let mut k = DefaultHasher::new();
            statics[i].hash(&mut k);
            input_hash.hash(&mut k);
            let started = std::time::Instant::now();
            let out = cache.func(k.finish(), binary, binary_fp, || {
                analyze_function_isolated(binary, syms[i], config, snap)
            });
            (out, u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX))
        });
        for (&i, (cfg, ns)) in work.iter().zip(outs) {
            // Per-item timing is an orchestrator-side leaf event so the
            // stream stays deterministic across thread counts.
            cache
                .trace()
                .emit(TraceEvent::FuncSpan { entry: syms[i].addr, ns });
            analyzed[i] = Some(snaps[i].as_ref().expect("snapshot").1);
            results[i] = Some(cfg);
        }
        assert!(rounds <= n as u32 + 1, "prefix replay failed to converge");
    }

    let funcs: BTreeMap<u64, FuncCfg> = syms
        .iter()
        .zip(&results)
        .map(|(s, r)| (s.addr, (**r.as_ref().expect("analysed")).clone()))
        .collect();
    // The liveness identity folds the whole-binary fingerprint back
    // in (strictly per-binary); the weak identity leaves it out so
    // fragment/emit keys agree across binaries. Two binaries may
    // share a weak key while their CFGs differ (out-of-range table
    // data) — the fragment key folds a CFG content fingerprint on
    // top, so that divergence never aliases.
    let func_keys: BTreeMap<u64, u64> = syms
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut k = DefaultHasher::new();
            0xFC03u64.hash(&mut k);
            statics[i].hash(&mut k);
            analyzed[i].expect("analysed").hash(&mut k);
            binary_fp.hash(&mut k);
            (s.addr, k.finish())
        })
        .collect();
    let weak_keys: BTreeMap<u64, u64> = syms
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut k = DefaultHasher::new();
            0xFC04u64.hash(&mut k);
            statics[i].hash(&mut k);
            analyzed[i].expect("analysed").hash(&mut k);
            (s.addr, k.finish())
        })
        .collect();
    let analysis = Arc::new(assemble_analysis(binary, config, funcs, final_set));
    let func_keys = Arc::new(func_keys);
    let weak_keys = Arc::new(weak_keys);
    cache.store_analysis(
        binary_fp,
        config_fp,
        analysis.clone(),
        func_keys.clone(),
        weak_keys.clone(),
        rounds,
    );
    cache
        .trace()
        .emit(TraceEvent::AnalysisMemo { hit: false, rounds });
    AnalysisRun {
        analysis,
        func_keys,
        weak_keys,
        memo_hit: false,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_cfg::analyze;
    use icfgp_isa::Arch;

    fn workload(name: &str, arch: Arch) -> Binary {
        match name {
            "small" => {
                icfgp_workloads::generate(&icfgp_workloads::GenParams::small("cache", arch, 5))
                    .binary
            }
            _ => icfgp_workloads::switch_demo(arch, false).binary,
        }
    }

    #[test]
    fn incremental_matches_sequential() {
        for arch in [Arch::X64, Arch::Aarch64, Arch::Ppc64le] {
            for name in ["small", "switch"] {
                let bin = workload(name, arch);
                let config = AnalysisConfig::default();
                let cache = RewriteCache::new();
                for threads in [1, 4] {
                    let run = analyze_incremental(&bin, &config, &cache, threads);
                    let seq = analyze(&bin, &config);
                    assert_eq!(*run.analysis, seq, "{name}/{arch}/{threads}");
                }
            }
        }
    }

    #[test]
    fn second_run_hits_the_memo() {
        let bin = workload("small", Arch::X64);
        let config = AnalysisConfig::default();
        let cache = RewriteCache::new();
        let cold = analyze_incremental(&bin, &config, &cache, 4);
        assert!(!cold.memo_hit);
        assert!(cache.trace().registry().stage_stats(Stage::Func).misses > 0);
        let warm = analyze_incremental(&bin, &config, &cache, 4);
        assert!(warm.memo_hit);
        assert_eq!(*cold.analysis, *warm.analysis);
    }

    #[test]
    fn faulted_function_does_not_invalidate_neighbours() {
        use icfgp_cfg::InjectedFault;
        let bin = workload("small", Arch::X64);
        let cache = RewriteCache::new();
        let clean = AnalysisConfig::default();
        let cold = analyze_incremental(&bin, &clean, &cache, 4);
        // A victim without jump tables leaves the boundary prefix of
        // every later function unchanged.
        let victim = cold
            .analysis
            .funcs
            .values()
            .find(|f| f.jump_tables.is_empty())
            .expect("has a table-free function")
            .entry;
        let mut faulty = clean.clone();
        faulty
            .inject
            .push(InjectedFault::FailFunction { entry: victim });
        let before = cache.trace().registry().stage_stats(Stage::Func);
        let run = analyze_incremental(&bin, &faulty, &cache, 4);
        // Different config fingerprint: no memo hit, but every function
        // except the victim is served from the per-function cache (the
        // victim can miss once per replay round).
        assert!(!run.memo_hit);
        let after = cache.trace().registry().stage_stats(Stage::Func);
        assert!(after.misses - before.misses <= u64::from(run.rounds));
        assert!(after.hits > before.hits);
    }

    #[test]
    fn fingerprints_are_content_addressed() {
        let a = workload("small", Arch::X64);
        let b = workload("small", Arch::X64);
        let c = workload("switch", Arch::X64);
        assert_eq!(binary_fingerprint(&a), binary_fingerprint(&b));
        assert_ne!(binary_fingerprint(&a), binary_fingerprint(&c));
        assert_ne!(unique_key(), unique_key());
    }
}

//! The code relocation engine: emits `.instr`, the jump-table clones,
//! the block/instruction maps and the RA map.
//!
//! Relocated code layout (per function, per block):
//! `[Go-traceback RA payload?][instrumentation payload?][block insts]`.
//! Instruction operands are re-resolved:
//!
//! * direct branches/calls target the *relocated* copy when the callee
//!   was relocated, the original address otherwise (where an entry
//!   trampoline catches execution);
//! * PC-relative data references are re-encoded against the original
//!   data (which does not move);
//! * jump-table base materialisations are retargeted to the table's
//!   clone, and compact table loads are widened to 4 bytes (§5.1);
//! * function-pointer materialisations are retargeted to
//!   `relocated(fn + delta) - delta` in `func-ptr` mode (§5.2);
//! * under call emulation, calls expand to
//!   "materialise original return address; set it as the return
//!   address; jump" (§2.3) — optionally reproducing the historical
//!   stack-indirect bug.
//!
//! # Incremental pipeline
//!
//! Relocation runs in four stages. Per-function **fragments** (entry
//! lists with sizes and fragment-relative offsets) are built in
//! parallel through the content-addressed [`crate::cache`]; a cheap
//! sequential **layout** pass places fragments back to back (exactly
//! reproducing the historical single-cursor layout, so output bytes
//! are identical for any thread count) and assigns clone addresses
//! and counter slots; **emission** encodes each function in parallel,
//! again through the cache; a final sequential pass fills the table
//! clones. Fragments are address-independent, so a warm cache turns a
//! re-rewrite into layout plus memcpy.
//!
//! # Position-independent emissions
//!
//! The emit stage caches a **canonical** emission ([`RelocEmit`]):
//! the fragment encoded at base 0 with every layout-dependent entry
//! (branches, pc-relative data, table bases, counters, emulated
//! calls) left as a nop-filled span recorded in a patch-point list.
//! Both fragment and canonical-emission identities derive from the
//! *weak* per-function analysis key (environment × bytes × config —
//! no whole-binary fingerprint, no layout base), so they hit across
//! near-identical binaries and across layout shifts within one
//! binary. A cheap sequential [`fixup`] pass re-encodes just the
//! patch spans against the real base/clone/counter addresses and the
//! resolve map — running the same per-entry encoder a cold emission
//! runs, so fixed-up shared bytes are identical to a cold rewrite by
//! construction.

use crate::cache::{cfg_fingerprint, hash_of, unique_key, RewriteCache};
use crate::trace::TraceEvent;
use crate::config::{FuncMode, LayoutOrder, RewriteConfig, RewriteMode, UnwindStrategy};
use crate::instrument::{Instrumentation, Payload};
use crate::pool;
use crate::rewriter::RewriteError;
use icfgp_cfg::{BinaryAnalysis, FpDefSite, FuncCfg, FuncStatus, JumpTableDesc};
use icfgp_isa::{encode, Addr, AluOp, Arch, Cond, Inst, Reg, SysOp, Width};
use icfgp_obj::{Binary, RaMap};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Instrumentation-reserved scratch register for emitted sequences.
const RESERVED: Reg = Reg(15);

/// One cloned jump table.
#[derive(Debug, Clone)]
pub struct TableClone {
    /// The analysed table.
    pub desc: JumpTableDesc,
    /// Where the clone lives (`.jt_clone`).
    pub clone_addr: u64,
    /// Entry width of the clone (compact tables are widened to 4).
    pub entry_width: u8,
    /// Clone contents.
    pub bytes: Vec<u8>,
    /// RELATIVE relocation slots the clone needs in PIE binaries
    /// (absolute entries): (slot address, link-time value).
    pub reloc_slots: Vec<(u64, u64)>,
}

/// The relocation result.
#[derive(Debug, Clone)]
pub struct RelocatedCode {
    /// `.instr` contents.
    pub code: Vec<u8>,
    /// `.instr` base address.
    pub base: u64,
    /// Original block start → relocated address (payload start).
    pub block_map: BTreeMap<u64, u64>,
    /// Original instruction address → relocated instruction address.
    pub inst_map: BTreeMap<u64, u64>,
    /// Relocated→original return-address map.
    pub ra_map: RaMap,
    /// Jump-table clones (`.jt_clone` contents), empty in `dir` mode.
    pub clones: Vec<TableClone>,
    /// `.jt_clone` base address.
    pub clone_base: u64,
    /// Number of counter slots allocated (for `.icounters`).
    pub counter_slots: usize,
    /// `.icounters` base address.
    pub icounters_base: u64,
    /// In-place table overwrites (the unsafe `clone_tables = false`
    /// ablation).
    pub inplace_table_writes: Vec<(u64, Vec<u8>)>,
}

/// Whether a table's base materialisation can be retargeted: its
/// instructions must be adjacent in the instruction stream (pairs are
/// rewritten as a unit).
#[must_use]
pub fn table_cloneable(func: &FuncCfg, desc: &JumpTableDesc) -> bool {
    if desc.base_insts.is_empty() {
        // The x64 absolute-displacement memory jump: cloning rewrites
        // the displacement of the copied jump instruction itself.
        return desc.load_addr == desc.jump_addr;
    }
    if desc.base_insts.len() == 1 {
        return true;
    }
    if desc.base_insts.len() > 2 {
        return false;
    }
    let first = desc.base_insts[0];
    let Some((_, len)) = func.insts.get(&first) else { return false };
    desc.base_insts[1] == first + u64::from(*len)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum BKind {
    Jump,
    Cond(Cond),
    Call,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum RKind {
    Copy(Inst),
    Payload(Inst),
    /// A per-block execution counter; the slot index is local to the
    /// fragment (the layout pass assigns each function a slot base).
    CounterPayload { slot: usize },
    GoRaPayload,
    BranchOrig { bkind: BKind, orig_target: u64, far: bool },
    PcRelData { inst: Inst, orig_addr: u64 },
    PcRelPage { page_value: u64, dst: Reg },
    /// The clone index is local to the function (its cloneable tables
    /// in `jump_tables` order); emission receives the per-function
    /// clone address slice.
    JtBase { inst: Inst, clone_idx: usize, pair: bool },
    /// A memory-indirect table jump whose displacement is retargeted to
    /// the clone (`jmp [idx*8 + table]` → `jmp [idx*8 + clone]`).
    JtMemJump { inst: Inst, clone_idx: usize },
    JtLoadWiden { inst: Inst },
    FpImm { inst: Inst, target_fn: u64, delta: i64, pair: bool },
    EmulatedCall { call: Inst, orig_ret: u64, direct_target: Option<u64>, far: bool },
    /// Nop slack after indirect transfers
    /// ([`RewriteConfig::indirect_site_padding`]).
    Pad(u64),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct REntry {
    /// Original (addr, len); `None` for payload entries.
    orig: Option<(u64, u8)>,
    /// Extra original instruction consumed by a pair rewrite.
    orig_extra: Option<(u64, u8)>,
    kind: RKind,
    /// Offset from the fragment base (which layout keeps
    /// instruction-aligned, preserving per-entry alignment).
    new_addr: u64,
    size: u64,
}

/// Everything relocation needs.
pub(crate) struct RelocateInput<'a> {
    pub binary: &'a Binary,
    pub analysis: &'a BinaryAnalysis,
    pub config: &'a RewriteConfig,
    pub instr: &'a Instrumentation,
    /// `.jt_clone` base (clones precede `.instr`).
    pub clone_base: u64,
    /// `.instr` base.
    pub instr_base: u64,
    /// Emit the buggy call emulation for stack-indirect calls.
    pub emulation_stack_bug: bool,
    /// Weak (cross-binary) per-function analysis identities (from
    /// [`crate::cache::analyze_incremental`]); fragment and emission
    /// keys derive from these so relocation work is shared across
    /// near-identical binaries.
    pub weak_keys: &'a BTreeMap<u64, u64>,
}

/// An address-independent per-function relocation recipe: the sized
/// entry list, with offsets relative to the fragment base.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FuncFragment {
    entries: Vec<REntry>,
    /// Original block start → index of the block's first entry.
    block_starts: Vec<(u64, usize)>,
    /// Counter payload slots used (local numbering from 0).
    counter_slots: usize,
    /// Fragment size in bytes.
    size: u64,
}

/// One function's emitted relocated code plus its return-address map
/// contributions (absolute addresses, produced by [`fixup`] — never
/// cached).
#[derive(Debug, Clone)]
pub(crate) struct EmittedFunc {
    bytes: Vec<u8>,
    /// (relocated RA, original RA) pairs, in entry order.
    ra_pairs: Vec<(u64, u64)>,
}

/// How a patch span's bytes depend on the final layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub(crate) enum PatchKind {
    /// Re-encoded against the span's own final address (pc-relative
    /// data references, page materialisations).
    SelfRel,
    /// Re-encoded against another function's or block's resolved
    /// address (branches, fp materialisations, emulated calls).
    TargetRel,
    /// Re-encoded against an assigned jump-table clone address.
    TableSlot,
    /// Re-encoded against the assigned `.icounters` slot address.
    CounterSlot,
}

/// One layout-dependent span of a canonical emission.
#[derive(Debug, Clone, Hash, Serialize, Deserialize)]
pub(crate) struct PatchPoint {
    /// Index of the fragment entry the span belongs to.
    entry_idx: usize,
    /// Span offset from the fragment base (== the entry's `new_addr`).
    off: u64,
    /// Span width in bytes (== the entry's sized length).
    width: u64,
    /// Dependency class (validated against the entry's kind).
    kind: PatchKind,
}

/// The cached, position-independent emission of one fragment: the
/// bytes as emitted at base 0 with every layout-dependent span
/// nop-filled, plus the patch-point list [`fixup`] re-encodes. Shared
/// across binaries (weak-keyed), so a decoded payload re-validates
/// structurally against the fragment on every lookup; a mismatch can
/// only be corruption and quarantines rather than mis-fixing a span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct RelocEmit {
    bytes: Vec<u8>,
    patches: Vec<PatchPoint>,
    /// Self-fingerprint over `(bytes, patches)`, checked on decode.
    self_fp: u64,
}

/// The patch class a fragment entry needs, `None` when its encoding
/// is position-independent (cached verbatim in the canonical bytes).
fn patch_kind_of(kind: &RKind) -> Option<PatchKind> {
    match kind {
        RKind::PcRelData { .. } | RKind::PcRelPage { .. } => Some(PatchKind::SelfRel),
        RKind::BranchOrig { .. } | RKind::FpImm { .. } | RKind::EmulatedCall { .. } => {
            Some(PatchKind::TargetRel)
        }
        RKind::JtBase { .. } | RKind::JtMemJump { .. } => Some(PatchKind::TableSlot),
        RKind::CounterPayload { .. } => Some(PatchKind::CounterSlot),
        RKind::Copy(_)
        | RKind::Payload(_)
        | RKind::GoRaPayload
        | RKind::JtLoadWiden { .. }
        | RKind::Pad(_) => None,
    }
}

impl RelocEmit {
    fn fingerprint(bytes: &[u8], patches: &[PatchPoint]) -> u64 {
        let mut h = DefaultHasher::new();
        0x5E1F_F21Du64.hash(&mut h);
        h.write(bytes);
        patches.hash(&mut h);
        h.finish()
    }

    /// Whether this decoded emission structurally belongs to `frag`:
    /// byte length, self-fingerprint, and a patch point per
    /// layout-dependent entry, in order, with matching spans. Run on
    /// every cache lookup before any fix-up; failure quarantines.
    pub(crate) fn validates(&self, frag: &FuncFragment) -> bool {
        if self.bytes.len() as u64 != frag.size
            || self.self_fp != Self::fingerprint(&self.bytes, &self.patches)
        {
            return false;
        }
        let mut want = frag.entries.iter().enumerate().filter_map(|(i, e)| {
            patch_kind_of(&e.kind).map(|k| (i, e.new_addr, e.size, k))
        });
        for p in &self.patches {
            match want.next() {
                Some((i, off, width, kind))
                    if p.entry_idx == i && p.off == off && p.width == width && p.kind == kind => {}
                _ => return false,
            }
        }
        want.next().is_none()
    }

    /// Deterministically corrupt one patch point (or the fingerprint
    /// when there are none) — the chaos-fault hook for exercising the
    /// quarantine path.
    pub(crate) fn corrupt_one_patch_point(&mut self) {
        match self.patches.first_mut() {
            Some(p) => p.off ^= 1,
            None => self.self_fp ^= 1,
        }
    }
}

/// Relocate all selected functions. Cache outcomes and per-function
/// wall-time samples land on the cache's trace spine, not in the
/// return value.
pub(crate) fn relocate(
    input: &RelocateInput<'_>,
    cache: &RewriteCache,
    threads: usize,
) -> Result<RelocatedCode, RewriteError> {
    let binary = input.binary;
    let arch = binary.arch;
    let config = input.config;
    let pie = binary.meta.pie;
    let toc = binary.toc_base;

    // Selected, analysable functions, in layout order.
    let mut selected: Vec<&FuncCfg> = input
        .analysis
        .funcs
        .values()
        .filter(|f| {
            f.status == FuncStatus::Ok
                && input.instr.points.selects_function(f.entry)
                && config.func_mode(f.entry) != FuncMode::Skip
        })
        .collect();
    if config.layout == LayoutOrder::ReverseFunctions {
        selected.reverse();
    }
    let relocated_ranges: Vec<(u64, u64)> = selected.iter().map(|f| (f.start, f.end)).collect();

    // Far-branch decision for branches from `.instr` back to original
    // code (conservative span estimate; only matters on RISC).
    let far_to_orig = if arch == Arch::X64 {
        false
    } else {
        let span = input.instr_base + 4 * binary.loaded_size() - binary.sections()[0].addr();
        span as i64 > arch.short_branch_reach() - (1 << 20)
    };

    // ----- build fragments (parallel, cached) --------------------------
    let binary_fp = crate::cache::binary_fingerprint(binary);
    let instr_fp = hash_of(input.instr);
    let keyed: Vec<(&FuncCfg, u64, u64)> = selected
        .iter()
        .map(|f| {
            let cfg_fp = cfg_fingerprint(f);
            (*f, fragment_key(input, f, cfg_fp, instr_fp, far_to_orig, &relocated_ranges), cfg_fp)
        })
        .collect();
    let frag_results = pool::map(threads, &keyed, |_, (func, key, cfg_fp)| {
        let started = std::time::Instant::now();
        let out = cache.fragment(*key, *cfg_fp, binary_fp, || {
            build_fragment(input, func, far_to_orig, &relocated_ranges)
        });
        (out, u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX))
    });
    let trace = cache.trace();
    let mut frags: Vec<Arc<FuncFragment>> = Vec::with_capacity(keyed.len());
    for ((func, _, _), (r, ns)) in keyed.iter().zip(frag_results) {
        // Timing events come from the orchestrator so the trace stream
        // stays deterministic across thread counts.
        trace.emit(TraceEvent::FuncSpan { entry: func.entry, ns });
        frags.push(r?);
    }

    // ----- assign clone addresses --------------------------------------
    let mut clones: Vec<TableClone> = Vec::new();
    let mut func_clone_addrs: HashMap<u64, Vec<u64>> = HashMap::new(); // entry -> clone addrs
    if config.clone_tables {
        let mut cursor = input.clone_base;
        // Walk in analysis order (matches the rewriter's clone-sizing
        // loop) so assigned addresses agree with the reserved layout.
        for func in input.analysis.funcs.values() {
            if func.status != FuncStatus::Ok
                || !input.instr.points.selects_function(func.entry)
                || !matches!(config.rewrite_mode_for(func.entry), Some(m) if m >= RewriteMode::Jt)
            {
                continue;
            }
            let mut addrs: Vec<u64> = Vec::new();
            for desc in &func.jump_tables {
                if !table_cloneable(func, desc) {
                    continue;
                }
                let entry_width = desc.entry_width.max(4);
                cursor = align_up(cursor, u64::from(entry_width));
                addrs.push(cursor);
                clones.push(TableClone {
                    desc: desc.clone(),
                    clone_addr: cursor,
                    entry_width,
                    bytes: Vec::new(),
                    reloc_slots: Vec::new(),
                });
                cursor += desc.count * u64::from(entry_width);
            }
            if !addrs.is_empty() {
                func_clone_addrs.insert(func.entry, addrs);
            }
        }
    }

    // ----- layout (sequential, cheap) ----------------------------------
    // Functions arrive in address order and entries ascend within a
    // fragment, so both maps are built from already-sorted pairs —
    // collect + from_iter bulk-builds the trees instead of paying a
    // tree insert per instruction on every (warm) rewrite.
    let mut inst_pairs: Vec<(u64, u64)> = Vec::new();
    let mut block_pairs: Vec<(u64, u64)> = Vec::new();
    let mut placed: Vec<(u64, usize)> = Vec::with_capacity(frags.len()); // (base, slot base)
    let mut cursor = input.instr_base;
    let mut slot_cursor = 0usize;
    for frag in &frags {
        let base = align_up(cursor, arch.inst_align());
        for e in &frag.entries {
            if let Some((a, _)) = e.orig {
                inst_pairs.push((a, base + e.new_addr));
            }
            if let Some((a, _)) = e.orig_extra {
                // Second member of a pair: lands mid-entry; map to the
                // entry start (good enough for fp deltas).
                inst_pairs.push((a, base + e.new_addr));
            }
        }
        for (bstart, idx) in &frag.block_starts {
            block_pairs.push((*bstart, base + frag.entries[*idx].new_addr));
        }
        placed.push((base, slot_cursor));
        slot_cursor += frag.counter_slots;
        cursor = base + frag.size;
    }
    let inst_map: BTreeMap<u64, u64> = inst_pairs.into_iter().collect();
    let block_map: BTreeMap<u64, u64> = block_pairs.into_iter().collect();
    let instr_end = cursor;
    let counter_slots = slot_cursor;
    let icounters_base = align_up(instr_end, 0x1000);

    let resolve = |orig: u64| -> u64 {
        if let Some(v) = block_map.get(&orig) {
            return *v;
        }
        if let Some(v) = inst_map.get(&orig) {
            return *v;
        }
        orig
    };

    // ----- emit (parallel, cached canonical + per-function fix-up) -----
    let empty_addrs: Vec<u64> = Vec::new();
    let emit_jobs: Vec<(usize, u64)> = keyed
        .iter()
        .enumerate()
        .map(|(i, (_, fkey, _))| (i, emit_key(*fkey)))
        .collect();
    let emit_results = pool::map(threads, &emit_jobs, |_, &(i, key)| {
        let (base, slot_base) = placed[i];
        let clone_addrs = func_clone_addrs.get(&keyed[i].0.entry).unwrap_or(&empty_addrs);
        let started = std::time::Instant::now();
        let out = cache
            .emit(key, binary_fp, |c| c.validates(&frags[i]), || canonical_emit(&frags[i], arch))
            .and_then(|canonical| {
                fixup(
                    &canonical,
                    &frags[i],
                    base,
                    arch,
                    pie,
                    toc,
                    &resolve,
                    clone_addrs,
                    slot_base,
                    icounters_base,
                    input.emulation_stack_bug,
                )
            });
        (out, u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX))
    });

    // ----- merge (deterministic, address order of the layout) ----------
    let nop = encode(&Inst::Nop, arch).expect("nop");
    let mut code: Vec<u8> = Vec::with_capacity((instr_end - input.instr_base) as usize);
    let mut ra_map = RaMap::new();
    for (i, (r, ns)) in emit_results.into_iter().enumerate() {
        let emitted = r?;
        trace.emit(TraceEvent::FuncSpan { entry: keyed[i].0.entry, ns });
        let (base, _) = placed[i];
        // Alignment padding between fragments.
        while input.instr_base + code.len() as u64 != base {
            code.extend_from_slice(&nop);
        }
        debug_assert_eq!(emitted.bytes.len() as u64, frags[i].size);
        code.extend_from_slice(&emitted.bytes);
        for (ra, oa) in &emitted.ra_pairs {
            ra_map.insert(*ra, *oa);
        }
    }
    debug_assert_eq!(input.instr_base + code.len() as u64, instr_end);

    // ----- fill clones --------------------------------------------------------
    let mut inplace_table_writes = Vec::new();
    let mut filled: Vec<TableClone> = Vec::new();
    for clone in clones {
        let desc = &clone.desc;
        let mut bytes = Vec::with_capacity((desc.count * u64::from(clone.entry_width)) as usize);
        let mut reloc_slots = Vec::new();
        let targets: HashMap<u64, u64> = desc.targets.iter().copied().collect();
        for i in 0..desc.count {
            let value: i64 = if let Some(t) = targets.get(&i) {
                let v = desc.kind.entry_for(resolve(*t), clone.clone_addr);
                if pie && desc.kind == icfgp_cfg::TableKind::Absolute {
                    // The loader must rebase absolute entries.
                    reloc_slots
                        .push((clone.clone_addr + i * u64::from(clone.entry_width), v as u64));
                }
                v
            } else {
                // Over-approximation garbage: copy the original raw
                // value (sign-extended); never dereferenced at run
                // time (§5.1 Failure 3).
                read_entry_raw(binary, desc, i)
            };
            if clone.entry_width == 4 && i32::try_from(value).is_err() {
                return Err(RewriteError::TableEntryOverflow {
                    table: desc.table_addr,
                    value,
                });
            }
            bytes.extend_from_slice(&value.to_le_bytes()[..clone.entry_width as usize]);
        }
        filled.push(TableClone { bytes, reloc_slots, ..clone });
    }
    // In-place ablation: overwrite the original table instead.
    if !config.clone_tables {
        for func in &selected {
            if !matches!(config.rewrite_mode_for(func.entry), Some(m) if m >= RewriteMode::Jt) {
                continue;
            }
            for desc in &func.jump_tables {
                if !table_cloneable(func, desc) {
                    continue;
                }
                let targets: HashMap<u64, u64> = desc.targets.iter().copied().collect();
                let mut bytes = Vec::new();
                for i in 0..desc.count {
                    let value: i64 = if let Some(t) = targets.get(&i) {
                        desc.kind.entry_for(resolve(*t), desc.table_addr)
                    } else {
                        read_entry_raw(binary, desc, i)
                    };
                    // Truncate into the original width — compact tables
                    // overflow here, absolute tables overrun their real
                    // end under over-approximation. Both are the
                    // documented failure.
                    bytes.extend_from_slice(&value.to_le_bytes()[..desc.entry_width as usize]);
                }
                inplace_table_writes.push((desc.table_addr, bytes));
            }
        }
    }

    Ok(RelocatedCode {
        code,
        base: input.instr_base,
        block_map,
        inst_map,
        ra_map,
        clones: filled,
        clone_base: input.clone_base,
        counter_slots,
        icounters_base,
        inplace_table_writes,
    })
}

/// The content-addressed identity of one function's fragment: the
/// *weak* (cross-binary) CFG identity plus a content fingerprint of
/// the analysed CFG itself, the Go-traceback attribute (the only
/// other symbol bit the build reads), the ladder rung, every
/// rewrite-config bit the fragment build reads, the instrumentation
/// request, and the cross-function inputs (function-pointer sites
/// with their owners' rungs; the relocated ranges when far-branch
/// decisions apply). No whole-binary fingerprint and no layout base:
/// near-identical binaries, and successive ladder rounds of one
/// binary, share fragments.
fn fragment_key(
    input: &RelocateInput<'_>,
    func: &FuncCfg,
    cfg_fp: u64,
    instr_fp: u64,
    far_to_orig: bool,
    relocated_ranges: &[(u64, u64)],
) -> u64 {
    let config = input.config;
    let weak_key = input.weak_keys.get(&func.entry).copied().unwrap_or_else(unique_key);
    let go_traceback = input
        .binary
        .function_starting_at(func.entry)
        .is_some_and(|s| s.attrs.is_go_traceback);
    let mut h = DefaultHasher::new();
    0xF7A7u64.hash(&mut h);
    weak_key.hash(&mut h);
    cfg_fp.hash(&mut h);
    go_traceback.hash(&mut h);
    func.fp_landing_targets.hash(&mut h);
    config.func_mode(func.entry).hash(&mut h);
    config.mode.hash(&mut h);
    config.unwind.hash(&mut h);
    config.clone_tables.hash(&mut h);
    config.layout.hash(&mut h);
    config.indirect_site_padding.hash(&mut h);
    instr_fp.hash(&mut h);
    far_to_orig.hash(&mut h);
    if far_to_orig {
        // Only far decisions read the relocated set; keeping it out of
        // the key otherwise lets ladder demotions leave other
        // functions' fragments warm.
        relocated_ranges.hash(&mut h);
    }
    if config.mode == RewriteMode::FuncPtr
        && config.rewrite_mode_for(func.entry) == Some(RewriteMode::FuncPtr)
    {
        for def in &input.analysis.fp_defs {
            let FpDefSite::CodeImm { inst_addr, pair_first } = def.site else { continue };
            if inst_addr < func.start || inst_addr >= func.end {
                continue;
            }
            let owner = input
                .analysis
                .func_at(def.target_fn.wrapping_add_signed(def.delta))
                .map_or(def.target_fn, |f| f.entry);
            inst_addr.hash(&mut h);
            def.target_fn.hash(&mut h);
            def.delta.hash(&mut h);
            pair_first.hash(&mut h);
            (config.rewrite_mode_for(owner) == Some(RewriteMode::FuncPtr)).hash(&mut h);
        }
    }
    h.finish()
}

/// The identity of one function's canonical emission. The canonical
/// bytes are a pure function of the fragment and the architecture
/// (folded into the weak key through the environment fingerprint), so
/// the fragment key alone identifies them — no layout base, counter
/// slot base, clone addresses or resolved targets: those are fix-up
/// inputs, applied after the cache.
fn emit_key(frag_key: u64) -> u64 {
    let mut h = DefaultHasher::new();
    0xE318u64.hash(&mut h);
    frag_key.hash(&mut h);
    h.finish()
}

/// Build one function's fragment: classify every instruction of every
/// block into relocation entries and size them. Pure in the function's
/// CFG, its ladder rung, the config bits hashed by [`fragment_key`]
/// and (on RISC) the relocated ranges.
fn build_fragment(
    input: &RelocateInput<'_>,
    func: &FuncCfg,
    far_to_orig: bool,
    relocated_ranges: &[(u64, u64)],
) -> Result<FuncFragment, RewriteError> {
    let binary = input.binary;
    let arch = binary.arch;
    let config = input.config;
    let pie = binary.meta.pie;
    let is_relocated = |addr: u64| relocated_ranges.iter().any(|(s, e)| addr >= *s && addr < *e);
    let go_payload = config.unwind == UnwindStrategy::RaTranslation && binary.pclntab.is_some();

    // Local clone indices: the function's cloneable tables in
    // `jump_tables` order, mirroring the global assignment walk.
    let mut local_clone_idx: HashMap<u64, usize> = HashMap::new(); // jump_addr -> local idx
    if config.clone_tables
        && matches!(config.rewrite_mode_for(func.entry), Some(m) if m >= RewriteMode::Jt)
    {
        let mut next = 0usize;
        for desc in &func.jump_tables {
            if table_cloneable(func, desc) {
                local_clone_idx.insert(desc.jump_addr, next);
                next += 1;
            }
        }
    }

    let mut entries: Vec<REntry> = Vec::new();
    let mut block_starts: Vec<(u64, usize)> = Vec::new();
    let mut counter_slots = 0usize;

    // Per-function rewrite site maps.
    let mut base_site: HashMap<u64, (usize, bool)> = HashMap::new(); // first inst -> (clone idx, pair)
    let mut base_covered: HashMap<u64, usize> = HashMap::new(); // any base inst -> clone idx
    let mut widen_site: HashMap<u64, usize> = HashMap::new(); // load addr -> clone idx
    let mut memjump_site: HashMap<u64, usize> = HashMap::new();
    for desc in &func.jump_tables {
        let Some(&idx) = local_clone_idx.get(&desc.jump_addr) else { continue };
        if desc.base_insts.is_empty() {
            // Displacement-form memory jump.
            memjump_site.insert(desc.jump_addr, idx);
            continue;
        }
        base_site.insert(desc.base_insts[0], (idx, desc.base_insts.len() == 2));
        for a in &desc.base_insts {
            base_covered.insert(*a, idx);
        }
        if desc.entry_width < 4 {
            widen_site.insert(desc.load_addr, idx);
        }
    }
    let mut fp_site: HashMap<u64, (u64, i64, bool)> = HashMap::new(); // first inst -> (fn, delta, pair)
    let mut fp_covered: HashMap<u64, ()> = HashMap::new();
    if config.mode == RewriteMode::FuncPtr
        && config.rewrite_mode_for(func.entry) == Some(RewriteMode::FuncPtr)
    {
        for def in &input.analysis.fp_defs {
            let FpDefSite::CodeImm { inst_addr, pair_first } = def.site else { continue };
            if inst_addr < func.start || inst_addr >= func.end {
                continue;
            }
            // Keep pointers into demoted functions aimed at their
            // (intact) original code.
            let owner = input
                .analysis
                .func_at(def.target_fn.wrapping_add_signed(def.delta))
                .map_or(def.target_fn, |f| f.entry);
            if config.rewrite_mode_for(owner) != Some(RewriteMode::FuncPtr) {
                continue;
            }
            if base_covered.contains_key(&inst_addr) {
                continue;
            }
            match pair_first {
                Some(first) => {
                    // Pairs must be adjacent to rewrite as a unit.
                    let adjacent = func
                        .insts
                        .get(&first)
                        .is_some_and(|(_, l)| first + u64::from(*l) == inst_addr);
                    if adjacent && !base_covered.contains_key(&first) {
                        fp_site.insert(first, (def.target_fn, def.delta, true));
                        fp_covered.insert(first, ());
                        fp_covered.insert(inst_addr, ());
                    }
                }
                None => {
                    fp_site.insert(inst_addr, (def.target_fn, def.delta, false));
                    fp_covered.insert(inst_addr, ());
                }
            }
        }
    }

    let mut blocks: Vec<u64> = func.blocks.keys().copied().collect();
    if config.layout == LayoutOrder::ReverseBlocks {
        blocks.reverse();
    }
    for (bi, bstart) in blocks.iter().copied().enumerate() {
        let block = &func.blocks[&bstart];
        block_starts.push((bstart, entries.len()));
        let mut block_has_leader_entry = false;
        // Go traceback RA-translation instrumentation at the
        // entries of findfunc/pcvalue analogs (§6.2).
        if go_payload && bstart == func.entry {
            if let Some(sym) = binary.function_starting_at(func.entry) {
                if sym.attrs.is_go_traceback {
                    entries.push(REntry {
                        orig: None,
                        orig_extra: None,
                        kind: RKind::GoRaPayload,
                        new_addr: 0,
                        size: 0,
                    });
                    block_has_leader_entry = true;
                }
            }
        }
        if input.instr.points.selects_block(func.entry, bstart) {
            match &input.instr.payload {
                Payload::Empty => {}
                Payload::Insts(insts) => {
                    for inst in insts {
                        entries.push(REntry {
                            orig: None,
                            orig_extra: None,
                            kind: RKind::Payload(inst.clone()),
                            new_addr: 0,
                            size: 0,
                        });
                    }
                }
                Payload::BlockCounter { .. } => {
                    entries.push(REntry {
                        orig: None,
                        orig_extra: None,
                        kind: RKind::CounterPayload { slot: counter_slots },
                        new_addr: 0,
                        size: 0,
                    });
                    counter_slots += 1;
                }
            }
        }
        let _ = block_has_leader_entry;

        // Block instructions.
        let mut skip_next: Option<u64> = None;
        for (addr, (inst, len)) in func.insts.range(block.start..block.end) {
            if skip_next == Some(*addr) {
                skip_next = None;
                continue;
            }
            let orig = Some((*addr, *len));
            // Jump-table base retarget?
            if let Some((idx, pair)) = base_site.get(addr) {
                let mut orig_extra = None;
                if *pair {
                    let second = addr + u64::from(*len);
                    if let Some((_, l2)) = func.insts.get(&second) {
                        orig_extra = Some((second, *l2));
                        skip_next = Some(second);
                    }
                }
                entries.push(REntry {
                    orig,
                    orig_extra,
                    kind: RKind::JtBase { inst: inst.clone(), clone_idx: *idx, pair: *pair },
                    new_addr: 0,
                    size: 0,
                });
                continue;
            }
            if base_covered.contains_key(addr) {
                // Second instruction of a base pair: consumed above.
                continue;
            }
            // Function-pointer materialisation retarget?
            if let Some((target_fn, delta, pair)) = fp_site.get(addr) {
                let mut orig_extra = None;
                if *pair {
                    let second = addr + u64::from(*len);
                    if let Some((_, l2)) = func.insts.get(&second) {
                        orig_extra = Some((second, *l2));
                        skip_next = Some(second);
                    }
                }
                entries.push(REntry {
                    orig,
                    orig_extra,
                    kind: RKind::FpImm {
                        inst: inst.clone(),
                        target_fn: *target_fn,
                        delta: *delta,
                        pair: *pair,
                    },
                    new_addr: 0,
                    size: 0,
                });
                continue;
            }
            if fp_covered.contains_key(addr) {
                continue;
            }
            // Displacement-form memory-indirect table jump?
            if let Some(idx) = memjump_site.get(addr) {
                entries.push(REntry {
                    orig,
                    orig_extra: None,
                    kind: RKind::JtMemJump { inst: inst.clone(), clone_idx: *idx },
                    new_addr: 0,
                    size: 0,
                });
                continue;
            }
            // Widened compact-table load?
            if widen_site.contains_key(addr) {
                entries.push(REntry {
                    orig,
                    orig_extra: None,
                    kind: RKind::JtLoadWiden { inst: inst.clone() },
                    new_addr: 0,
                    size: 0,
                });
                continue;
            }
            // Calls under emulation.
            if inst.is_call() && config.unwind == UnwindStrategy::CallEmulation {
                let direct_target = inst.direct_offset().map(|o| addr.wrapping_add_signed(o));
                let far = direct_target.is_some_and(|t| !is_relocated(t)) && far_to_orig;
                let pad_after = config.indirect_site_padding > 0 && inst.is_indirect();
                entries.push(REntry {
                    orig,
                    orig_extra: None,
                    kind: RKind::EmulatedCall {
                        call: inst.clone(),
                        orig_ret: addr + u64::from(*len),
                        direct_target,
                        far,
                    },
                    new_addr: 0,
                    size: 0,
                });
                if pad_after {
                    entries.push(REntry {
                        orig: None,
                        orig_extra: None,
                        kind: RKind::Pad(config.indirect_site_padding),
                        new_addr: 0,
                        size: 0,
                    });
                }
                continue;
            }
            // Direct branches / calls.
            if let Some(off) = inst.direct_offset() {
                let orig_target = addr.wrapping_add_signed(off);
                let bkind = match inst {
                    Inst::Call { .. } => BKind::Call,
                    Inst::JumpCond { cond, .. } => BKind::Cond(*cond),
                    _ => BKind::Jump,
                };
                let far = far_to_orig && !is_relocated(orig_target);
                if far && matches!(bkind, BKind::Cond(_)) {
                    return Err(RewriteError::Unsupported(
                        "conditional branch to unrelocated far target".to_string(),
                    ));
                }
                entries.push(REntry {
                    orig,
                    orig_extra: None,
                    kind: RKind::BranchOrig { bkind, orig_target, far },
                    new_addr: 0,
                    size: 0,
                });
                continue;
            }
            // PC-relative data / pages.
            let pcrel = match inst {
                Inst::Load { addr: a, .. }
                | Inst::Store { addr: a, .. }
                | Inst::Lea { addr: a, .. }
                | Inst::JumpMem { addr: a }
                | Inst::CallMem { addr: a } => a.pc_rel,
                _ => false,
            };
            if pcrel {
                entries.push(REntry {
                    orig,
                    orig_extra: None,
                    kind: RKind::PcRelData { inst: inst.clone(), orig_addr: *addr },
                    new_addr: 0,
                    size: 0,
                });
                continue;
            }
            if let Inst::AdrPage { dst, page_delta } = inst {
                let page_value = (addr & !0xFFF).wrapping_add_signed(page_delta << 12);
                entries.push(REntry {
                    orig,
                    orig_extra: None,
                    kind: RKind::PcRelPage { page_value, dst: *dst },
                    new_addr: 0,
                    size: 0,
                });
                continue;
            }
            let pad_after = config.indirect_site_padding > 0 && inst.is_indirect();
            entries.push(REntry {
                orig,
                orig_extra: None,
                kind: RKind::Copy(inst.clone()),
                new_addr: 0,
                size: 0,
            });
            if pad_after {
                entries.push(REntry {
                    orig: None,
                    orig_extra: None,
                    kind: RKind::Pad(config.indirect_site_padding),
                    new_addr: 0,
                    size: 0,
                });
            }
        }
        // Fall-through repair: when the physically-next emitted
        // block is not this block's fall-through successor (block
        // reordering, or gaps), make the fall-through explicit.
        let falls = func
            .insts
            .range(block.start..block.end)
            .next_back()
            .is_some_and(|(_, (inst, _))| inst.falls_through());
        let next_emitted = blocks.get(bi + 1).copied();
        if falls && next_emitted != Some(block.end) {
            entries.push(REntry {
                orig: None,
                orig_extra: None,
                kind: RKind::BranchOrig {
                    bkind: BKind::Jump,
                    orig_target: block.end,
                    far: far_to_orig && !is_relocated(block.end),
                },
                new_addr: 0,
                size: 0,
            });
        }
    }

    // ----- sizing (fragment-relative) ----------------------------------
    let mut cursor = 0u64;
    for e in &mut entries {
        // Keep RISC alignment (the fragment base is aligned by layout).
        cursor = align_up(cursor, arch.inst_align());
        e.new_addr = cursor;
        e.size = entry_size(&e.kind, arch, pie)?;
        cursor += e.size;
    }

    Ok(FuncFragment { entries, block_starts, counter_slots, size: cursor })
}

/// Pad `out` with whole nops up to `size` bytes and truncate to
/// exactly `size` (a trailing partial nop is acceptable slack — it is
/// never reached).
fn pad_to(out: &mut Vec<u8>, size: u64, nop: &[u8]) {
    while (out.len() as u64) < size {
        out.extend_from_slice(nop);
    }
    out.truncate(size as usize);
}

/// Emit one fragment's canonical (base-0, position-independent) form:
/// position-independent entries encode verbatim; layout-dependent
/// entries become nop-filled spans recorded as patch points. Pure in
/// the fragment and the architecture — this is what the emit cache
/// stores and shares across binaries.
fn canonical_emit(frag: &FuncFragment, arch: Arch) -> Result<RelocEmit, RewriteError> {
    let nop = encode(&Inst::Nop, arch).expect("nop");
    let mut bytes: Vec<u8> = Vec::with_capacity(frag.size as usize);
    let mut patches: Vec<PatchPoint> = Vec::new();
    for (i, e) in frag.entries.iter().enumerate() {
        // Alignment padding between entries.
        while (bytes.len() as u64) != e.new_addr {
            bytes.extend_from_slice(&nop);
        }
        if let Some(kind) = patch_kind_of(&e.kind) {
            patches.push(PatchPoint { entry_idx: i, off: e.new_addr, width: e.size, kind });
            let mut span = Vec::with_capacity(e.size as usize);
            pad_to(&mut span, e.size, &nop);
            bytes.extend_from_slice(&span);
            continue;
        }
        // Position-independent entries never read the layout inputs;
        // encode them at their canonical offset with inert stand-ins.
        let mut out = emit_entry(
            e,
            e.new_addr,
            arch,
            false,
            None,
            &|orig| orig,
            &[],
            0,
            0,
            false,
        )?;
        debug_assert!(
            out.len() as u64 <= e.size,
            "entry emitted {} > sized {} for {:?}",
            out.len(),
            e.size,
            e.kind
        );
        pad_to(&mut out, e.size, &nop);
        bytes.extend_from_slice(&out);
    }
    let self_fp = RelocEmit::fingerprint(&bytes, &patches);
    Ok(RelocEmit { bytes, patches, self_fp })
}

/// Fix up a canonical emission against the real layout: re-encode
/// exactly the patch spans at `base` with the assigned clone/counter
/// addresses and the resolve map, and collect the RA-map pairs. Runs
/// the same per-entry encoder a cold emission runs, so the result is
/// byte-identical to emitting the whole fragment at `base` directly.
#[allow(clippy::too_many_arguments)]
fn fixup(
    canonical: &RelocEmit,
    frag: &FuncFragment,
    base: u64,
    arch: Arch,
    pie: bool,
    toc: Option<u64>,
    resolve: &(impl Fn(u64) -> u64 + Sync),
    clone_addrs: &[u64],
    slot_base: usize,
    icounters_base: u64,
    emulation_stack_bug: bool,
) -> Result<EmittedFunc, RewriteError> {
    let nop = encode(&Inst::Nop, arch).expect("nop");
    let mut bytes = canonical.bytes.clone();
    for p in &canonical.patches {
        let e = &frag.entries[p.entry_idx];
        let at = base + e.new_addr;
        let mut out = emit_entry(
            e,
            at,
            arch,
            pie,
            toc,
            resolve,
            clone_addrs,
            slot_base,
            icounters_base,
            emulation_stack_bug,
        )?;
        debug_assert!(
            out.len() as u64 <= e.size,
            "entry emitted {} > sized {} for {:?}",
            out.len(),
            e.size,
            e.kind
        );
        pad_to(&mut out, e.size, &nop);
        bytes[e.new_addr as usize..(e.new_addr + e.size) as usize].copy_from_slice(&out);
    }
    // RA map entries: real calls and throw sites.
    let mut ra_pairs: Vec<(u64, u64)> = Vec::new();
    for e in &frag.entries {
        let at = base + e.new_addr;
        match &e.kind {
            RKind::BranchOrig { bkind: BKind::Call, .. } => {
                let (oa, ol) = e.orig.expect("calls have originals");
                ra_pairs.push((at + e.size, oa + u64::from(ol)));
            }
            RKind::Copy(inst) if inst.is_call() => {
                let (oa, ol) = e.orig.expect("calls have originals");
                ra_pairs.push((at + e.size, oa + u64::from(ol)));
            }
            // Throw sites are recorded under *both* unwind strategies:
            // in the real system `__cxa_throw` is itself entered by an
            // (emulated or real) call, so its frame is attributable;
            // our Throw-as-instruction model needs the site mapped.
            RKind::Copy(Inst::Sys { op: SysOp::Throw, .. }) => {
                let (oa, _) = e.orig.expect("throws have originals");
                ra_pairs.push((at, oa));
            }
            _ => {}
        }
    }
    Ok(EmittedFunc { bytes, ra_pairs })
}

fn read_entry_raw(binary: &Binary, desc: &JumpTableDesc, i: u64) -> i64 {
    let addr = desc.table_addr + i * u64::from(desc.entry_width);
    let Ok(bytes) = binary.read(addr, desc.entry_width as usize) else { return 0 };
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    let v = u64::from_le_bytes(buf) as i64;
    if desc.kind.signed() && desc.entry_width < 8 {
        let shift = 64 - u32::from(desc.entry_width) * 8;
        (v << shift) >> shift
    } else {
        v
    }
}

fn align_up(v: u64, a: u64) -> u64 {
    if a <= 1 {
        v
    } else {
        v + (a - (v % a)) % a
    }
}

/// Deterministic entry sizes (stable across sizing and emission).
fn entry_size(kind: &RKind, arch: Arch, pie: bool) -> Result<u64, RewriteError> {
    let x64 = arch == Arch::X64;
    let ilen = |inst: &Inst| -> Result<u64, RewriteError> {
        encode(inst, arch)
            .map(|b| b.len() as u64)
            .map_err(|e| RewriteError::Encode(e.to_string()))
    };
    Ok(match kind {
        RKind::Copy(inst) | RKind::Payload(inst) => ilen(inst)?,
        RKind::CounterPayload { .. } => {
            if x64 {
                17 // load(7) + add(3) + store(7), pc-relative
            } else {
                24 // addr pair(8) + load(4) + add(4) + store(4) + spare? no: 20
            }
        }
        RKind::GoRaPayload => {
            if x64 {
                6 // add r15, sp, off (3) + sys (3)
            } else {
                8
            }
        }
        RKind::BranchOrig { bkind, far, .. } => {
            if x64 {
                match bkind {
                    BKind::Cond(_) => 6,
                    _ => 5,
                }
            } else if *far {
                match arch {
                    Arch::Ppc64le => 16,
                    _ => 12,
                }
            } else {
                4
            }
        }
        RKind::PcRelData { inst, .. } => {
            // PC-relative forms always carry disp32: fixed size.
            ilen(inst)?
        }
        RKind::PcRelPage { .. } => 4,
        RKind::JtBase { pair, .. } => {
            if x64 {
                if pie {
                    7 // lea
                } else {
                    6 // mov imm32 (clone addresses stay below 2^31)
                }
            } else if *pair {
                8
            } else {
                4
            }
        }
        RKind::JtLoadWiden { inst } => {
            // Same structural encoding, different width/scale bits.
            ilen(inst)?
        }
        RKind::JtMemJump { inst, .. } => {
            // Worst case: the displacement widens to i32.
            let widened = match inst {
                Inst::JumpMem { addr } => {
                    let mut a = *addr;
                    a.disp = 0x7fff_0000;
                    Inst::JumpMem { addr: a }
                }
                other => other.clone(),
            };
            ilen(&widened)?
        }
        RKind::FpImm { pair, .. } => {
            if x64 {
                if pie {
                    7
                } else {
                    6
                }
            } else if *pair {
                8
            } else {
                4
            }
        }
        RKind::Pad(n) => *n,
        RKind::EmulatedCall { call, far, .. } => {
            if x64 {
                // mov r15, imm32 (6) + push (1) + jump form
                let jump_len = match call {
                    Inst::Call { .. } => 5,
                    Inst::CallReg { .. } => 2,
                    Inst::CallMem { .. } => ilen(call)?, // same operand bytes
                    _ => return Err(RewriteError::Unsupported("emulated call form".into())),
                };
                6 + 1 + jump_len
            } else {
                // addr pair (8) + mtlr (4) + jump form
                let jump_len: u64 = if *far {
                    match arch {
                        Arch::Ppc64le => 16,
                        _ => 12,
                    }
                } else {
                    4
                };
                8 + 4 + jump_len
            }
        }
    })
}

/// Materialise `value` into `reg` at `new_addr` (2 instructions on
/// RISC, 1 on x64).
fn materialize(
    out: &mut Vec<u8>,
    arch: Arch,
    pie: bool,
    toc: Option<u64>,
    reg: Reg,
    value: u64,
    new_addr: u64,
) -> Result<(), RewriteError> {
    let enc = |inst: &Inst, out: &mut Vec<u8>| -> Result<(), RewriteError> {
        out.extend_from_slice(
            &encode(inst, arch).map_err(|e| RewriteError::Encode(e.to_string()))?,
        );
        Ok(())
    };
    match arch {
        Arch::X64 => {
            if pie {
                enc(
                    &Inst::Lea { dst: reg, addr: Addr::pc_rel(value as i64 - new_addr as i64) },
                    out,
                )
            } else {
                enc(&Inst::MovImm { dst: reg, imm: value as i64 }, out)
            }
        }
        Arch::Ppc64le => {
            let toc = toc.ok_or_else(|| RewriteError::Unsupported("ppc64le without TOC".into()))?;
            let delta = value as i64 - toc as i64;
            let hi = ((delta + 0x8000) >> 16) as i16;
            let lo = (delta - (i64::from(hi) << 16)) as i16;
            enc(&Inst::AddShl16 { dst: reg, src: Reg(2), imm: hi }, out)?;
            enc(&Inst::AddImm16 { dst: reg, src: reg, imm: lo }, out)
        }
        Arch::Aarch64 => {
            let page_delta = ((value as i64 + 0x800) >> 12) - (new_addr as i64 >> 12);
            let low = value as i64 - (((new_addr as i64 >> 12) + page_delta) << 12);
            enc(&Inst::AdrPage { dst: reg, page_delta }, out)?;
            enc(&Inst::AluImm { op: AluOp::Add, dst: reg, src: reg, imm: low as i32 }, out)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_entry(
    e: &REntry,
    at: u64,
    arch: Arch,
    pie: bool,
    toc: Option<u64>,
    resolve: &(impl Fn(u64) -> u64 + Sync),
    clone_addrs: &[u64],
    slot_base: usize,
    icounters_base: u64,
    emulation_stack_bug: bool,
) -> Result<Vec<u8>, RewriteError> {
    let mut out = Vec::new();
    let enc = |inst: &Inst, out: &mut Vec<u8>| -> Result<(), RewriteError> {
        out.extend_from_slice(
            &encode(inst, arch).map_err(|err| RewriteError::Encode(err.to_string()))?,
        );
        Ok(())
    };
    let x64 = arch == Arch::X64;
    match &e.kind {
        RKind::Pad(_) => {}
        RKind::Copy(inst) | RKind::Payload(inst) => enc(inst, &mut out)?,
        RKind::CounterPayload { slot } => {
            let slot_addr = icounters_base + 8 * (slot_base + *slot) as u64;
            let (r1, r2) = (Reg(14), RESERVED);
            if x64 {
                // Two pc-relative accesses around an add.
                let load_at = at;
                enc(
                    &Inst::Load {
                        dst: r1,
                        addr: Addr::pc_rel(slot_addr as i64 - load_at as i64),
                        width: Width::W8,
                        sign: false,
                    },
                    &mut out,
                )?;
                enc(&Inst::AluImm { op: AluOp::Add, dst: r1, src: r1, imm: 1 }, &mut out)?;
                let store_at = at + out.len() as u64;
                enc(
                    &Inst::Store {
                        src: r1,
                        addr: Addr::pc_rel(slot_addr as i64 - store_at as i64),
                        width: Width::W8,
                    },
                    &mut out,
                )?;
            } else {
                materialize(&mut out, arch, pie, toc, r2, slot_addr, at)?;
                enc(
                    &Inst::Load { dst: r1, addr: Addr::base_only(r2), width: Width::W8, sign: false },
                    &mut out,
                )?;
                enc(&Inst::AluImm { op: AluOp::Add, dst: r1, src: r1, imm: 1 }, &mut out)?;
                enc(
                    &Inst::Store { src: r1, addr: Addr::base_only(r2), width: Width::W8 },
                    &mut out,
                )?;
            }
        }
        RKind::GoRaPayload => {
            // The Go argument (the unwinding PC) lives on the stack:
            // translate it in place before findfunc/pcvalue consume it.
            let off = if x64 { 8 } else { 0 };
            enc(
                &Inst::AluImm { op: AluOp::Add, dst: RESERVED, src: arch.sp(), imm: off },
                &mut out,
            )?;
            enc(&Inst::Sys { op: SysOp::RaTranslate, arg: RESERVED }, &mut out)?;
        }
        RKind::BranchOrig { bkind, orig_target, far } => {
            let target = resolve(*orig_target);
            let offset = target as i64 - at as i64;
            if !*far {
                let inst = match bkind {
                    BKind::Jump => Inst::Jump { offset },
                    BKind::Cond(c) => Inst::JumpCond { cond: *c, offset },
                    BKind::Call => Inst::Call { offset },
                };
                enc(&inst, &mut out)?;
            } else {
                // Far form back into original code (RISC only).
                materialize(&mut out, arch, pie, toc, RESERVED, target, at)?;
                match (arch, bkind) {
                    (Arch::Ppc64le, BKind::Jump) => {
                        enc(&Inst::MoveToTar { src: RESERVED }, &mut out)?;
                        enc(&Inst::JumpTar, &mut out)?;
                    }
                    (Arch::Ppc64le, BKind::Call) => {
                        enc(&Inst::MoveToTar { src: RESERVED }, &mut out)?;
                        enc(&Inst::CallTar, &mut out)?;
                    }
                    (Arch::Aarch64, BKind::Jump) => {
                        enc(&Inst::JumpReg { src: RESERVED }, &mut out)?;
                    }
                    (Arch::Aarch64, BKind::Call) => {
                        enc(&Inst::CallReg { src: RESERVED }, &mut out)?;
                    }
                    _ => return Err(RewriteError::Unsupported("far branch form".into())),
                }
            }
        }
        RKind::PcRelData { inst, orig_addr } => {
            let retarget = |a: &Addr| -> Addr {
                let target = orig_addr.wrapping_add_signed(a.disp);
                Addr::pc_rel(target as i64 - at as i64)
            };
            let new_inst = match inst {
                Inst::Load { dst, addr, width, sign } => {
                    Inst::Load { dst: *dst, addr: retarget(addr), width: *width, sign: *sign }
                }
                Inst::Store { src, addr, width } => {
                    Inst::Store { src: *src, addr: retarget(addr), width: *width }
                }
                Inst::Lea { dst, addr } => Inst::Lea { dst: *dst, addr: retarget(addr) },
                Inst::JumpMem { addr } => Inst::JumpMem { addr: retarget(addr) },
                Inst::CallMem { addr } => Inst::CallMem { addr: retarget(addr) },
                _ => return Err(RewriteError::Unsupported("pc-rel form".into())),
            };
            enc(&new_inst, &mut out)?;
        }
        RKind::PcRelPage { page_value, dst } => {
            let page_delta = (*page_value as i64 >> 12) - (at as i64 >> 12);
            enc(&Inst::AdrPage { dst: *dst, page_delta }, &mut out)?;
        }
        RKind::JtBase { inst, clone_idx, .. } => {
            let clone_addr = clone_addrs[*clone_idx];
            let dst = inst.def_reg().ok_or_else(|| {
                RewriteError::Unsupported("jump-table base without destination".into())
            })?;
            materialize(&mut out, arch, pie, toc, dst, clone_addr, at)?;
        }
        RKind::JtLoadWiden { inst } => {
            let Inst::Load { dst, addr, .. } = inst else {
                return Err(RewriteError::Unsupported("widen non-load".into()));
            };
            let mut a = *addr;
            a.scale = 4;
            enc(&Inst::Load { dst: *dst, addr: a, width: Width::W4, sign: true }, &mut out)?;
        }
        RKind::JtMemJump { inst, clone_idx } => {
            let Inst::JumpMem { addr } = inst else {
                return Err(RewriteError::Unsupported("mem-jump retarget".into()));
            };
            let mut a = *addr;
            a.disp = clone_addrs[*clone_idx] as i64;
            enc(&Inst::JumpMem { addr: a }, &mut out)?;
        }
        RKind::FpImm { inst, target_fn, delta, .. } => {
            let dst = inst.def_reg().ok_or_else(|| {
                RewriteError::Unsupported("fp materialisation without destination".into())
            })?;
            let relocated = resolve(target_fn.wrapping_add_signed(*delta));
            let value = relocated.wrapping_add_signed(-*delta);
            materialize(&mut out, arch, pie, toc, dst, value, at)?;
        }
        RKind::EmulatedCall { call, orig_ret, direct_target, far } => {
            if x64 {
                enc(&Inst::MovImm { dst: RESERVED, imm: *orig_ret as i64 }, &mut out)?;
                enc(&Inst::Push { src: RESERVED }, &mut out)?;
                match call {
                    Inst::Call { .. } => {
                        let target = resolve(direct_target.expect("direct call"));
                        let jump_at = at + out.len() as u64;
                        let bytes = crate::tramp::near_branch_x64(jump_at, target)
                            .map_err(|err| RewriteError::Encode(err.to_string()))?;
                        out.extend_from_slice(&bytes);
                    }
                    Inst::CallReg { src } => enc(&Inst::JumpReg { src: *src }, &mut out)?,
                    Inst::CallMem { addr } => {
                        let mut a = *addr;
                        // The push above moved the stack pointer: a
                        // correct emulation adjusts sp-relative
                        // operands; the historical SRBI bug does not.
                        if !emulation_stack_bug && a.base == Some(arch.sp()) {
                            a.disp += 8;
                        }
                        if a.pc_rel {
                            let (oa, _) = e.orig.expect("mem call has original");
                            let target = oa.wrapping_add_signed(a.disp);
                            let jump_at = at + out.len() as u64;
                            a = Addr::pc_rel(target as i64 - jump_at as i64);
                        }
                        enc(&Inst::JumpMem { addr: a }, &mut out)?;
                    }
                    _ => return Err(RewriteError::Unsupported("emulated call form".into())),
                }
            } else {
                materialize(&mut out, arch, pie, toc, RESERVED, *orig_ret, at)?;
                enc(&Inst::MoveToLr { src: RESERVED }, &mut out)?;
                match call {
                    Inst::Call { .. } => {
                        let target = resolve(direct_target.expect("direct call"));
                        if *far {
                            // Far jump through tar / register.
                            let jump_at = at + out.len() as u64;
                            materialize(&mut out, arch, pie, toc, Reg(12), target, jump_at)?;
                            if arch == Arch::Ppc64le {
                                enc(&Inst::MoveToTar { src: Reg(12) }, &mut out)?;
                                enc(&Inst::JumpTar, &mut out)?;
                            } else {
                                enc(&Inst::JumpReg { src: Reg(12) }, &mut out)?;
                            }
                        } else {
                            let jump_at = at + out.len() as u64;
                            enc(&Inst::Jump { offset: target as i64 - jump_at as i64 }, &mut out)?;
                        }
                    }
                    Inst::CallTar => enc(&Inst::JumpTar, &mut out)?,
                    Inst::CallReg { src } => enc(&Inst::JumpReg { src: *src }, &mut out)?,
                    _ => return Err(RewriteError::Unsupported("emulated call form".into())),
                }
            }
        }
    }
    Ok(out)
}

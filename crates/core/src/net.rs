//! Remote cache-store backend: a std-only, length-prefixed TCP
//! protocol sharing one [`CacheStore`] between many rewriting clients.
//!
//! # Wire protocol
//!
//! Every message — request or response — is one length-prefixed
//! checksummed frame: a `u32` little-endian byte count followed by
//! exactly one record frame in the store's segment encoding
//! (`tag u8 · key u64 · len u32 · checksum u64 · payload[len]`, see
//! `store.rs`). Reusing [`encode_frame`]/[`scan_frames`] means a torn
//! or bit-flipped response fails validation exactly like a damaged
//! segment would — and gets the same answer: quarantine the exchange
//! (a transport error), never trust the bytes.
//!
//! Requests: `GET` (key = record key, payload = stage tag + key
//! epoch), `PUT` (payload = stage tag + lease fence + record bytes),
//! `LEASE` (key = client nonce, payload = key epoch), `RENEW` /
//! `RELEASE` (key = lease token), `STATS`. Responses: `HIT`/`MISS`,
//! `OK`/`REJECTED`, `GRANT` (key = token, payload = fence + TTL ms) /
//! `BUSY`, `STATS` (JSON [`ServerStats`]), `ERR`.
//!
//! # Epoch-fenced leases
//!
//! The local store's advisory PID lock cannot span machines, so the
//! server arbitrates writers with **leases**: one writer at a time
//! holds a token and a monotonically increasing **fence** number,
//! bumped on every grant. Every `PUT` carries the writer's fence; the
//! server rejects any fence that is not the *current, unexpired* one —
//! so a paused writer whose lease lapsed (and was re-granted to
//! someone else) can never interleave stale writes, no matter how late
//! its packets arrive. A rejected `PUT` writes nothing.
//!
//! # Degradation ladder
//!
//! A dead or lying server must only ever cost cache misses — never
//! wrong bytes, never a hung run:
//!
//! 1. transient faults (timeout, refused connection, short read, torn
//!    frame, checksum mismatch, lost lease) get deterministically
//!    jittered bounded retries ([`RetryPolicy`]);
//! 2. a failed or missed read hedges to the read-only **local
//!    overflow store** (the `--cache-dir`, when one is given);
//! 3. enough *consecutive* transport failures trip the per-connection
//!    **circuit breaker**, degrading the client to fully-local
//!    operation for the rest of the run — pending records flush to the
//!    overflow store instead.

use crate::retry::{RetryPolicy, Transience};
use crate::store::{
    encode_frame, lock_timeout, scan_frames, CacheStore, FaultRng, Stage, StoreBackend,
    StoreEvent, StoreEventKind, StoreFaults, StoreStats, FORMAT_VERSION, FRAME_LEN, KEY_EPOCH,
};
use crate::trace::{StoreOp, StoreSrc, Trace, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ----- message tags ------------------------------------------------------

const OP_GET: u8 = 0x10;
const OP_PUT: u8 = 0x11;
const OP_LEASE: u8 = 0x12;
const OP_RENEW: u8 = 0x13;
const OP_RELEASE: u8 = 0x14;
const OP_STATS: u8 = 0x15;

const RE_HIT: u8 = 0x20;
const RE_MISS: u8 = 0x21;
const RE_OK: u8 = 0x22;
const RE_GRANT: u8 = 0x23;
const RE_BUSY: u8 = 0x24;
const RE_REJECTED: u8 = 0x25;
const RE_STATS: u8 = 0x26;
const RE_ERR: u8 = 0x27;

/// Upper bound on one wire message (a corrupt length prefix must not
/// cause a huge allocation).
const MAX_MESSAGE: u32 = 260 << 20;

fn request_tag(tag: u8) -> bool {
    (OP_GET..=OP_STATS).contains(&tag)
}

fn response_tag(tag: u8) -> bool {
    (RE_HIT..=RE_ERR).contains(&tag)
}

// ----- framing -----------------------------------------------------------

/// Write one length-prefixed checksummed frame.
fn write_message(w: &mut impl std::io::Write, tag: u8, key: u64, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
    encode_frame(&mut frame, tag, key, payload);
    w.write_all(&u32::try_from(frame.len()).expect("frame fits u32").to_le_bytes())?;
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame and validate it with the store's
/// segment scanner. Anything short, torn, over-long, checksum-bad or
/// carrying an unknown tag is an `InvalidData` error — the caller
/// treats it exactly like a connection fault.
fn read_message(
    r: &mut impl std::io::Read,
    valid_tag: impl Fn(u8) -> bool,
) -> std::io::Result<(u8, u64, Vec<u8>)> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4);
    if len < FRAME_LEN as u32 || len > MAX_MESSAGE {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("implausible message length {len}"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let mut scan = scan_frames(&buf, valid_tag);
    if scan.frames.len() != 1 || scan.corrupt != 0 || scan.truncated {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "torn or corrupt frame",
        ));
    }
    Ok(scan.frames.pop().expect("one frame"))
}

// ----- store URLs --------------------------------------------------------

/// A parsed `icfgp://host:port` store URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreUrl {
    /// Server host (name or address; `[...]` for IPv6 literals).
    pub host: String,
    /// Server TCP port.
    pub port: u16,
}

impl std::fmt::Display for StoreUrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "icfgp://{}:{}", self.host, self.port)
    }
}

/// Parse a store URL of the form `icfgp://host:port`.
///
/// The CLI validates `--store-url` / `ICFGP_STORE_URL` with this up
/// front and exits 64 (usage) on `Err`, matching the `ICFGP_THREADS`
/// contract.
///
/// # Errors
///
/// A usage message when the scheme is not `icfgp://`, the port is
/// missing or unparsable, or the host is empty or malformed.
pub fn parse_store_url(raw: &str) -> Result<StoreUrl, String> {
    let trimmed = raw.trim();
    let Some(rest) = trimmed.strip_prefix("icfgp://") else {
        return Err(format!(
            "store URL must use the icfgp://host:port scheme, got {raw:?}"
        ));
    };
    let rest = rest.strip_suffix('/').unwrap_or(rest);
    // IPv6 literals keep their colons inside brackets.
    let (host, port) = if let Some(v6) = rest.strip_prefix('[') {
        let Some((host, after)) = v6.split_once(']') else {
            return Err(format!("unterminated IPv6 literal in store URL {raw:?}"));
        };
        let Some(port) = after.strip_prefix(':') else {
            return Err(format!("store URL {raw:?} is missing a :port"));
        };
        (format!("[{host}]"), port)
    } else {
        let Some((host, port)) = rest.rsplit_once(':') else {
            return Err(format!("store URL {raw:?} is missing a :port"));
        };
        (host.to_string(), port)
    };
    let bare = host.trim_start_matches('[').trim_end_matches(']');
    if bare.is_empty()
        || !bare
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_' | ':'))
    {
        return Err(format!("store URL {raw:?} has an unparsable host"));
    }
    let port: u16 = port
        .parse()
        .map_err(|_| format!("store URL {raw:?} has an unparsable port (want 1-65535)"))?;
    if port == 0 {
        return Err(format!("store URL {raw:?} has an unparsable port (want 1-65535)"));
    }
    Ok(StoreUrl { host: bare.to_string(), port })
}

// ----- fault injection ---------------------------------------------------

/// Deterministic network fault injection for the remote-store
/// transport, armed by the [`FaultPlan`](crate::FaultPlan) `net_*`
/// knobs. Faults only ever damage the *transport* — the client's
/// retry/hedge/degrade ladder must absorb every one of them without
/// changing output bytes or hanging.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetFaults {
    /// PRNG seed for the fault draws.
    pub seed: u64,
    /// Probability an exchange is delayed before sending.
    pub delay: f64,
    /// How long an injected delay sleeps, in milliseconds.
    pub delay_ms: u64,
    /// Probability the connection drops before the request is sent.
    pub drop: f64,
    /// Probability the response arrives torn (truncated mid-frame,
    /// surfacing as the same error a real short read produces).
    pub torn_response: f64,
    /// Probability the response fails its frame checksum (a lying
    /// server or an on-path bit flip; caught by validation).
    pub bit_flip_reply: f64,
    /// Probability a `PUT`/`RENEW` reply is replaced by `REJECTED`,
    /// as if the lease expired under the writer.
    pub lease_expire: f64,
    /// Deterministic lease-expiry kill point: the Nth `PUT` of the run
    /// (1-based) is rejected regardless of probability; 0 disables.
    pub lease_expire_at: u64,
    /// Probability the server dies mid-`PUT`: the reply never arrives
    /// and (with an in-process server) every later connection is
    /// refused.
    pub kill_mid_put: f64,
}

impl NetFaults {
    /// Whether any fault class is armed.
    #[must_use]
    pub fn any(&self) -> bool {
        self.delay > 0.0
            || self.drop > 0.0
            || self.torn_response > 0.0
            || self.bit_flip_reply > 0.0
            || self.lease_expire > 0.0
            || self.lease_expire_at > 0
            || self.kill_mid_put > 0.0
    }
}

// ----- transports --------------------------------------------------------

/// One request/response exchange with the store server.
/// Implementations own their connection state; an error invalidates
/// the connection and the next exchange reconnects.
pub trait Transport: Send {
    /// Send one request frame; receive one response frame.
    ///
    /// # Errors
    ///
    /// Any transport fault: connect/read/write failure, timeout, torn
    /// or checksum-invalid response. All are treated as transient by
    /// the client's retry policy.
    fn exchange(&mut self, tag: u8, key: u64, payload: &[u8])
        -> std::io::Result<(u8, u64, Vec<u8>)>;
}

/// The real TCP transport: one lazily-(re)connected stream with
/// connect/read/write timeouts so a dead server costs a bounded wait,
/// never a hang.
pub struct TcpTransport {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl TcpTransport {
    /// A transport to `addr` with the given per-operation timeout.
    #[must_use]
    pub fn new(addr: SocketAddr, timeout: Duration) -> TcpTransport {
        TcpTransport { addr, timeout, stream: None }
    }

    fn connected(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let s = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            s.set_read_timeout(Some(self.timeout))?;
            s.set_write_timeout(Some(self.timeout))?;
            let _ = s.set_nodelay(true);
            self.stream = Some(s);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }
}

impl Transport for TcpTransport {
    fn exchange(
        &mut self,
        tag: u8,
        key: u64,
        payload: &[u8],
    ) -> std::io::Result<(u8, u64, Vec<u8>)> {
        let run = (|| {
            let s = self.connected()?;
            write_message(s, tag, key, payload)?;
            read_message(s, response_tag)
        })();
        if run.is_err() {
            // The stream may hold a half-written request or a
            // half-read reply; never reuse it.
            self.stream = None;
        }
        run
    }
}

/// A transport to a host that could not even be resolved: every
/// exchange fails immediately. The client's breaker degrades it to
/// fully-local operation after the usual budget.
struct UnresolvedTransport(String);

impl Transport for UnresolvedTransport {
    fn exchange(&mut self, _: u8, _: u64, _: &[u8]) -> std::io::Result<(u8, u64, Vec<u8>)> {
        Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("unresolvable store host {}", self.0),
        ))
    }
}

/// A fault-injecting wrapper around any [`Transport`] (chaos
/// campaigns). Draws are deterministic in [`NetFaults::seed`].
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    faults: NetFaults,
    rng: FaultRng,
    puts_seen: u64,
    injected: Arc<AtomicU64>,
    kill: Option<Arc<AtomicBool>>,
}

impl FaultyTransport {
    /// Wrap `inner` with `faults`; `kill` is the in-process server's
    /// stop flag, set when a `kill_mid_put` fault fires (pass `None`
    /// for a real out-of-process server — the reply is still dropped).
    #[must_use]
    pub fn new(
        inner: Box<dyn Transport>,
        faults: NetFaults,
        kill: Option<Arc<AtomicBool>>,
    ) -> FaultyTransport {
        FaultyTransport {
            inner,
            rng: FaultRng(faults.seed ^ 0x0051_570F_4E45_5400_u64),
            faults,
            puts_seen: 0,
            injected: Arc::new(AtomicU64::new(0)),
            kill,
        }
    }

    /// Shared counter of faults injected so far (campaign reporting).
    #[must_use]
    pub fn injected_counter(&self) -> Arc<AtomicU64> {
        self.injected.clone()
    }

    fn inject(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
}

impl Transport for FaultyTransport {
    fn exchange(
        &mut self,
        tag: u8,
        key: u64,
        payload: &[u8],
    ) -> std::io::Result<(u8, u64, Vec<u8>)> {
        let f = self.faults;
        if self.rng.chance(f.delay) && f.delay_ms > 0 {
            self.inject();
            std::thread::sleep(Duration::from_millis(f.delay_ms));
        }
        if self.rng.chance(f.drop) {
            self.inject();
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected connection drop",
            ));
        }
        let is_put = tag == OP_PUT;
        if is_put {
            self.puts_seen += 1;
        }
        if is_put && self.rng.chance(f.kill_mid_put) {
            self.inject();
            if let Some(k) = &self.kill {
                k.store(true, Ordering::SeqCst);
            }
            // The request may or may not have been applied; the reply
            // is gone either way.
            let _ = self.inner.exchange(tag, key, payload);
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected server kill mid-PUT",
            ));
        }
        let reply = self.inner.exchange(tag, key, payload)?;
        if (is_put || tag == OP_RENEW)
            && ((is_put && f.lease_expire_at > 0 && self.puts_seen == f.lease_expire_at)
                || self.rng.chance(f.lease_expire))
        {
            self.inject();
            return Ok((RE_REJECTED, 0, Vec::new()));
        }
        if self.rng.chance(f.torn_response) {
            self.inject();
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "injected torn response",
            ));
        }
        if self.rng.chance(f.bit_flip_reply) {
            self.inject();
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "injected bit-flipped response (frame checksum mismatch)",
            ));
        }
        Ok(reply)
    }
}

// ----- server ------------------------------------------------------------

/// Server tuning knobs for [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// How long a granted lease lives without a renew.
    pub lease_ttl: Duration,
    /// Flush the backing store once this many PUTs are pending.
    pub flush_threshold: usize,
    /// Per-connection read timeout (idle connections poll the stop
    /// flag at this cadence).
    pub read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            lease_ttl: Duration::from_millis(2000),
            flush_threshold: 64,
            read_timeout: Duration::from_millis(250),
        }
    }
}

/// Server-side counters and store shape, JSON-encoded for `STATS`
/// responses and `icfgp cache stats --store-url`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests served (all kinds).
    pub requests: u64,
    /// `GET`s answered with a record.
    pub get_hits: u64,
    /// `GET`s answered with a miss.
    pub get_misses: u64,
    /// `PUT`s accepted under a valid lease fence.
    pub puts_accepted: u64,
    /// `PUT`s rejected (bad fence, expired or missing lease). A
    /// rejected `PUT` writes nothing.
    pub puts_rejected: u64,
    /// Leases granted (each bumps the fence).
    pub leases_granted: u64,
    /// Lease requests refused because another writer holds it.
    pub leases_busy: u64,
    /// Successful renews.
    pub renews: u64,
    /// Releases.
    pub releases: u64,
    /// Writes or renews that arrived after their lease expired.
    pub fences_expired: u64,
    /// Messages dropped for framing or checksum damage.
    pub bad_frames: u64,
    /// The current lease fence (0 when never granted).
    pub fence: u64,
    /// Segment files in the store directory.
    pub segments: u64,
    /// Usable records loaded.
    pub records: u64,
    /// Quarantined segment files kept for inspection.
    pub quarantined_files: u64,
    /// Bytes held by quarantined files.
    pub quarantined_bytes: u64,
    /// The server's key-derivation epoch.
    pub key_epoch: u64,
    /// The server's on-disk format version.
    pub format_version: u32,
    /// The backing store's own counters.
    pub store: StoreStats,
}

#[derive(Default)]
struct ServerCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    get_hits: AtomicU64,
    get_misses: AtomicU64,
    puts_accepted: AtomicU64,
    puts_rejected: AtomicU64,
    leases_granted: AtomicU64,
    leases_busy: AtomicU64,
    renews: AtomicU64,
    releases: AtomicU64,
    fences_expired: AtomicU64,
    bad_frames: AtomicU64,
}

/// The single writer lease: token identifies the holder, fence is the
/// monotonic epoch PUTs are checked against.
#[derive(Default)]
struct LeaseSlot {
    token: u64,
    fence: u64,
    deadline: Option<Instant>,
    next_token: u64,
}

impl LeaseSlot {
    fn holder_alive(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now <= d)
    }
}

struct ServerShared {
    store: CacheStore,
    dir: PathBuf,
    lease: Mutex<LeaseSlot>,
    c: ServerCounters,
    opts: ServeOptions,
    stop: Arc<AtomicBool>,
}

impl ServerShared {
    fn stats(&self) -> ServerStats {
        let (qfiles, qbytes) = crate::store::quarantine_usage(&self.dir);
        let segments = std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| {
                        let n = e.file_name().to_string_lossy().into_owned();
                        n.starts_with("seg-") && n.ends_with(".seg")
                    })
                    .count() as u64
            })
            .unwrap_or(0);
        // Records the server can serve: durably flushed plus queued
        // (accepted PUTs are visible to GETs before the segment flush).
        let records = self.store.entry_counts().iter().map(|(_, n)| *n as u64).sum::<u64>()
            + self.store.pending_len() as u64;
        ServerStats {
            connections: self.c.connections.load(Ordering::Relaxed),
            requests: self.c.requests.load(Ordering::Relaxed),
            get_hits: self.c.get_hits.load(Ordering::Relaxed),
            get_misses: self.c.get_misses.load(Ordering::Relaxed),
            puts_accepted: self.c.puts_accepted.load(Ordering::Relaxed),
            puts_rejected: self.c.puts_rejected.load(Ordering::Relaxed),
            leases_granted: self.c.leases_granted.load(Ordering::Relaxed),
            leases_busy: self.c.leases_busy.load(Ordering::Relaxed),
            renews: self.c.renews.load(Ordering::Relaxed),
            releases: self.c.releases.load(Ordering::Relaxed),
            fences_expired: self.c.fences_expired.load(Ordering::Relaxed),
            bad_frames: self.c.bad_frames.load(Ordering::Relaxed),
            fence: self.lease.lock().expect("lease poisoned").fence,
            segments,
            records,
            quarantined_files: qfiles,
            quarantined_bytes: qbytes,
            key_epoch: KEY_EPOCH,
            format_version: FORMAT_VERSION,
            store: self.store.stats(),
        }
    }

    /// Dispatch one request; `None` closes the connection.
    fn handle(&self, tag: u8, key: u64, payload: &[u8]) -> Option<(u8, u64, Vec<u8>)> {
        self.c.requests.fetch_add(1, Ordering::Relaxed);
        match tag {
            OP_GET => {
                if payload.len() != 9 {
                    return Some((RE_ERR, 0, b"malformed GET".to_vec()));
                }
                let Some(stage) = Stage::from_tag(payload[0]) else {
                    return Some((RE_ERR, 0, b"unknown stage".to_vec()));
                };
                let epoch = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
                if epoch != KEY_EPOCH {
                    return Some((
                        RE_ERR,
                        0,
                        format!("key epoch {epoch} (server has {KEY_EPOCH})").into_bytes(),
                    ));
                }
                match self.store.get_queued(stage, key) {
                    Some(p) => {
                        self.c.get_hits.fetch_add(1, Ordering::Relaxed);
                        Some((RE_HIT, key, p))
                    }
                    None => {
                        self.c.get_misses.fetch_add(1, Ordering::Relaxed);
                        Some((RE_MISS, key, Vec::new()))
                    }
                }
            }
            OP_PUT => {
                if payload.len() < 9 {
                    return Some((RE_ERR, 0, b"malformed PUT".to_vec()));
                }
                let Some(stage) = Stage::from_tag(payload[0]) else {
                    return Some((RE_ERR, 0, b"unknown stage".to_vec()));
                };
                let fence = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
                let accept = {
                    let lease = self.lease.lock().expect("lease poisoned");
                    let current = lease.fence == fence && fence != 0;
                    let alive = lease.holder_alive(Instant::now());
                    if current && !alive {
                        self.c.fences_expired.fetch_add(1, Ordering::Relaxed);
                    }
                    current && alive
                };
                if accept {
                    self.store.put(stage, key, payload[9..].to_vec());
                    self.c.puts_accepted.fetch_add(1, Ordering::Relaxed);
                    if self.store.pending_len() >= self.opts.flush_threshold {
                        self.store.flush();
                    }
                    Some((RE_OK, key, Vec::new()))
                } else {
                    // The fence is stale or the lease lapsed: write
                    // nothing — the client re-acquires and resends.
                    self.c.puts_rejected.fetch_add(1, Ordering::Relaxed);
                    Some((RE_REJECTED, key, Vec::new()))
                }
            }
            OP_LEASE => {
                if payload.len() != 8 {
                    return Some((RE_ERR, 0, b"malformed LEASE".to_vec()));
                }
                let epoch = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                if epoch != KEY_EPOCH {
                    return Some((
                        RE_ERR,
                        0,
                        format!("key epoch {epoch} (server has {KEY_EPOCH})").into_bytes(),
                    ));
                }
                let mut lease = self.lease.lock().expect("lease poisoned");
                let now = Instant::now();
                if lease.holder_alive(now) {
                    self.c.leases_busy.fetch_add(1, Ordering::Relaxed);
                    return Some((RE_BUSY, 0, Vec::new()));
                }
                // Expired or never granted: bump the fence and grant.
                lease.next_token += 1;
                lease.token = lease.next_token ^ (key << 16);
                lease.fence += 1;
                lease.deadline = Some(now + self.opts.lease_ttl);
                self.c.leases_granted.fetch_add(1, Ordering::Relaxed);
                let mut body = Vec::with_capacity(16);
                body.extend_from_slice(&lease.fence.to_le_bytes());
                body.extend_from_slice(
                    &(self.opts.lease_ttl.as_millis() as u64).to_le_bytes(),
                );
                Some((RE_GRANT, lease.token, body))
            }
            OP_RENEW => {
                let mut lease = self.lease.lock().expect("lease poisoned");
                let now = Instant::now();
                if lease.token == key && lease.holder_alive(now) {
                    lease.deadline = Some(now + self.opts.lease_ttl);
                    self.c.renews.fetch_add(1, Ordering::Relaxed);
                    Some((RE_OK, key, Vec::new()))
                } else {
                    if lease.token == key {
                        self.c.fences_expired.fetch_add(1, Ordering::Relaxed);
                    }
                    Some((RE_REJECTED, key, Vec::new()))
                }
            }
            OP_RELEASE => {
                let mut lease = self.lease.lock().expect("lease poisoned");
                if lease.token == key && lease.deadline.is_some() {
                    lease.deadline = None;
                    drop(lease);
                    self.c.releases.fetch_add(1, Ordering::Relaxed);
                    self.store.flush();
                    Some((RE_OK, key, Vec::new()))
                } else {
                    Some((RE_REJECTED, key, Vec::new()))
                }
            }
            OP_STATS => {
                let json = serde_json::to_vec(&self.stats()).unwrap_or_default();
                Some((RE_STATS, 0, json))
            }
            _ => Some((RE_ERR, 0, b"unknown request".to_vec())),
        }
    }
}

/// Handle to a running store server. Dropping it stops the server and
/// joins its threads.
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The bound address (useful with a `:0` ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `icfgp://` URL clients should use.
    #[must_use]
    pub fn url(&self) -> String {
        format!("icfgp://{}", self.addr)
    }

    /// The stop flag; setting it "kills" the server (stops accepting,
    /// closes connections). [`FaultyTransport`] takes this for
    /// `kill_mid_put`.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.shared.stop.clone()
    }

    /// Stop the server without waiting for in-flight connections.
    pub fn kill(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Current server-side stats (in-process view).
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Block until the server is stopped (`kill`, or the stop flag set
    /// by a signal handler or fault).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.kill();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve the store directory `dir` over TCP at `addr` (e.g.
/// `127.0.0.1:0`). Returns a handle once the listener is bound; the
/// accept loop and per-connection handlers run on background threads.
///
/// # Errors
///
/// Binding the listener.
pub fn serve(addr: &str, dir: &Path, opts: ServeOptions) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        store: CacheStore::open(dir),
        dir: dir.to_path_buf(),
        lease: Mutex::new(LeaseSlot::default()),
        c: ServerCounters::default(),
        opts,
        stop: Arc::new(AtomicBool::new(false)),
    });
    let accept_shared = shared.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !accept_shared.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    accept_shared.c.connections.fetch_add(1, Ordering::Relaxed);
                    let conn_shared = accept_shared.clone();
                    handlers.push(std::thread::spawn(move || {
                        serve_connection(&conn_shared, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        // A clean stop persists what clients sent; a "kill" (flag set
        // by a fault or signal) leaves pending records unflushed, like
        // a real SIGKILL would.
    });
    Ok(ServeHandle { addr: bound, shared, accept_thread: Some(accept_thread) })
}

fn serve_connection(shared: &ServerShared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.opts.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Killed: drop the connection mid-stream; clients see EOF
            // or a torn frame, both transient.
            return;
        }
        match read_message(&mut stream, request_tag) {
            Ok((tag, key, payload)) => {
                let Some((rtag, rkey, rbody)) = shared.handle(tag, key, &payload) else {
                    return;
                };
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if write_message(&mut stream, rtag, rkey, &rbody).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: poll the stop flag again.
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Torn or corrupt request: unrecoverable framing,
                // close so the client reconnects cleanly.
                shared.c.bad_frames.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => break, // EOF or connection fault
        }
    }
    // Connection closed cleanly (or client died): make what this
    // client sent durable and visible to fresh loads.
    if !shared.stop.load(Ordering::SeqCst) {
        shared.store.flush();
    }
}

// ----- remote client -----------------------------------------------------

/// Client construction knobs for [`RemoteStore`].
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Local overflow store directory: hedged reads probe it, and a
    /// degraded client flushes into it. `None` means degrade to
    /// in-memory-only (every store lookup misses).
    pub overflow_dir: Option<PathBuf>,
    /// Per-exchange connect/read/write timeout.
    pub timeout: Duration,
    /// Consecutive transport failures before the circuit breaker
    /// trips and the client degrades to fully-local operation.
    pub breaker_threshold: u32,
    /// Retry policy for transient transport faults.
    pub retry: RetryPolicy,
    /// Emit onto an existing trace spine instead of a private one
    /// (chaos campaigns share one collector across clients).
    pub trace: Option<Arc<Trace>>,
}

impl Default for RemoteOptions {
    fn default() -> RemoteOptions {
        RemoteOptions {
            overflow_dir: None,
            timeout: Duration::from_millis(1000),
            breaker_threshold: 4,
            retry: RetryPolicy::default(),
            trace: None,
        }
    }
}

struct ClientLease {
    token: u64,
    fence: u64,
    /// When to renew (half the server TTL — well before expiry).
    renew_at: Instant,
}

fn op_name(tag: u8) -> &'static str {
    match tag {
        OP_GET => "get",
        OP_PUT => "put",
        OP_LEASE => "lease",
        OP_RENEW => "renew",
        OP_RELEASE => "release",
        OP_STATS => "stats",
        _ => "other",
    }
}

/// The remote store backend: a [`StoreBackend`] whose records live on
/// an `icfgp cache serve` server, with bounded retries, hedged local
/// reads and degrade-to-local (see the module docs for the ladder).
pub struct RemoteStore {
    url: String,
    transport: Mutex<Box<dyn Transport>>,
    /// Set once a fault transport is installed — campaigns that wrap
    /// the transport themselves (to wire the server kill flag) must
    /// not get double-wrapped by [`FaultPlan`](crate::FaultPlan)
    /// arming.
    net_armed: AtomicBool,
    retry: Mutex<RetryPolicy>,
    breaker_threshold: u32,
    consecutive: AtomicU32,
    degraded: AtomicBool,
    lease: Mutex<Option<ClientLease>>,
    nonce: u64,
    local: Option<Arc<CacheStore>>,
    pending: Mutex<Vec<(Stage, u64, Vec<u8>)>>,
    known: Mutex<HashSet<(Stage, u64)>>,
    /// Keys quarantined this run: never re-served from the server, so
    /// a poisoned record cannot hit-quarantine-hit forever.
    poisoned: Mutex<HashSet<(Stage, u64)>>,
    /// The unified trace spine; all counting is a registry projection
    /// (`StoreSrc::Remote` for this client, `StoreSrc::Hedge` for its
    /// local overflow store, which shares the same trace).
    trace: Arc<Trace>,
    events: Mutex<Vec<StoreEvent>>,
}

impl RemoteStore {
    /// Connect lazily to `url`. Never fails: an unresolvable host
    /// yields a client whose breaker trips on first use and degrades
    /// to the overflow store.
    #[must_use]
    pub fn connect(url: &StoreUrl, opts: RemoteOptions) -> RemoteStore {
        let transport: Box<dyn Transport> =
            match format!("{}:{}", url.host.trim_matches(['[', ']']), url.port)
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
            {
                Some(addr) => Box::new(TcpTransport::new(addr, opts.timeout)),
                None => Box::new(UnresolvedTransport(url.to_string())),
            };
        RemoteStore::build(transport, url.to_string(), opts, false)
    }

    /// A client over an explicit transport (chaos campaigns wrap a
    /// [`TcpTransport`] in a [`FaultyTransport`] here). The transport
    /// counts as caller-owned: a later
    /// [`StoreBackend::arm_net_faults`] will not wrap it again.
    #[must_use]
    pub fn with_transport(
        transport: Box<dyn Transport>,
        url: String,
        opts: RemoteOptions,
    ) -> RemoteStore {
        RemoteStore::build(transport, url, opts, true)
    }

    fn build(
        transport: Box<dyn Transport>,
        url: String,
        opts: RemoteOptions,
        net_armed: bool,
    ) -> RemoteStore {
        let trace = opts.trace.clone().unwrap_or_default();
        let local = opts.overflow_dir.as_deref().map(|d| {
            Arc::new(CacheStore::open_traced(
                d,
                lock_timeout(),
                Arc::clone(&trace),
                StoreSrc::Hedge,
            ))
        });
        let store = RemoteStore {
            url,
            transport: Mutex::new(transport),
            retry: Mutex::new(opts.retry),
            breaker_threshold: opts.breaker_threshold.max(1),
            consecutive: AtomicU32::new(0),
            degraded: AtomicBool::new(false),
            lease: Mutex::new(None),
            net_armed: AtomicBool::new(net_armed),
            nonce: u64::from(std::process::id()) ^ 0x004C_4541_5345_u64, // "LEASE"
            local,
            pending: Mutex::new(Vec::new()),
            known: Mutex::new(HashSet::new()),
            poisoned: Mutex::new(HashSet::new()),
            trace,
            events: Mutex::new(Vec::new()),
        };
        store.event(StoreEventKind::Opened, store.url.clone());
        store
    }

    /// Whether the circuit breaker has tripped (fully-local operation).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    fn event(&self, kind: StoreEventKind, detail: String) {
        let mut events = self.events.lock().expect("events poisoned");
        if events.len() >= 512 {
            events.remove(0);
        }
        events.push(StoreEvent { kind, detail });
    }

    fn emit(&self, op: StoreOp) {
        self.trace.emit(TraceEvent::Store { src: StoreSrc::Remote, op });
    }

    /// One request with bounded, jittered retries. Any `Err` has
    /// already been counted against the circuit breaker.
    fn request(&self, tag: u8, key: u64, payload: &[u8]) -> std::io::Result<(u8, u64, Vec<u8>)> {
        let policy = *self.retry.lock().expect("retry poisoned");
        let mut transport = self.transport.lock().expect("transport poisoned");
        let started = Instant::now();
        let (result, retries) = policy.run(
            |_e: &std::io::Error| Transience::Transient,
            |_| transport.exchange(tag, key, payload),
        );
        drop(transport);
        self.trace.emit(TraceEvent::RpcSpan {
            op: op_name(tag).to_string(),
            ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
        for _ in 0..retries {
            self.emit(StoreOp::Retry);
        }
        match result {
            Ok(reply) => {
                self.consecutive.store(0, Ordering::SeqCst);
                Ok(reply)
            }
            Err(e) => {
                self.note_failure(&e);
                Err(e)
            }
        }
    }

    fn note_failure(&self, e: &std::io::Error) {
        self.emit(StoreOp::IoError);
        self.event(StoreEventKind::IoError, format!("{}: {e}", self.url));
        let failures = self.consecutive.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= self.breaker_threshold && !self.degraded.swap(true, Ordering::SeqCst) {
            self.emit(StoreOp::BreakerTrip);
            self.event(
                StoreEventKind::LockTimeout,
                format!(
                    "circuit breaker tripped after {failures} consecutive transport \
                     failure(s); degraded to {}",
                    self.local
                        .as_ref()
                        .map_or_else(|| "in-memory only".to_string(), |s| {
                            StoreBackend::describe(&**s)
                        })
                ),
            );
        }
    }

    fn local_probe(&self, stage: Stage, key: u64) -> Option<Vec<u8>> {
        self.local.as_ref().and_then(|s| s.get(stage, key))
    }

    /// Take (or renew) the writer lease. `Ok(Some)` is the current
    /// `(token, fence)`, `Ok(None)` means another writer holds it
    /// (defer the flush), `Err` is a transport fault.
    fn ensure_lease(&self) -> std::io::Result<Option<(u64, u64)>> {
        let mut lease = self.lease.lock().expect("lease poisoned");
        if let Some(l) = lease.as_ref() {
            if Instant::now() < l.renew_at {
                return Ok(Some((l.token, l.fence)));
            }
            match self.request(OP_RENEW, l.token, &[])? {
                (RE_OK, ..) => {
                    let l = lease.as_mut().expect("lease present");
                    l.renew_at = Instant::now() + Duration::from_millis(500);
                    return Ok(Some((l.token, l.fence)));
                }
                _ => {
                    // Expired under us (or fence re-granted): the old
                    // token is dead, acquire a fresh lease below.
                    self.event(
                        StoreEventKind::LockTimeout,
                        "lease lost; re-acquiring".to_string(),
                    );
                    *lease = None;
                }
            }
        }
        let mut epoch = Vec::with_capacity(8);
        epoch.extend_from_slice(&KEY_EPOCH.to_le_bytes());
        match self.request(OP_LEASE, self.nonce, &epoch)? {
            (RE_GRANT, token, body) if body.len() == 16 => {
                let fence = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
                let ttl = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
                *lease = Some(ClientLease {
                    token,
                    fence,
                    renew_at: Instant::now() + Duration::from_millis((ttl / 2).max(1)),
                });
                self.emit(StoreOp::LeaseFence { fence });
                Ok(Some((token, fence)))
            }
            (RE_BUSY, ..) => Ok(None),
            (tag, _, body) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "unexpected lease reply {tag:#04x}: {}",
                    String::from_utf8_lossy(&body)
                ),
            )),
        }
    }

    /// Flush `records` into the degraded path: the local overflow
    /// store becomes the writer of record.
    fn flush_local(&self, records: Vec<(Stage, u64, Vec<u8>)>) -> usize {
        let Some(local) = &self.local else { return 0 };
        for (stage, key, payload) in records {
            local.put(stage, key, payload);
        }
        let n = local.flush();
        if n > 0 {
            self.emit(StoreOp::Flushed { records: n as u64 });
        }
        n
    }

    /// Send `records` to the server under the lease fence. Returns how
    /// many the server accepted; unsent or unacknowledged records go
    /// back to `pending`.
    fn flush_remote(&self, mut records: Vec<(Stage, u64, Vec<u8>)>) -> usize {
        match self.ensure_lease() {
            Ok(Some(_)) => {}
            Ok(None) => {
                // Another writer holds the lease: defer, exactly like
                // a local lock timeout.
                self.emit(StoreOp::LockTimeout);
                self.event(
                    StoreEventKind::LockTimeout,
                    "lease busy: flush deferred".to_string(),
                );
                self.pending.lock().expect("pending poisoned").extend(records);
                return 0;
            }
            Err(_) => {
                if self.is_degraded() {
                    return self.flush_local(records);
                }
                self.pending.lock().expect("pending poisoned").extend(records);
                return 0;
            }
        }
        let mut done = 0usize;
        let mut lease_retry = true;
        while let Some((stage, key, payload)) = records.first().cloned() {
            let fence = {
                let lease = self.lease.lock().expect("lease poisoned");
                match lease.as_ref() {
                    Some(l) => l.fence,
                    None => break,
                }
            };
            let mut body = Vec::with_capacity(9 + payload.len());
            body.push(stage.tag());
            body.extend_from_slice(&fence.to_le_bytes());
            body.extend_from_slice(&payload);
            match self.request(OP_PUT, key, &body) {
                Ok((RE_OK, ..)) => {
                    records.remove(0);
                    done += 1;
                }
                Ok((RE_REJECTED, ..)) => {
                    // Lease lost mid-write: the server wrote nothing.
                    // Re-acquire once per flush, then give up and keep
                    // the rest pending.
                    *self.lease.lock().expect("lease poisoned") = None;
                    self.event(
                        StoreEventKind::LockTimeout,
                        "PUT rejected: lease fence expired".to_string(),
                    );
                    if !lease_retry {
                        break;
                    }
                    lease_retry = false;
                    match self.ensure_lease() {
                        Ok(Some(_)) => {}
                        _ => break,
                    }
                }
                Ok(_) | Err(_) => break,
            }
        }
        if !records.is_empty() {
            if self.is_degraded() {
                done += self.flush_local(records);
            } else {
                self.pending.lock().expect("pending poisoned").extend(records);
            }
        }
        if done > 0 {
            self.emit(StoreOp::Flushed { records: done as u64 });
        }
        done
    }

    /// Fetch the server's stats (the `icfgp cache stats --store-url`
    /// path).
    ///
    /// # Errors
    ///
    /// Transport faults, or an unparsable reply.
    pub fn server_stats(&self) -> Result<ServerStats, String> {
        match self.request(OP_STATS, 0, &[]) {
            Ok((RE_STATS, _, body)) => serde_json::from_slice(&body)
                .map_err(|e| format!("unparsable server stats: {e}")),
            Ok((tag, ..)) => Err(format!("unexpected stats reply {tag:#04x}")),
            Err(e) => Err(format!("{}: {e}", self.url)),
        }
    }
}

impl StoreBackend for RemoteStore {
    fn get(&self, stage: Stage, key: u64) -> Option<Vec<u8>> {
        self.emit(StoreOp::Lookup { stage });
        if self.poisoned.lock().expect("poisoned poisoned").contains(&(stage, key)) {
            self.emit(StoreOp::Miss { stage });
            return None;
        }
        if self.is_degraded() {
            self.emit(StoreOp::Degraded);
            return match self.local_probe(stage, key) {
                Some(p) => {
                    self.emit(StoreOp::Hit { stage });
                    Some(p)
                }
                None => {
                    self.emit(StoreOp::Miss { stage });
                    None
                }
            };
        }
        let mut body = Vec::with_capacity(9);
        body.push(stage.tag());
        body.extend_from_slice(&KEY_EPOCH.to_le_bytes());
        let outcome = match self.request(OP_GET, key, &body) {
            Ok((RE_HIT, _, payload)) => {
                self.emit(StoreOp::RemoteHit);
                Some(payload)
            }
            Ok((RE_MISS, ..)) => {
                self.emit(StoreOp::RemoteMiss);
                // Definite remote miss: hedge to the local overflow.
                self.local_probe(stage, key)
            }
            Ok((tag, _, why)) => {
                // A lying or incompatible server (epoch skew reports
                // here): count it against the breaker and hedge local.
                self.note_failure(&std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "unexpected GET reply {tag:#04x}: {}",
                        String::from_utf8_lossy(&why)
                    ),
                ));
                self.local_probe(stage, key)
            }
            Err(_) => self.local_probe(stage, key),
        };
        match outcome {
            Some(p) => {
                self.emit(StoreOp::Hit { stage });
                Some(p)
            }
            None => {
                self.emit(StoreOp::Miss { stage });
                None
            }
        }
    }

    fn put(&self, stage: Stage, key: u64, payload: Vec<u8>) {
        if !self.known.lock().expect("known poisoned").insert((stage, key)) {
            return;
        }
        self.pending.lock().expect("pending poisoned").push((stage, key, payload));
    }

    fn quarantine_record(&self, stage: Stage, key: u64, why: &str) {
        self.poisoned.lock().expect("poisoned poisoned").insert((stage, key));
        self.emit(StoreOp::LookupQuarantine { stage });
        self.event(
            StoreEventKind::DecodeFailure,
            format!("{}:{key:#018x}: {why}", stage.name()),
        );
    }

    fn flush(&self) -> usize {
        let records = std::mem::take(&mut *self.pending.lock().expect("pending poisoned"));
        if records.is_empty() {
            return 0;
        }
        if self.is_degraded() {
            self.flush_local(records)
        } else {
            self.flush_remote(records)
        }
    }

    fn stats(&self) -> StoreStats {
        // The registry projection for this client's own source; the
        // hedge store's counters live under `StoreSrc::Hedge` on the
        // same trace and are reported by the hedge store itself.
        self.trace.registry().store_stats(StoreSrc::Remote)
    }

    fn events(&self) -> Vec<StoreEvent> {
        self.events.lock().expect("events poisoned").clone()
    }

    fn pending_len(&self) -> usize {
        self.pending.lock().expect("pending poisoned").len()
    }

    fn entry_counts(&self) -> Vec<(Stage, usize)> {
        self.local
            .as_ref()
            .map_or_else(|| Stage::ALL.iter().map(|s| (*s, 0)).collect(), |s| s.entry_counts())
    }

    fn describe(&self) -> String {
        if self.is_degraded() {
            match &self.local {
                Some(local) => {
                    format!("{} (degraded to {})", self.url, StoreBackend::describe(&**local))
                }
                None => format!("{} (degraded, no overflow store)", self.url),
            }
        } else {
            self.url.clone()
        }
    }

    fn arm_faults(&self, faults: StoreFaults) {
        if let Some(local) = &self.local {
            local.arm_faults(faults);
        }
    }

    fn arm_net_faults(&self, faults: NetFaults) {
        if !faults.any() || self.net_armed.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut transport = self.transport.lock().expect("transport poisoned");
        let inner = std::mem::replace(
            &mut *transport,
            Box::new(UnresolvedTransport(self.url.clone())),
        );
        *transport = Box::new(FaultyTransport::new(inner, faults, None));
    }

    fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock().expect("retry poisoned") = policy;
        if let Some(local) = &self.local {
            local.set_retry_policy(policy);
        }
    }

    fn trace(&self) -> Arc<Trace> {
        Arc::clone(&self.trace)
    }

    fn trace_src(&self) -> StoreSrc {
        StoreSrc::Remote
    }
}

impl Drop for RemoteStore {
    fn drop(&mut self) {
        // Best-effort: persist what we computed, hand the lease back.
        StoreBackend::flush(self);
        let token = self.lease.lock().expect("lease poisoned").as_ref().map(|l| l.token);
        if let Some(token) = token {
            if !self.is_degraded() {
                let _ = self.request(OP_RELEASE, token, &[]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "icfgp-net-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn client(handle: &ServeHandle, overflow: Option<PathBuf>) -> RemoteStore {
        let url = parse_store_url(&handle.url()).unwrap();
        RemoteStore::connect(
            &url,
            RemoteOptions {
                trace: None,
                overflow_dir: overflow,
                timeout: Duration::from_millis(500),
                breaker_threshold: 3,
                retry: RetryPolicy { base_delay_ms: 0, max_delay_ms: 0, ..RetryPolicy::seeded(7) },
            },
        )
    }

    #[test]
    fn url_parsing_accepts_good_and_rejects_garbage() {
        let u = parse_store_url("icfgp://cache.example:9009").unwrap();
        assert_eq!((u.host.as_str(), u.port), ("cache.example", 9009));
        assert_eq!(u.to_string(), "icfgp://cache.example:9009");
        let v6 = parse_store_url("icfgp://[::1]:80").unwrap();
        assert_eq!((v6.host.as_str(), v6.port), ("::1", 80));
        for bad in [
            "http://host:1",
            "icfgp://host",
            "icfgp://:9009",
            "icfgp://ho st:9009",
            "icfgp://host:port",
            "icfgp://host:0",
            "icfgp://host:99999",
            "",
        ] {
            assert!(parse_store_url(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn roundtrip_and_warm_second_client() {
        let dir = tmp_dir("roundtrip");
        let server = serve("127.0.0.1:0", &dir, ServeOptions::default()).unwrap();
        {
            let a = client(&server, None);
            assert_eq!(a.get(Stage::Func, 1), None, "cold lookup misses");
            a.put(Stage::Func, 1, b"alpha".to_vec());
            a.put(Stage::Emit, 2, b"beta".to_vec());
            assert_eq!(StoreBackend::flush(&a), 2);
            assert_eq!(a.get(Stage::Func, 1).as_deref(), Some(&b"alpha"[..]));
            let s = a.stats();
            assert_eq!(s.hits + s.misses, 2, "lookup conservation");
            assert_eq!(s.remote_hits, 1);
            assert_eq!(s.breaker_trips, 0);
        }
        let b = client(&server, None);
        assert_eq!(b.get(Stage::Func, 1).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(b.get(Stage::Emit, 2).as_deref(), Some(&b"beta"[..]));
        let stats = server.stats();
        assert!(stats.puts_accepted == 2 && stats.puts_rejected == 0, "{stats:?}");
        assert_eq!(stats.fence, 1, "one lease granted");
    }

    #[test]
    fn dead_server_degrades_without_hanging() {
        // Port 1 on localhost: connection refused immediately.
        let url = parse_store_url("icfgp://127.0.0.1:1").unwrap();
        let store = RemoteStore::connect(
            &url,
            RemoteOptions {
                trace: None,
                timeout: Duration::from_millis(100),
                breaker_threshold: 2,
                retry: RetryPolicy { base_delay_ms: 0, max_delay_ms: 0, ..RetryPolicy::none() },
                overflow_dir: None,
            },
        );
        let start = Instant::now();
        for key in 0..8 {
            assert_eq!(store.get(Stage::Func, key), None);
        }
        store.put(Stage::Func, 9, b"x".to_vec());
        assert_eq!(StoreBackend::flush(&store), 0, "nowhere to persist");
        assert!(store.is_degraded(), "breaker must trip");
        let s = store.stats();
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 8, "dead server only costs misses");
        assert!(s.degraded > 0, "post-trip lookups count as degraded");
        assert!(start.elapsed() < Duration::from_secs(10), "bounded, no hang");
    }

    #[test]
    fn degraded_client_flushes_to_overflow_store() {
        let overflow = tmp_dir("overflow");
        let url = parse_store_url("icfgp://127.0.0.1:1").unwrap();
        {
            let store = RemoteStore::connect(
                &url,
                RemoteOptions {
                    trace: None,
                    timeout: Duration::from_millis(100),
                    breaker_threshold: 1,
                    retry: RetryPolicy::none(),
                    overflow_dir: Some(overflow.clone()),
                },
            );
            assert_eq!(store.get(Stage::Func, 5), None, "trips the breaker");
            store.put(Stage::Func, 5, b"local".to_vec());
            assert_eq!(StoreBackend::flush(&store), 1, "degraded flush goes local");
        }
        let reopened = CacheStore::open(&overflow);
        assert_eq!(reopened.get(Stage::Func, 5).as_deref(), Some(&b"local"[..]));
    }

    #[test]
    fn expired_fence_put_is_rejected_and_writes_nothing() {
        let dir = tmp_dir("fence");
        let server = serve(
            "127.0.0.1:0",
            &dir,
            ServeOptions { lease_ttl: Duration::from_millis(60), ..ServeOptions::default() },
        )
        .unwrap();
        let a = client(&server, None);
        // Acquire by flushing once.
        a.put(Stage::Func, 1, b"one".to_vec());
        assert_eq!(StoreBackend::flush(&a), 1);
        // Let the lease expire, then hand it to a second writer —
        // bumping the fence past A's.
        std::thread::sleep(Duration::from_millis(120));
        let b = client(&server, None);
        b.put(Stage::Func, 2, b"two".to_vec());
        assert_eq!(StoreBackend::flush(&b), 1, "expired lease re-grants to B");
        // A PUT carrying A's lapsed fence (1) must be rejected
        // server-side and write nothing. Drive it raw so the client's
        // own staleness check can't get in the way.
        let mut raw = TcpTransport::new(server.addr(), Duration::from_millis(500));
        let mut body = vec![Stage::Func.tag()];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(b"stale");
        let (tag, ..) = raw.exchange(OP_PUT, 3, &body).unwrap();
        assert_eq!(tag, RE_REJECTED, "stale fence must reject");
        let stats = server.stats();
        assert!(stats.puts_rejected >= 1, "stale fence must reject: {stats:?}");
        assert_eq!(stats.store.quarantined_records, 0, "rejections quarantine nothing");
        let mut probe = vec![Stage::Func.tag()];
        probe.extend_from_slice(&KEY_EPOCH.to_le_bytes());
        let (tag, ..) = raw.exchange(OP_GET, 3, &probe).unwrap();
        assert_eq!(tag, RE_MISS, "rejected PUT must write nothing");
        // Meanwhile the well-behaved client A notices its lease lapsed
        // before writing: with B's lease live it defers to pending.
        a.put(Stage::Func, 3, b"three".to_vec());
        let n = StoreBackend::flush(&a);
        assert!(n == 1 || a.pending_len() == 1, "rejected PUT must stay pending");
    }

    #[test]
    fn second_writer_defers_while_lease_is_busy() {
        let dir = tmp_dir("busy");
        let server = serve(
            "127.0.0.1:0",
            &dir,
            ServeOptions { lease_ttl: Duration::from_secs(30), ..ServeOptions::default() },
        )
        .unwrap();
        let a = client(&server, None);
        a.put(Stage::Func, 1, b"one".to_vec());
        assert_eq!(StoreBackend::flush(&a), 1);
        let b = client(&server, None);
        b.put(Stage::Func, 2, b"two".to_vec());
        assert_eq!(StoreBackend::flush(&b), 0, "lease busy: defer");
        assert_eq!(b.pending_len(), 1, "deferred records stay pending");
        assert_eq!(b.stats().lock_timeouts, 1);
        assert_eq!(server.stats().leases_busy, 1);
    }

    #[test]
    fn killed_server_mid_run_costs_misses_only() {
        let dir = tmp_dir("kill");
        let server = serve("127.0.0.1:0", &dir, ServeOptions::default()).unwrap();
        let url = parse_store_url(&server.url()).unwrap();
        let addr = server.addr();
        let faults = NetFaults { seed: 3, kill_mid_put: 1.0, ..NetFaults::default() };
        let transport = FaultyTransport::new(
            Box::new(TcpTransport::new(addr, Duration::from_millis(200))),
            faults,
            Some(server.stop_flag()),
        );
        let store = RemoteStore::with_transport(
            Box::new(transport),
            url.to_string(),
            RemoteOptions {
                trace: None,
                timeout: Duration::from_millis(200),
                breaker_threshold: 2,
                retry: RetryPolicy { base_delay_ms: 0, max_delay_ms: 0, ..RetryPolicy::none() },
                overflow_dir: None,
            },
        );
        assert_eq!(store.get(Stage::Func, 1), None, "works before the kill");
        store.put(Stage::Func, 1, b"doomed".to_vec());
        let start = Instant::now();
        assert_eq!(StoreBackend::flush(&store), 0, "kill mid-PUT persists nothing");
        for key in 10..14 {
            assert_eq!(store.get(Stage::Func, key), None);
        }
        assert!(store.is_degraded(), "dead server trips the breaker");
        assert!(start.elapsed() < Duration::from_secs(10), "bounded");
    }

    #[test]
    fn torn_and_bitflipped_replies_are_transient() {
        let dir = tmp_dir("torn");
        let server = serve("127.0.0.1:0", &dir, ServeOptions::default()).unwrap();
        let url = parse_store_url(&server.url()).unwrap();
        let faults = NetFaults {
            seed: 11,
            torn_response: 0.4,
            bit_flip_reply: 0.3,
            drop: 0.2,
            ..NetFaults::default()
        };
        let transport = FaultyTransport::new(
            Box::new(TcpTransport::new(server.addr(), Duration::from_millis(500))),
            faults,
            None,
        );
        let store = RemoteStore::with_transport(
            Box::new(transport),
            url.to_string(),
            RemoteOptions {
                trace: None,
                timeout: Duration::from_millis(500),
                breaker_threshold: 1_000_000, // never trip: isolate retry behaviour
                retry: RetryPolicy {
                    max_attempts: 10,
                    base_delay_ms: 0,
                    max_delay_ms: 0,
                    seed: 11,
                },
                overflow_dir: None,
            },
        );
        store.put(Stage::Func, 1, b"payload".to_vec());
        while StoreBackend::flush(&store) == 0 && store.pending_len() > 0 {}
        let mut hits = 0;
        for _ in 0..12 {
            if store.get(Stage::Func, 1).as_deref() == Some(&b"payload"[..]) {
                hits += 1;
            }
        }
        assert!(hits > 0, "faulty transport still serves through retries");
        let s = store.stats();
        assert!(s.retries > 0, "faults must have caused retries: {s:?}");
        assert_eq!(s.hits + s.misses, 12, "conservation under faults");
    }
}

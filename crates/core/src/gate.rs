//! Predictive mode gating: choose each function's *starting*
//! degradation-ladder rung from the audit verdict lattice.
//!
//! Without gating, the ladder discovers under-approximation
//! reactively: rewrite, fail `icfgp-verify`, demote one rung, repeat —
//! a function whose jump-table evidence is broken at `func-ptr` burns
//! a round per rung on its way down. [`apply_audit_gate`] runs the
//! whole-binary static soundness audit (`icfgp-audit`) *before* the
//! first rewrite and installs per-function starting rungs, so the
//! ladder starts at a statically justified height and converges in
//! measurably fewer rounds.
//!
//! The gate only acts on [`AuditSeverity::UnderApproxRisk`]:
//! over-approximation is wasteful but safe (demoting for it would
//! trade correct instrumentation away for nothing), and `Unknown`
//! covers functions the auditor cannot see into at all (analysis
//! failures, placement stress) — those the reactive ladder handles
//! with full information. This keeps clean binaries completely
//! ungated: every `proven`/`over-approx` function starts at the
//! requested mode.
//!
//! Audit reports are memoised through the [`RewriteCache`] (and its
//! persistent store, under `Stage::Audit`), keyed on the binary
//! fingerprint, the *armed* analysis configuration and the placement
//! stress inputs — a ladder re-run or a chaos campaign retry reuses
//! the report instead of re-analysing.

use crate::cache::{binary_fingerprint, RewriteCache};
use crate::config::{FuncMode, RewriteConfig, RewriteMode};
use icfgp_audit::{
    audit_binary, AuditMode, AuditReport, AuditSeverity, ReachCheck, VerdictCounts,
};
use icfgp_obj::Binary;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The audit-mode view of a rewriting mode.
#[must_use]
pub fn audit_mode_of(mode: RewriteMode) -> AuditMode {
    match mode {
        RewriteMode::Dir => AuditMode::Dir,
        RewriteMode::Jt => AuditMode::Jt,
        RewriteMode::FuncPtr => AuditMode::FuncPtr,
    }
}

/// The placement-feasibility inputs of a configuration, in the form
/// the auditor's `ICFGP-A010` check takes: the fault plan's placement
/// stress knobs plus the `.instr` gap.
#[must_use]
pub fn reach_check_of(config: &RewriteConfig) -> ReachCheck {
    let plan = config.fault_plan.as_ref();
    ReachCheck {
        instr_gap: config.instr_gap,
        budgets_shrunk: plan.is_some_and(|p| p.shrink_budgets),
        scratch_starved: plan.is_some_and(|p| p.starve_scratch),
        reach_exhausted: plan.is_some_and(|p| p.exhaust_reach),
    }
}

/// The audit-report cache key: binary content, armed analysis
/// configuration (fault injections change what the audit must
/// predict), and the placement stress inputs.
fn audit_key(binary_fp: u64, config: &RewriteConfig, reach: &ReachCheck) -> u64 {
    let mut h = DefaultHasher::new();
    0xA0D1u64.hash(&mut h);
    binary_fp.hash(&mut h);
    config.analysis.fingerprint().hash(&mut h);
    reach.instr_gap.hash(&mut h);
    reach.budgets_shrunk.hash(&mut h);
    reach.scratch_starved.hash(&mut h);
    reach.reach_exhausted.hash(&mut h);
    h.finish()
}

/// What the gate did: the audit verdicts and every starting-rung
/// override it installed.
#[derive(Debug, Clone)]
pub struct GateSummary {
    /// The audit report the gate consulted.
    pub report: Arc<AuditReport>,
    /// The report was served from the cache (in-memory or persisted).
    pub cache_hit: bool,
    /// Verdict counts under the requested rewriting mode.
    pub counts: VerdictCounts,
    /// Functions whose starting rung was lowered: entry address → the
    /// statically justified rung.
    pub gated: BTreeMap<u64, FuncMode>,
}

/// Audit `binary` (memoised through `cache`) and install into
/// `config.func_modes` a statically justified *starting* rung for
/// every function whose relevant evidence carries under-approximation
/// risk.
///
/// Per function, the gate walks down from the currently configured
/// rung while the rung is a `Full` mode whose relevant verdict is
/// [`AuditSeverity::UnderApproxRisk`]; the walk floors at
/// [`FuncMode::TrapOnly`], the sturdiest rung that still instruments
/// (it tolerates under-approximated block sets by construction, so no
/// static evidence can disqualify it). A function whose only risk is
/// function-pointer evidence therefore starts at `Full(Jt)` under a
/// `func-ptr` request; a function with broken table evidence starts at
/// `TrapOnly`.
///
/// Call *after* the fault plan is armed: the audit grades
/// `config.analysis.inject`, so it predicts exactly the faults the
/// rewrite will experience.
pub fn apply_audit_gate(
    binary: &Binary,
    config: &mut RewriteConfig,
    cache: &RewriteCache,
) -> GateSummary {
    let reach = reach_check_of(config);
    let key = audit_key(binary_fingerprint(binary), config, &reach);
    let analysis = config.analysis.clone();
    let (report, cache_hit) =
        cache.audit(key, || audit_binary(binary, &analysis, Some(&reach)));
    let mut gated = BTreeMap::new();
    for &entry in report.functions.keys() {
        let start = config.func_mode(entry);
        let mut rung = start;
        while let FuncMode::Full(m) = rung {
            if report.verdict(entry, audit_mode_of(m)) == AuditSeverity::UnderApproxRisk {
                rung = rung.lower().expect("Full rungs always have a lower rung");
            } else {
                break;
            }
        }
        if rung != start {
            config.func_modes.insert(entry, rung);
            gated.insert(entry, rung);
        }
    }
    GateSummary {
        counts: report.counts(audit_mode_of(config.mode)),
        report,
        cache_hit,
        gated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_cfg::InjectedFault;
    use icfgp_isa::Arch;

    fn workload() -> icfgp_obj::Binary {
        // PIE: function-pointer definitions carry relocation evidence,
        // so a clean binary audits proven (non-PIE word-scan defs are
        // honestly flagged A003 and would gate func-ptr mode down).
        let mut params = icfgp_workloads::GenParams::small("gate", Arch::X64, 5);
        params.pie = true;
        icfgp_workloads::generate(&params).binary
    }

    #[test]
    fn clean_binary_is_not_gated() {
        let bin = workload();
        let mut config = RewriteConfig::new(RewriteMode::FuncPtr);
        let cache = RewriteCache::new();
        let summary = apply_audit_gate(&bin, &mut config, &cache);
        assert!(
            summary.gated.is_empty(),
            "no under-approximation risk, no gating: {:?}",
            summary.gated
        );
        assert!(config.func_modes.is_empty());
    }

    #[test]
    fn injected_under_approximation_gates_to_trap_only() {
        let bin = workload();
        let cache = RewriteCache::new();
        let clean = crate::cache::analyze_incremental(
            &bin,
            &icfgp_cfg::AnalysisConfig::default(),
            &cache,
            1,
        );
        let (entry, jump_addr) = clean
            .analysis
            .funcs
            .values()
            .find_map(|f| f.jump_tables.first().map(|jt| (f.entry, jt.jump_addr)))
            .expect("workload has a jump table");
        let mut config = RewriteConfig::new(RewriteMode::FuncPtr);
        config
            .analysis
            .inject
            .push(InjectedFault::UnderApproximateTable { jump_addr, drop: 1 });
        let summary = apply_audit_gate(&bin, &mut config, &cache);
        // A002 is relevant at every Full rung, so the victim lands on
        // the trap-only floor in one step instead of three reactive
        // demotion rounds.
        assert_eq!(summary.gated.get(&entry), Some(&FuncMode::TrapOnly));
        assert_eq!(config.func_mode(entry), FuncMode::TrapOnly);
        assert_eq!(summary.counts.under_approx_risk, 1);
    }

    #[test]
    fn second_gate_hits_the_cache() {
        let bin = workload();
        let cache = RewriteCache::new();
        let mut a = RewriteConfig::new(RewriteMode::Jt);
        let cold = apply_audit_gate(&bin, &mut a, &cache);
        assert!(!cold.cache_hit);
        let mut b = RewriteConfig::new(RewriteMode::Jt);
        let warm = apply_audit_gate(&bin, &mut b, &cache);
        assert!(warm.cache_hit);
        assert_eq!(*cold.report, *warm.report);
    }
}

//! Trampoline placement analysis (§4).
//!
//! Input: a function's CFL blocks and the relocated addresses they
//! must transfer to. Output: per-block trampoline choices plus the
//! byte patches to apply to original code. The analysis implements:
//!
//! * **superblocks** — every non-CFL block is a scratch block (§4.2:
//!   if control entered it in original code, that block would itself
//!   be CFL), so a CFL block's trampoline budget extends over the
//!   contiguous run of following scratch blocks;
//! * **multi-hop trampolines** — when the budget only fits the short
//!   form and the short form cannot reach `.instr`, a short branch
//!   hops to a nearby scratch *island* holding the long form. Islands
//!   are allocated from leftover superblock space, inter-function
//!   padding, dead inline jump tables, and the renamed `.old.*`
//!   dynamic-linking sections (§7's three scratch sources);
//! * **trap trampolines** — the last resort (1 byte / 1 word), with a
//!   `.trap_map` entry for the runtime's signal handler.

use crate::cfl::CflReason;
use crate::config::PlacementConfig;
use crate::tramp;
use icfgp_cfg::{FuncCfg, LivenessResult};
use icfgp_isa::Arch;
use std::collections::BTreeMap;

/// The chosen trampoline form for one CFL block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrampolineKind {
    /// Single short branch.
    Short,
    /// Inline long sequence.
    Long {
        /// ppc64le save/restore variant (no dead register).
        saves_reg: bool,
    },
    /// Short branch to an island holding the long sequence.
    MultiHop {
        /// Island address.
        island: u64,
    },
    /// Trap instruction + `.trap_map` entry.
    Trap,
}

/// One placed trampoline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedTrampoline {
    /// CFL block start (where the trampoline bytes go).
    pub block: u64,
    /// End of the trampoline budget (superblock end).
    pub budget_end: u64,
    /// Why the block is CFL.
    pub reason: CflReason,
    /// Chosen form.
    pub kind: TrampolineKind,
    /// Relocated target.
    pub target: u64,
}

/// A byte patch against the original image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patch {
    /// Where to write.
    pub addr: u64,
    /// Bytes to write.
    pub bytes: Vec<u8>,
}

/// The full placement result for one function.
#[derive(Debug, Clone, Default)]
pub struct PlacementPlan {
    /// Chosen trampolines.
    pub trampolines: Vec<PlacedTrampoline>,
    /// Byte patches (trampolines and islands).
    pub patches: Vec<Patch>,
    /// `.trap_map` entries (trap address → relocated target).
    pub trap_entries: Vec<(u64, u64)>,
}

/// Free scratch ranges shared across the whole binary.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    ranges: Vec<(u64, u64)>,
    /// Every range ever donated, in donation order. Allocation
    /// fragments are not re-recorded, so this is the provenance log
    /// the verifier checks island allocations against.
    donations: Vec<(u64, u64)>,
}

impl ScratchPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Donate a free range.
    pub fn donate(&mut self, start: u64, end: u64) {
        if end > start {
            self.ranges.push((start, end));
            self.donations.push((start, end));
        }
    }

    /// Every range ever donated (fragments returned by allocation are
    /// subsumed by their original donation and not listed again).
    #[must_use]
    pub fn donations(&self) -> &[(u64, u64)] {
        &self.donations
    }

    /// Total free bytes.
    #[allow(dead_code)] // used by tests and future placement policies
    #[must_use]
    pub fn free_bytes(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Allocate `size` bytes (aligned to `align`) whose start is within
    /// `max_dist` of `near`. Returns the allocated address.
    pub fn allocate_near(&mut self, near: u64, size: u64, align: u64, max_dist: u64) -> Option<u64> {
        let mut best: Option<(usize, u64, u64)> = None; // (idx, addr, dist)
        for (i, (s, e)) in self.ranges.iter().enumerate() {
            let addr = s + (align - (s % align)) % align;
            if addr + size > *e {
                continue;
            }
            let dist = near.abs_diff(addr);
            if dist > max_dist {
                continue;
            }
            if best.is_none_or(|(_, _, d)| dist < d) {
                best = Some((i, addr, dist));
            }
        }
        let (i, addr, _) = best?;
        let (s, e) = self.ranges.remove(i);
        // Return the two leftover fragments (without re-logging them
        // as donations — they stay covered by the original one).
        if addr > s {
            self.ranges.push((s, addr));
        }
        if e > addr + size {
            self.ranges.push((addr + size, e));
        }
        Some(addr)
    }
}

/// Inputs for placing one function's trampolines.
pub(crate) struct PlaceCtx<'a> {
    pub arch: Arch,
    pub func: &'a FuncCfg,
    pub cfl: &'a BTreeMap<u64, CflReason>,
    /// Original block start → relocated address.
    pub block_map: &'a BTreeMap<u64, u64>,
    pub liveness: &'a LivenessResult,
    pub toc: Option<u64>,
    pub placement: &'a PlacementConfig,
}

/// Place all trampolines for one function.
pub(crate) fn place_function(ctx: &PlaceCtx<'_>, pool: &mut ScratchPool) -> PlacementPlan {
    let mut plan = PlacementPlan::default();
    let arch = ctx.arch;
    // Compute superblock budgets.
    let blocks: Vec<u64> = ctx.func.blocks.keys().copied().collect();
    let mut budgets: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, start) in blocks.iter().enumerate() {
        if !ctx.cfl.contains_key(start) {
            continue;
        }
        let block = &ctx.func.blocks[start];
        let mut end = block.end;
        if ctx.placement.superblocks {
            // Extend across contiguous non-CFL (scratch) blocks.
            for next in &blocks[i + 1..] {
                let nb = &ctx.func.blocks[next];
                if nb.start != end || ctx.cfl.contains_key(next) {
                    break;
                }
                end = nb.end;
            }
        }
        budgets.insert(*start, end);
    }

    // Phase 1: direct placements; defer blocks that need islands.
    let mut deferred: Vec<(u64, u64, u64)> = Vec::new(); // (block, budget_end, target)
    for (start, budget_end) in &budgets {
        let reason = ctx.cfl[start];
        let Some(&target) = ctx.block_map.get(start) else {
            // CFL block with no relocated copy (shouldn't happen for
            // instrumented functions); skip defensively.
            continue;
        };
        // Forced trap placement (trap-only degradation rung): traps
        // never clobber registers and fit any budget, so a function
        // with corrupt liveness or broken budgets still redirects
        // every block safely through the signal handler.
        if ctx.placement.force_trap {
            trap(&mut plan, arch, *start, *budget_end, reason, target);
            continue;
        }
        let budget = budget_end - start;
        let scratch = ctx.liveness.scratch_reg_at(*start);
        let short = tramp::short_branch(arch, *start, target);
        // Preference order: a reaching branch that fits inline, then
        // the long form inline, then multi-hop, then trap.
        if arch == Arch::X64 {
            if budget >= 5 {
                let bytes = tramp::near_branch_x64(*start, target).expect("within 2GB");
                push_tramp(&mut plan, *start, *budget_end, reason,
                    TrampolineKind::Long { saves_reg: false }, target, bytes);
                continue;
            }
            if let Some(bytes) = short {
                if budget >= bytes.len() as u64 {
                    push_tramp(&mut plan, *start, *budget_end, reason, TrampolineKind::Short,
                        target, bytes);
                    continue;
                }
            }
            if ctx.placement.multi_hop && budget >= 2 {
                deferred.push((*start, *budget_end, target));
                continue;
            }
            trap(&mut plan, arch, *start, *budget_end, reason, target);
            continue;
        }
        // RISC: budget is always >= 4.
        if let Some(bytes) = short {
            push_tramp(&mut plan, *start, *budget_end, reason, TrampolineKind::Short, target, bytes);
            continue;
        }
        let plain_len = tramp::long_branch_len(arch, false) as u64;
        let save_len = tramp::long_branch_len(arch, true) as u64;
        if budget >= plain_len {
            if let Some(bytes) = tramp::long_branch(arch, *start, target, ctx.toc, scratch) {
                push_tramp(&mut plan, *start, *budget_end, reason,
                    TrampolineKind::Long { saves_reg: false }, target, bytes);
                continue;
            }
            // No dead register: ppc64le save/restore variant; aarch64
            // has none and falls through.
            if arch == Arch::Ppc64le && budget >= save_len {
                if let Some(bytes) = tramp::long_branch(arch, *start, target, ctx.toc, None) {
                    push_tramp(&mut plan, *start, *budget_end, reason,
                        TrampolineKind::Long { saves_reg: true }, target, bytes);
                    continue;
                }
            }
        }
        if ctx.placement.multi_hop {
            deferred.push((*start, *budget_end, target));
            continue;
        }
        trap(&mut plan, arch, *start, *budget_end, reason, target);
    }

    // Donate leftover superblock bytes to the island pool (§2.2's
    // extra reusable code bytes; mainstream placement lacks this).
    if ctx.placement.reuse_block_leftovers {
        for t in &plan.trampolines {
            let used = tramp_len(arch, t);
            pool.donate(t.block + used, t.budget_end);
        }
    }

    // Phase 2: islands for the deferred blocks.
    for (start, budget_end, target) in deferred {
        let reason = ctx.cfl[&start];
        let scratch = ctx.liveness.scratch_reg_at(start);
        // Island holds the long form (for the context of this block).
        let (island_bytes_len, use_save) = match arch {
            Arch::X64 => (5u64, false),
            Arch::Aarch64 => {
                if scratch.is_some() {
                    (tramp::long_branch_len(arch, false) as u64, false)
                } else {
                    // aarch64 with no dead register: trap (§7).
                    trap(&mut plan, arch, start, budget_end, reason, target);
                    continue;
                }
            }
            Arch::Ppc64le => {
                if scratch.is_some() {
                    (tramp::long_branch_len(arch, false) as u64, false)
                } else {
                    (tramp::long_branch_len(arch, true) as u64, true)
                }
            }
        };
        // The short hop must reach the island.
        let reach = arch.short_branch_reach() as u64;
        let slack = island_bytes_len + 16;
        match pool.allocate_near(start, island_bytes_len, arch.inst_align(), reach - slack) {
            Some(island) => {
                let hop =
                    tramp::short_branch(arch, start, island).expect("allocated within reach");
                let long = if use_save {
                    tramp::long_branch(arch, island, target, ctx.toc, None)
                } else if arch == Arch::X64 {
                    Some(tramp::near_branch_x64(island, target).expect("within 2GB"))
                } else {
                    tramp::long_branch(arch, island, target, ctx.toc, scratch)
                };
                let Some(long) = long else {
                    trap(&mut plan, arch, start, budget_end, reason, target);
                    continue;
                };
                plan.patches.push(Patch { addr: island, bytes: long });
                push_tramp(&mut plan, start, budget_end, reason,
                    TrampolineKind::MultiHop { island }, target, hop);
            }
            None => trap(&mut plan, arch, start, budget_end, reason, target),
        }
    }
    plan
}

fn push_tramp(
    plan: &mut PlacementPlan,
    block: u64,
    budget_end: u64,
    reason: CflReason,
    kind: TrampolineKind,
    target: u64,
    bytes: Vec<u8>,
) {
    plan.patches.push(Patch { addr: block, bytes });
    plan.trampolines.push(PlacedTrampoline { block, budget_end, reason, kind, target });
}

fn trap(
    plan: &mut PlacementPlan,
    arch: Arch,
    block: u64,
    budget_end: u64,
    reason: CflReason,
    target: u64,
) {
    plan.patches.push(Patch { addr: block, bytes: tramp::trap_trampoline(arch) });
    plan.trap_entries.push((block, target));
    plan.trampolines.push(PlacedTrampoline {
        block,
        budget_end,
        reason,
        kind: TrampolineKind::Trap,
        target,
    });
}

fn tramp_len(arch: Arch, t: &PlacedTrampoline) -> u64 {
    match t.kind {
        TrampolineKind::Short => arch.short_branch_len() as u64,
        TrampolineKind::Long { saves_reg } => tramp::long_branch_len(arch, saves_reg) as u64,
        TrampolineKind::MultiHop { .. } => arch.short_branch_len() as u64,
        TrampolineKind::Trap => arch.trap_len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_allocation_prefers_nearby() {
        let mut pool = ScratchPool::new();
        pool.donate(0x1000, 0x1100);
        pool.donate(0x9000, 0x9100);
        let a = pool.allocate_near(0x9050, 16, 4, 0x10000).unwrap();
        assert!((0x9000..0x9100).contains(&a), "nearest range chosen: {a:#x}");
        // The used range is split; remaining capacity shrinks.
        assert_eq!(pool.free_bytes(), 0x200 - 16);
    }

    #[test]
    fn pool_respects_distance_and_alignment() {
        let mut pool = ScratchPool::new();
        pool.donate(0x1001, 0x1041);
        assert!(pool.allocate_near(0x9000, 16, 4, 0x100).is_none(), "too far");
        let a = pool.allocate_near(0x1000, 16, 4, 0x100).unwrap();
        assert_eq!(a % 4, 0);
        assert!(a >= 0x1004);
    }

    #[test]
    fn pool_exhaustion() {
        let mut pool = ScratchPool::new();
        pool.donate(0x1000, 0x1008);
        assert!(pool.allocate_near(0x1000, 16, 1, 0x100).is_none());
        assert!(pool.allocate_near(0x1000, 8, 1, 0x100).is_some());
        assert!(pool.allocate_near(0x1000, 1, 1, 0x100).is_none(), "now empty");
    }
}

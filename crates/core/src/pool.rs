//! The shared scoped-thread worker pool.
//!
//! One pool implementation serves every fan-out site in the workspace:
//! the incremental rewrite engine (per-function analysis, fragment
//! building, emission) and the benchmark harness (`icfgp-bench`
//! Table 3). Work is distributed by an atomic cursor — idle workers
//! steal the next unclaimed item — so load balances dynamically, while
//! results are returned **in item order**, which keeps every consumer
//! deterministic regardless of scheduling or thread count.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! capped at 16 and can be overridden with the `ICFGP_THREADS`
//! environment variable (values are clamped to `1..=16`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard cap on worker threads.
pub const MAX_THREADS: usize = 16;

/// The default worker count: the `ICFGP_THREADS` environment override
/// when set (clamped to `1..=`[`MAX_THREADS`]), otherwise
/// `available_parallelism` capped at [`MAX_THREADS`].
#[must_use]
pub fn default_threads() -> usize {
    if let Some(n) = threads_from_env(std::env::var("ICFGP_THREADS").ok().as_deref()) {
        return n;
    }
    std::thread::available_parallelism()
        .map_or(4, usize::from)
        .min(MAX_THREADS)
}

/// Parse an `ICFGP_THREADS`-style override. `None` for unset, empty or
/// unparsable values; parsed values are clamped to
/// `1..=`[`MAX_THREADS`].
#[must_use]
pub fn threads_from_env(value: Option<&str>) -> Option<usize> {
    let n: usize = value?.trim().parse().ok()?;
    Some(n.clamp(1, MAX_THREADS))
}

/// Run `f` over every item of `items` on up to `threads` scoped worker
/// threads and return the results in item order.
///
/// Items are claimed through a shared atomic cursor (work stealing by
/// self-scheduling): a fast worker drains more items than a slow one,
/// but the output `Vec` is always `[f(0, &items[0]), f(1, &items[1]),
/// ...]` — callers observe identical results for any thread count.
/// With `threads <= 1` or fewer than two items everything runs on the
/// calling thread. A panicking `f` propagates to the caller.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.clamp(1, MAX_THREADS).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slot_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                let slot_ptr = &slot_ptr;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    // SAFETY: each index is claimed by exactly one
                    // worker (fetch_add), so writes are disjoint, and
                    // `slots` outlives the scope.
                    unsafe { *slot_ptr.0.add(i) = Some(r) };
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// A raw pointer wrapper that is `Sync` so workers can write disjoint
/// result slots without locking.
struct SendPtr<R>(*mut Option<R>);
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8, 16] {
            let out = map(threads, &items, |i, v| (i as u64) * 1000 + v * 2);
            let expect: Vec<u64> = (0..100).map(|v| v * 1000 + v * 2).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(map(8, &none, |_, v| *v).is_empty());
        assert_eq!(map(8, &[7u32], |_, v| v + 1), vec![8]);
    }

    #[test]
    fn env_override_parses_and_clamps() {
        assert_eq!(threads_from_env(None), None);
        assert_eq!(threads_from_env(Some("")), None);
        assert_eq!(threads_from_env(Some("banana")), None);
        assert_eq!(threads_from_env(Some("4")), Some(4));
        assert_eq!(threads_from_env(Some(" 8 ")), Some(8));
        assert_eq!(threads_from_env(Some("0")), Some(1));
        assert_eq!(threads_from_env(Some("999")), Some(MAX_THREADS));
    }

    #[test]
    fn default_threads_in_range() {
        let n = default_threads();
        assert!((1..=MAX_THREADS).contains(&n));
    }
}

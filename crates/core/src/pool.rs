//! The shared scoped-thread worker pool.
//!
//! One pool implementation serves every fan-out site in the workspace:
//! the incremental rewrite engine (per-function analysis, fragment
//! building, emission) and the benchmark harness (`icfgp-bench`
//! Table 3). Work is distributed by an atomic cursor — idle workers
//! steal the next unclaimed item — so load balances dynamically, while
//! results are returned **in item order**, which keeps every consumer
//! deterministic regardless of scheduling or thread count.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! capped at 16 and can be overridden with the `ICFGP_THREADS`
//! environment variable. `ICFGP_THREADS` must be an integer in
//! `1..=16`; `0` and garbage are rejected with an error (the CLI
//! exits with usage code 64) rather than silently defaulted, and
//! values above the cap are clamped to 16.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard cap on worker threads.
pub const MAX_THREADS: usize = 16;

/// The default worker count: the `ICFGP_THREADS` environment override
/// when valid, otherwise `available_parallelism` capped at
/// [`MAX_THREADS`]. An *invalid* override (zero, garbage) also falls
/// back, with a one-line warning on stderr — library callers keep
/// working; the CLI validates the variable up front via
/// [`threads_from_env`] and refuses to start instead.
#[must_use]
pub fn default_threads() -> usize {
    match threads_from_env(std::env::var("ICFGP_THREADS").ok().as_deref()) {
        Ok(Some(n)) => return n,
        Ok(None) => {}
        Err(e) => eprintln!("warning: {e}; using the automatic thread count"),
    }
    std::thread::available_parallelism()
        .map_or(4, usize::from)
        .min(MAX_THREADS)
}

/// Parse an `ICFGP_THREADS`-style override.
///
/// `Ok(None)` for unset or empty values (no override); parsed values
/// are clamped to at most [`MAX_THREADS`].
///
/// # Errors
///
/// A usage message for `0` and non-integer values — an explicit but
/// invalid override must be reported, not silently replaced with a
/// default the user did not ask for.
pub fn threads_from_env(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = value else { return Ok(None) };
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    match raw.parse::<usize>() {
        Ok(0) => Err(format!(
            "ICFGP_THREADS must be between 1 and {MAX_THREADS}, got 0"
        )),
        Ok(n) => Ok(Some(n.min(MAX_THREADS))),
        Err(_) => Err(format!(
            "ICFGP_THREADS must be an integer between 1 and {MAX_THREADS}, got {raw:?}"
        )),
    }
}

/// Run `f` over every item of `items` on up to `threads` scoped worker
/// threads and return the results in item order.
///
/// Items are claimed through a shared atomic cursor (work stealing by
/// self-scheduling): a fast worker drains more items than a slow one,
/// but the output `Vec` is always `[f(0, &items[0]), f(1, &items[1]),
/// ...]` — callers observe identical results for any thread count.
/// With `threads <= 1` or fewer than two items everything runs on the
/// calling thread. A panicking `f` propagates to the caller.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.clamp(1, MAX_THREADS).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slot_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                let slot_ptr = &slot_ptr;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    // SAFETY: each index is claimed by exactly one
                    // worker (fetch_add), so writes are disjoint, and
                    // `slots` outlives the scope.
                    unsafe { *slot_ptr.0.add(i) = Some(r) };
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// A raw pointer wrapper that is `Sync` so workers can write disjoint
/// result slots without locking.
struct SendPtr<R>(*mut Option<R>);
unsafe impl<R: Send> Sync for SendPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8, 16] {
            let out = map(threads, &items, |i, v| (i as u64) * 1000 + v * 2);
            let expect: Vec<u64> = (0..100).map(|v| v * 1000 + v * 2).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(map(8, &none, |_, v| *v).is_empty());
        assert_eq!(map(8, &[7u32], |_, v| v + 1), vec![8]);
    }

    #[test]
    fn env_override_parses_clamps_and_rejects() {
        assert_eq!(threads_from_env(None), Ok(None));
        assert_eq!(threads_from_env(Some("")), Ok(None));
        assert_eq!(threads_from_env(Some("  ")), Ok(None));
        assert_eq!(threads_from_env(Some("4")), Ok(Some(4)));
        assert_eq!(threads_from_env(Some(" 8 ")), Ok(Some(8)));
        assert_eq!(threads_from_env(Some("999")), Ok(Some(MAX_THREADS)));
        // Explicit-but-invalid overrides are errors, not silent defaults.
        assert!(threads_from_env(Some("0")).is_err());
        assert!(threads_from_env(Some("banana")).is_err());
        assert!(threads_from_env(Some("-2")).is_err());
        assert!(threads_from_env(Some("1.5")).is_err());
    }

    #[test]
    fn default_threads_in_range() {
        let n = default_threads();
        assert!((1..=MAX_THREADS).contains(&n));
    }
}

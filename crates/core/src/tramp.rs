//! Trampoline instruction sequences (§7, Table 2).
//!
//! Every sequence is position independent: x64 and aarch64 forms are
//! PC-relative, and the ppc64le long form computes the target relative
//! to the TOC register `r2`, which the loader materialises — so all
//! forms work in shared libraries and PIEs.

use icfgp_isa::{encode, Arch, BranchSpec, EncodeError, Inst, Reg};

/// Encode the short trampoline: a single direct branch.
///
/// Returns `None` when the displacement exceeds the short form's reach
/// (±128 B on x64, ±32 MB on ppc64le, ±128 MB on aarch64).
#[must_use]
pub fn short_branch(arch: Arch, from: u64, to: u64) -> Option<Vec<u8>> {
    let offset = to as i64 - from as i64;
    if offset.abs() > arch.short_branch_reach() {
        return None;
    }
    let bytes = encode(&Inst::Jump { offset }, arch).ok()?;
    // On x64 the encoder picks the 2-byte form for in-range offsets;
    // out-of-range short offsets were rejected above.
    (bytes.len() <= arch.short_branch_len()).then_some(bytes)
}

/// Encode the x64 near branch (the 5-byte ±2 GB form).
///
/// # Errors
///
/// Fails only for offsets beyond ±2 GB.
pub fn near_branch_x64(from: u64, to: u64) -> Result<Vec<u8>, EncodeError> {
    let offset = to as i64 - from as i64;
    let mut bytes = encode(&Inst::Jump { offset }, Arch::X64)?;
    // Force the near form: pad a short encoding with nops so the
    // sequence length is stable regardless of displacement.
    while bytes.len() < 5 {
        bytes.push(encode(&Inst::Nop, Arch::X64).expect("nop")[0]);
    }
    Ok(bytes)
}

/// The long trampoline sequence for `arch`.
///
/// * x64 — the 5-byte near branch (no scratch register needed);
/// * ppc64le — `addis scratch, r2, hi; addi scratch, scratch, lo;
///   mtspr tar, scratch; bctar` (±2 GB around the TOC). When no dead
///   register is available pass `scratch: None` to get the
///   save/restore variant (6 instructions, spills `r12` below the
///   stack pointer);
/// * aarch64 — `adrp scratch, hi; add scratch, scratch, lo; br
///   scratch` (±4 GB). Requires a scratch register: returns `None`
///   without one (the paper falls back to a trap here).
///
/// `toc` is the run-time value of `r2` (required on ppc64le).
#[must_use]
pub fn long_branch(
    arch: Arch,
    from: u64,
    to: u64,
    toc: Option<u64>,
    scratch: Option<Reg>,
) -> Option<Vec<u8>> {
    match arch {
        Arch::X64 => near_branch_x64(from, to).ok(),
        Arch::Ppc64le => {
            let toc = toc?;
            let delta = to as i64 - toc as i64;
            if delta.abs() > arch.long_branch_reach() {
                return None;
            }
            let hi = ((delta + 0x8000) >> 16) as i16;
            let lo = (delta - (i64::from(hi) << 16)) as i16;
            let mut out = Vec::new();
            let (reg, save_restore) = match scratch {
                Some(r) => (r, false),
                None => (Reg(12), true),
            };
            let sp = arch.sp();
            let mut emit = |inst: Inst| {
                out.extend_from_slice(&encode(&inst, arch).expect("trampoline inst encodes"));
            };
            if save_restore {
                emit(Inst::Store {
                    src: reg,
                    addr: icfgp_isa::Addr::base_disp(sp, -8),
                    width: icfgp_isa::Width::W8,
                });
            }
            emit(Inst::AddShl16 { dst: reg, src: Reg(2), imm: hi });
            emit(Inst::AddImm16 { dst: reg, src: reg, imm: lo });
            emit(Inst::MoveToTar { src: reg });
            if save_restore {
                emit(Inst::Load {
                    dst: reg,
                    addr: icfgp_isa::Addr::base_disp(sp, -8),
                    width: icfgp_isa::Width::W8,
                    sign: false,
                });
            }
            emit(Inst::JumpTar);
            Some(out)
        }
        Arch::Aarch64 => {
            let reg = scratch?;
            let page_delta = ((to as i64 + 0x800) >> 12) - (from as i64 >> 12);
            let low = to as i64 - (((from as i64 >> 12) + page_delta) << 12);
            let mut out = Vec::new();
            out.extend_from_slice(&encode(&Inst::AdrPage { dst: reg, page_delta }, arch).ok()?);
            out.extend_from_slice(
                &encode(
                    &Inst::AluImm { op: icfgp_isa::AluOp::Add, dst: reg, src: reg, imm: low as i32 },
                    arch,
                )
                .ok()?,
            );
            out.extend_from_slice(&encode(&Inst::JumpReg { src: reg }, arch).ok()?);
            Some(out)
        }
    }
}

/// Length in bytes of the long form (with/without the ppc64le
/// save/restore variant).
#[must_use]
pub fn long_branch_len(arch: Arch, save_restore: bool) -> usize {
    match arch {
        Arch::X64 => 5,
        Arch::Ppc64le => {
            if save_restore {
                24
            } else {
                16
            }
        }
        Arch::Aarch64 => 12,
    }
}

/// The trap trampoline: a single trap instruction; the runtime
/// library's signal handler finishes the transfer through `.trap_map`.
#[must_use]
pub fn trap_trampoline(arch: Arch) -> Vec<u8> {
    encode(&Inst::Trap, arch).expect("trap encodes")
}

/// Regenerate the paper's Table 2: the trampoline forms per
/// architecture.
#[must_use]
pub fn trampoline_table() -> Vec<(Arch, Vec<BranchSpec>)> {
    Arch::ALL.iter().map(|a| (*a, a.branch_specs())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_isa::decode;

    #[test]
    fn short_branch_reach_limits() {
        assert!(short_branch(Arch::X64, 0x1000, 0x1040).is_some());
        assert!(short_branch(Arch::X64, 0x1000, 0x2000).is_none());
        assert!(short_branch(Arch::Ppc64le, 0x1000, 0x1000 + (16 << 20)).is_some());
        assert!(short_branch(Arch::Ppc64le, 0x1000, 0x1000 + (64 << 20)).is_none());
        assert!(short_branch(Arch::Aarch64, 0x1000, 0x1000 + (64 << 20)).is_some());
    }

    #[test]
    fn near_branch_is_five_bytes_even_when_close() {
        let b = near_branch_x64(0x1000, 0x1002).unwrap();
        assert_eq!(b.len(), 5);
        let (inst, _) = decode(&b, Arch::X64).unwrap();
        assert_eq!(inst, Inst::Jump { offset: 2 });
    }

    #[test]
    fn ppc_long_form_lengths_match_table2() {
        let toc = Some(0x40_8000u64);
        let with_scratch =
            long_branch(Arch::Ppc64le, 0x1000, 0x4000_0000, toc, Some(Reg(9))).unwrap();
        assert_eq!(with_scratch.len(), 16, "4 instructions");
        let without =
            long_branch(Arch::Ppc64le, 0x1000, 0x4000_0000, toc, None).unwrap();
        assert_eq!(without.len(), 24, "6 instructions with save/restore");
    }

    #[test]
    fn aarch_long_form_needs_scratch() {
        assert!(long_branch(Arch::Aarch64, 0x1000, 0x4000_0000, None, None).is_none());
        let b = long_branch(Arch::Aarch64, 0x1000, 0x4000_0000, None, Some(Reg(17))).unwrap();
        assert_eq!(b.len(), 12, "3 instructions");
    }

    #[test]
    fn long_branch_decodes_to_expected_sequence() {
        let b = long_branch(Arch::Aarch64, 0x1000, 0x123_4560, None, Some(Reg(17))).unwrap();
        let (i0, _) = decode(&b[0..4], Arch::Aarch64).unwrap();
        let (i1, _) = decode(&b[4..8], Arch::Aarch64).unwrap();
        let (i2, _) = decode(&b[8..12], Arch::Aarch64).unwrap();
        assert!(matches!(i0, Inst::AdrPage { .. }));
        assert!(matches!(i1, Inst::AluImm { .. }));
        assert_eq!(i2, Inst::JumpReg { src: Reg(17) });
    }

    #[test]
    fn trap_fits_any_block() {
        assert_eq!(trap_trampoline(Arch::X64).len(), 1);
        assert_eq!(trap_trampoline(Arch::Ppc64le).len(), 4);
        assert_eq!(trap_trampoline(Arch::Aarch64).len(), 4);
    }

    #[test]
    fn table2_regenerates() {
        let t = trampoline_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].1[1].len_bytes, 5); // x64 near
        assert_eq!(t[1].1[1].insns, 4); // ppc long
        assert_eq!(t[2].1[1].insns, 3); // aarch long
    }
}

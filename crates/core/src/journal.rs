//! Crash-resumable run journal.
//!
//! A supervised rewrite appends one checksummed record per completed
//! degradation-ladder round to a per-run journal file, so a run killed
//! at any point (SIGKILL included) can be resumed: `icfgp rewrite
//! --resume` replays the journaled demotions into the starting
//! configuration and re-runs the ladder, which — because every stage
//! is deterministic and the persistent store kept the per-function
//! results flushed each round — redoes only the unfinished work and
//! produces byte-identical output to an uninterrupted run.
//!
//! # Format
//!
//! The journal reuses the [`store`] segment framing: a
//! 20-byte header (`magic ‖ version ‖ key-epoch`, journal magic
//! `ICFGPJN\x01`) followed by checksummed append-only frames
//! (`tag ‖ key ‖ len ‖ checksum ‖ payload`). A torn tail — the frame
//! being written when the process died — fails its checksum or length
//! check and is dropped at load, exactly like a torn store segment.
//!
//! | tag | record | key | payload (JSON) |
//! |-----|--------|-----|----------------|
//! | 1 | header | binary fingerprint | [`JournalHeader`] |
//! | 2 | round  | round number | [`RoundRecord`] |
//! | 3 | complete | total rounds | `{"rounds": n}` |
//!
//! # Resume invariants
//!
//! * The header pins the binary and configuration fingerprints; a
//!   resume against a different binary or config is rejected.
//! * Rounds are replayed in order; a round record is written only
//!   *after* the round's store flush, so every journaled demotion is
//!   backed by persisted per-function results.
//! * Replaying demotions is idempotent: demotions are keyed by
//!   function entry and the ladder lowers monotonically.

use crate::config::FuncMode;
use crate::store::{self, checksum64, KEY_EPOCH};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal file magic (parallel to the store's `ICFGPST\x01`).
const JMAGIC: &[u8; 8] = b"ICFGPJN\x01";
/// Journal format version.
const JOURNAL_VERSION: u32 = 1;

const TAG_HEADER: u8 = 1;
const TAG_ROUND: u8 = 2;
const TAG_COMPLETE: u8 = 3;

/// The journal's first record: what run this journal belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Fingerprint of the input binary ([`crate::binary_fingerprint`]).
    pub binary_fp: u64,
    /// Fingerprint of the rewrite configuration
    /// ([`config_fingerprint`]).
    pub config_fp: u64,
}

/// One journaled ladder demotion: the ladder lowered `entry` from
/// `from` to `to` because of `reason`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalDemotion {
    /// Function entry address.
    pub entry: u64,
    /// Rung before the demotion.
    pub from: FuncMode,
    /// Rung after the demotion.
    pub to: FuncMode,
    /// Human-readable attribution (mirrors the ladder step log).
    pub reason: String,
}

/// One completed ladder round: written only after the round's results
/// were flushed to the persistent store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RoundRecord {
    /// 1-based ladder round number.
    pub round: u32,
    /// Demotions this round applied (empty for the final clean round).
    pub demotions: Vec<JournalDemotion>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CompleteRecord {
    rounds: u32,
}

/// Everything recoverable from a journal file, torn tail dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalReplay {
    /// The run identity record.
    pub header: JournalHeader,
    /// Completed rounds, in order.
    pub rounds: Vec<RoundRecord>,
    /// The run finished (a complete record is present).
    pub complete: bool,
    /// Damage was dropped while loading (torn tail or corrupt frame) —
    /// expected after a kill, never after a clean finish.
    pub damaged: bool,
}

impl JournalReplay {
    /// The demotions of every completed round, flattened in order —
    /// replay these into `RewriteConfig::func_modes` before resuming.
    #[must_use]
    pub fn demotions(&self) -> Vec<JournalDemotion> {
        self.rounds.iter().flat_map(|r| r.demotions.iter().cloned()).collect()
    }
}

/// An append-only, checksummed, per-run journal. Records are synced to
/// disk before `append_*` returns, so anything acknowledged survives
/// SIGKILL.
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

fn frame(tag: u8, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    store::encode_frame(&mut out, tag, key, payload);
    out
}

impl RunJournal {
    /// Create (truncating any previous file) a journal for the run
    /// identified by `(binary_fp, config_fp)` and persist the header.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn create(path: &Path, binary_fp: u64, config_fp: u64) -> std::io::Result<RunJournal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        let mut body = Vec::with_capacity(64);
        body.extend_from_slice(JMAGIC);
        body.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        body.extend_from_slice(&KEY_EPOCH.to_le_bytes());
        let header = JournalHeader { binary_fp, config_fp };
        let payload = serde_json::to_vec(&header)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        body.extend_from_slice(&frame(TAG_HEADER, binary_fp, &payload));
        file.write_all(&body)?;
        file.sync_all()?;
        Ok(RunJournal { path: path.to_path_buf(), file: Mutex::new(file) })
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, tag: u8, key: u64, payload: &[u8]) -> std::io::Result<()> {
        let bytes = frame(tag, key, payload);
        let mut file = self.file.lock().expect("journal poisoned");
        file.write_all(&bytes)?;
        file.sync_all()
    }

    /// Append one completed round. Call only after the round's store
    /// flush, so the journal never acknowledges unpersisted work.
    ///
    /// # Errors
    ///
    /// Any I/O error appending or syncing.
    pub fn append_round(&self, record: &RoundRecord) -> std::io::Result<()> {
        let payload = serde_json::to_vec(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.append(TAG_ROUND, u64::from(record.round), &payload)
    }

    /// Append the completion record: the run finished after `rounds`
    /// rounds.
    ///
    /// # Errors
    ///
    /// Any I/O error appending or syncing.
    pub fn append_complete(&self, rounds: u32) -> std::io::Result<()> {
        let payload = serde_json::to_vec(&CompleteRecord { rounds })
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.append(TAG_COMPLETE, u64::from(rounds), &payload)
    }

    /// Load a journal, dropping any torn tail. The replay is usable
    /// whenever the header frame survived.
    ///
    /// # Errors
    ///
    /// A message when the file is unreadable, the header (file or
    /// frame) is missing or malformed, or the version/epoch does not
    /// match this build.
    pub fn load(path: &Path) -> Result<JournalReplay, String> {
        let data =
            std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        if data.len() < 20 {
            return Err(format!("{}: shorter than the journal header", path.display()));
        }
        if &data[..8] != JMAGIC {
            return Err(format!("{}: bad journal magic", path.display()));
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != JOURNAL_VERSION {
            return Err(format!(
                "{}: journal version {version} (expected {JOURNAL_VERSION})",
                path.display()
            ));
        }
        let epoch = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
        if epoch != KEY_EPOCH {
            return Err(format!(
                "{}: key epoch {epoch} (expected {KEY_EPOCH})",
                path.display()
            ));
        }
        let scan = store::scan_frames(&data[20..], |t| {
            matches!(t, TAG_HEADER | TAG_ROUND | TAG_COMPLETE)
        });
        let mut header = None;
        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut complete = false;
        let mut damaged = scan.truncated || scan.corrupt > 0;
        for (tag, _key, payload) in scan.frames {
            match tag {
                TAG_HEADER => match serde_json::from_slice::<JournalHeader>(&payload) {
                    Ok(h) if header.is_none() => header = Some(h),
                    Ok(_) => damaged = true,
                    Err(_) => damaged = true,
                },
                TAG_ROUND => match serde_json::from_slice::<RoundRecord>(&payload) {
                    // Rounds must arrive in order; anything else is a
                    // damaged (or foreign) journal.
                    Ok(r) if r.round as usize == rounds.len() + 1 => rounds.push(r),
                    _ => damaged = true,
                },
                TAG_COMPLETE => match serde_json::from_slice::<CompleteRecord>(&payload) {
                    Ok(c) if c.rounds as usize == rounds.len() => complete = true,
                    _ => damaged = true,
                },
                _ => unreachable!("tag validated by scan_frames"),
            }
        }
        let Some(header) = header else {
            return Err(format!("{}: journal header record missing", path.display()));
        };
        Ok(JournalReplay { header, rounds, complete, damaged })
    }
}

/// Fingerprint a [`RewriteConfig`](crate::RewriteConfig) for the
/// journal header, covering every field that influences the output
/// bytes. Resuming under a different configuration would silently
/// diverge from the interrupted run, so `--resume` refuses when this
/// does not match the journaled value.
#[must_use]
pub fn config_fingerprint(cfg: &crate::RewriteConfig) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cfg.mode.hash(&mut h);
    cfg.analysis.fingerprint().hash(&mut h);
    cfg.unwind.hash(&mut h);
    cfg.placement.hash(&mut h);
    cfg.poison_text.hash(&mut h);
    cfg.clone_tables.hash(&mut h);
    cfg.instr_gap.hash(&mut h);
    cfg.layout.hash(&mut h);
    cfg.indirect_site_padding.hash(&mut h);
    cfg.collect_artifacts.hash(&mut h);
    cfg.func_modes.hash(&mut h);
    // FaultPlan carries f64 probabilities; hash its canonical JSON.
    let plan = cfg
        .fault_plan
        .as_ref()
        .map(|p| serde_json::to_string(p).unwrap_or_default())
        .unwrap_or_default();
    plan.hash(&mut h);
    cfg.degradation.floor.hash(&mut h);
    cfg.degradation.max_below_floor.to_bits().hash(&mut h);
    cfg.audit_gate.hash(&mut h);
    // Mix through the record checksum so the journal fingerprint is
    // not the raw DefaultHasher state.
    checksum64(&[&h.finish().to_le_bytes()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RewriteConfig, RewriteMode};

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("icfgp-journal-{tag}-{}", std::process::id()));
        p
    }

    fn demo(entry: u64) -> JournalDemotion {
        JournalDemotion {
            entry,
            from: FuncMode::Full(RewriteMode::FuncPtr),
            to: FuncMode::Full(RewriteMode::Jt),
            reason: "verify: pinned divergence (test)".into(),
        }
    }

    #[test]
    fn roundtrip_and_complete() {
        let path = tmp_path("roundtrip");
        let j = RunJournal::create(&path, 0xAB, 0xCD).unwrap();
        j.append_round(&RoundRecord { round: 1, demotions: vec![demo(0x1000)] }).unwrap();
        j.append_round(&RoundRecord { round: 2, demotions: vec![] }).unwrap();
        j.append_complete(2).unwrap();
        let replay = RunJournal::load(&path).unwrap();
        assert_eq!(replay.header, JournalHeader { binary_fp: 0xAB, config_fp: 0xCD });
        assert_eq!(replay.rounds.len(), 2);
        assert_eq!(replay.rounds[0].demotions, vec![demo(0x1000)]);
        assert!(replay.complete);
        assert!(!replay.damaged);
        assert_eq!(replay.demotions().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp_path("torn");
        {
            let j = RunJournal::create(&path, 1, 2).unwrap();
            j.append_round(&RoundRecord { round: 1, demotions: vec![demo(0x40)] }).unwrap();
            j.append_round(&RoundRecord { round: 2, demotions: vec![demo(0x80)] }).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the last frame, as a SIGKILL would.
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let replay = RunJournal::load(&path).unwrap();
        assert_eq!(replay.rounds.len(), 1, "torn round dropped");
        assert!(replay.damaged);
        assert!(!replay.complete);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_mismatch_and_missing_are_errors() {
        let path = tmp_path("bad");
        std::fs::write(&path, b"not a journal").unwrap();
        assert!(RunJournal::load(&path).is_err());
        // Valid file header but no header frame.
        let mut body = Vec::new();
        body.extend_from_slice(JMAGIC);
        body.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        body.extend_from_slice(&KEY_EPOCH.to_le_bytes());
        std::fs::write(&path, &body).unwrap();
        assert!(RunJournal::load(&path).unwrap_err().contains("header record missing"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_fingerprint_tracks_every_knob() {
        let base = RewriteConfig::new(RewriteMode::FuncPtr);
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&base.clone()), "deterministic");
        let mut other = base.clone();
        other.mode = RewriteMode::Dir;
        assert_ne!(fp, config_fingerprint(&other));
        let mut other = base.clone();
        other.analysis.func_timeout_ms = Some(5);
        assert_ne!(fp, config_fingerprint(&other));
        let mut other = base.clone();
        other.func_modes.insert(0x99, FuncMode::Skip);
        assert_ne!(fp, config_fingerprint(&other));
    }
}

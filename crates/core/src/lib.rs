#![warn(missing_docs)]
//! Incremental CFG patching — the paper's primary contribution.
//!
//! Given a [`icfgp_obj::Binary`] and an [`Instrumentation`] request,
//! the [`Rewriter`] produces a rewritten binary whose layout matches
//! Figure 1 of the paper:
//!
//! * original `.text` keeps (only) **trampolines** that redirect any
//!   control flow landing there into the relocated code;
//! * a new **`.instr`** section holds the relocated code with
//!   instrumentation payloads inserted;
//! * cloned jump tables live in **`.jt_clone`** (`jt`/`func-ptr`
//!   modes);
//! * `.dynsym`/`.dynstr`/`.rela_dyn` are moved and the originals
//!   renamed to `.old.*` — dead bytes that become **scratch space**
//!   for multi-hop trampolines (§7);
//! * **`.ra_map`** records relocated→original return addresses for
//!   runtime RA translation (§6) and **`.trap_map`** backs the
//!   trap-signal handler.
//!
//! The three [`RewriteMode`]s remove CFL-block classes incrementally
//! (§4.2): `dir` rewrites only direct control flow, `jt` additionally
//! clones jump tables, `func-ptr` additionally rewrites
//! function-pointer definitions. Stack unwinding support is chosen by
//! [`UnwindStrategy`]: runtime RA translation (the paper's approach),
//! legacy call emulation (SRBI's approach, kept for the baseline), or
//! none.
//!
//! # Example
//!
//! ```
//! use icfgp_core::{Instrumentation, Points, RewriteConfig, RewriteMode, Rewriter};
//! use icfgp_asm::{BinaryBuilder, FuncDef, Item};
//! use icfgp_isa::{Arch, Inst, Reg, SysOp};
//! use icfgp_obj::Language;
//! use icfgp_emu::{run, LoadOptions, Outcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = BinaryBuilder::new(Arch::X64);
//! b.add_function(FuncDef::new("main", Language::C, vec![
//!     Item::I(Inst::MovImm { dst: Reg(8), imm: 7 }),
//!     Item::I(Inst::Sys { op: SysOp::Out, arg: Reg(8) }),
//!     Item::I(Inst::Halt),
//! ]));
//! b.set_entry("main");
//! let bin = b.build()?;
//!
//! let config = RewriteConfig::new(RewriteMode::FuncPtr);
//! let rewriter = Rewriter::new(config);
//! let out = rewriter.rewrite(&bin, &Instrumentation::empty(Points::EveryBlock))?;
//!
//! // The rewritten binary behaves identically.
//! let opts = LoadOptions { preload_runtime: true, ..LoadOptions::default() };
//! match run(&out.binary, &opts) {
//!     Outcome::Halted(stats) => assert_eq!(stats.output, vec![7]),
//!     other => panic!("{other:?}"),
//! }
//! assert!(out.report.coverage >= 1.0);
//! # Ok(())
//! # }
//! ```

pub mod cache;
mod cfl;
mod config;
pub mod dynamic;
mod fault;
pub mod gate;
mod instrument;
pub mod journal;
pub mod net;
mod placement;
pub mod pool;
mod relocate;
mod report;
pub mod retry;
mod rewriter;
pub mod store;
pub mod trace;
pub mod tramp;

pub use cache::{
    analyze_incremental, binary_fingerprint, AnalysisRun, RewriteCache, RewriteStats, StageStats,
    StageTimings,
};
pub use cfl::{cfl_blocks, effective_cfl_blocks, CflReason};
pub use config::{
    DegradationPolicy, FuncMode, LayoutOrder, PlacementConfig, RewriteConfig, RewriteMode,
    UnwindStrategy,
};
pub use fault::FaultPlan;
pub use journal::{config_fingerprint, JournalReplay, RunJournal};
pub use net::{
    parse_store_url, serve, FaultyTransport, NetFaults, RemoteOptions, RemoteStore, ServeHandle,
    ServeOptions, ServerStats, StoreUrl, TcpTransport, Transport,
};
pub use gate::{apply_audit_gate, audit_mode_of, reach_check_of, GateSummary};
pub use instrument::{Instrumentation, Payload, Points};
pub use placement::{Patch, PlacedTrampoline, PlacementPlan, ScratchPool, TrampolineKind};
pub use relocate::{table_cloneable, RelocatedCode};
pub use report::{RewriteReport, SkipReason};
pub use retry::{RetryPolicy, Transience};
pub use rewriter::{CloneSummary, RewriteArtifacts, RewriteError, RewriteOutcome, Rewriter};
pub use store::{
    CacheStore, CompactReport, CorruptKind, Stage, StoreBackend, StoreEvent, StoreEventKind,
    StoreFaults, StoreStats, StoreVerifyReport,
};
pub use trace::{
    JsonlSink, MemorySink, Registry, SpanKind, StoreOp, StoreSrc, TextSink, Trace, TraceEvent,
    TraceSink, TraceSummary,
};
pub use tramp::trampoline_table;

//! The instrumentation request API (Dyninst-style points + snippets).

use icfgp_isa::{Inst, Reg};
use std::collections::BTreeSet;

/// Where to instrument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Points {
    /// Relocate everything but insert no payload anywhere.
    None,
    /// Every basic block of every (analysable) function — the paper's
    /// block-level evaluation workload.
    EveryBlock,
    /// Only function entry blocks.
    FunctionEntries,
    /// Every block of the selected functions only (partial
    /// instrumentation — the Diogenes case study). Functions are named
    /// by entry address; unselected functions are left completely
    /// untouched in `.text`.
    Functions(BTreeSet<u64>),
}

impl Points {
    /// Whether the function at `entry` participates in rewriting.
    #[must_use]
    pub fn selects_function(&self, entry: u64) -> bool {
        match self {
            Points::Functions(set) => set.contains(&entry),
            _ => true,
        }
    }

    /// Whether the block at `block_start` of the function at `entry`
    /// receives a payload.
    #[must_use]
    pub fn selects_block(&self, entry: u64, block_start: u64) -> bool {
        match self {
            Points::None => false,
            Points::EveryBlock => true,
            Points::FunctionEntries => entry == block_start,
            Points::Functions(set) => set.contains(&entry),
        }
    }
}

/// What to insert at each point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// Nothing — still forces relocation and trampoline placement
    /// (the paper's "empty instrumentation").
    Empty,
    /// A fixed position-free instruction sequence (no branches, no
    /// PC-relative operands).
    Insts(Vec<Inst>),
    /// A per-block execution counter in a rewriter-allocated
    /// `.icounters` section, using two instrumentation-reserved
    /// scratch registers (the workload ABI reserves `r14`/`r15`).
    BlockCounter {
        /// Scratch registers clobbered by the counter sequence.
        scratch: (Reg, Reg),
    },
}

/// A complete instrumentation request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instrumentation {
    /// Where to instrument.
    pub points: Points,
    /// What to insert.
    pub payload: Payload,
}

impl Instrumentation {
    /// Empty payload at the given points.
    #[must_use]
    pub fn empty(points: Points) -> Instrumentation {
        Instrumentation { points, payload: Payload::Empty }
    }

    /// Block execution counters at the given points, using the
    /// standard reserved scratch registers.
    #[must_use]
    pub fn counters(points: Points) -> Instrumentation {
        Instrumentation { points, payload: Payload::BlockCounter { scratch: (Reg(14), Reg(15)) } }
    }

    /// Validate a custom payload: position-free instructions only.
    ///
    /// # Errors
    ///
    /// Returns the offending instruction when the payload contains
    /// control flow or PC-relative operands.
    pub fn validate(&self) -> Result<(), Inst> {
        if let Payload::Insts(insts) = &self.payload {
            for inst in insts {
                let pc_rel = match inst {
                    Inst::Load { addr, .. }
                    | Inst::Store { addr, .. }
                    | Inst::Lea { addr, .. }
                    | Inst::JumpMem { addr }
                    | Inst::CallMem { addr } => addr.pc_rel,
                    Inst::AdrPage { .. } => true,
                    _ => false,
                };
                if inst.is_control_flow() || pc_rel {
                    return Err(inst.clone());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfgp_isa::{AluOp, SysOp};

    #[test]
    fn points_selection() {
        let every = Points::EveryBlock;
        assert!(every.selects_function(0x10));
        assert!(every.selects_block(0x10, 0x20));
        let entries = Points::FunctionEntries;
        assert!(entries.selects_block(0x10, 0x10));
        assert!(!entries.selects_block(0x10, 0x20));
        let partial = Points::Functions([0x10u64].into_iter().collect());
        assert!(partial.selects_function(0x10));
        assert!(!partial.selects_function(0x30));
        assert!(partial.selects_block(0x10, 0x20));
        assert!(!Points::None.selects_block(0x10, 0x10));
    }

    #[test]
    fn payload_validation() {
        let ok = Instrumentation {
            points: Points::EveryBlock,
            payload: Payload::Insts(vec![
                Inst::AluImm { op: AluOp::Add, dst: Reg(14), src: Reg(14), imm: 1 },
                Inst::Sys { op: SysOp::Out, arg: Reg(14) },
            ]),
        };
        assert!(ok.validate().is_ok());
        let bad = Instrumentation {
            points: Points::EveryBlock,
            payload: Payload::Insts(vec![Inst::Jump { offset: 4 }]),
        };
        assert!(bad.validate().is_err());
        let bad2 = Instrumentation {
            points: Points::EveryBlock,
            payload: Payload::Insts(vec![Inst::Lea { dst: Reg(1), addr: icfgp_isa::Addr::pc_rel(4) }]),
        };
        assert!(bad2.validate().is_err());
    }
}

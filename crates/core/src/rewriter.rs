//! The rewriting driver: analysis → CFL blocks → relocation →
//! trampoline placement → output binary assembly.

use crate::cache::{analyze_incremental, hash_of, RewriteCache, RewriteStats};
use crate::trace::SpanKind;
use crate::cfl::effective_cfl_blocks;
use crate::config::{FuncMode, RewriteConfig, RewriteMode, UnwindStrategy};
use crate::instrument::Instrumentation;
use crate::placement::{place_function, PlaceCtx, PlacementPlan, ScratchPool, TrampolineKind};
use crate::pool;
use crate::relocate::{relocate, table_cloneable, RelocateInput};
use crate::report::{RewriteReport, SkipReason};
use icfgp_cfg::{live_in_at_blocks, FuncStatus, LivenessResult, TableKind};
use icfgp_obj::{names, Binary, RaMap, RelocKind, Section, SectionFlags, SectionKind, TrapMap};
use std::collections::BTreeMap;
use std::fmt;

/// Rewriting failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// An instruction could not be re-encoded.
    Encode(String),
    /// A construct the rewriter does not support.
    Unsupported(String),
    /// A cloned or in-place table entry does not fit its width.
    TableEntryOverflow {
        /// Table start address.
        table: u64,
        /// The overflowing entry value.
        value: i64,
    },
    /// The instrumentation payload is invalid (control flow or
    /// PC-relative operands).
    BadPayload(String),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Encode(e) => write!(f, "encoding failed: {e}"),
            RewriteError::Unsupported(w) => write!(f, "unsupported construct: {w}"),
            RewriteError::TableEntryOverflow { table, value } => {
                write!(f, "table {table:#x}: entry value {value:#x} overflows")
            }
            RewriteError::BadPayload(w) => write!(f, "bad payload: {w}"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Result of rewriting.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten binary.
    pub binary: Binary,
    /// What happened, in numbers.
    pub report: RewriteReport,
    /// Original block start → relocated address, for every relocated
    /// block (useful to downstream tooling, e.g. dynamic-translation
    /// tables).
    pub block_map: std::collections::BTreeMap<u64, u64>,
    /// Original instruction address → relocated instruction address
    /// (needed by dynamic attach to migrate paused program counters).
    pub inst_map: std::collections::BTreeMap<u64, u64>,
    /// Placement byproducts for the static verifier; `Some` when
    /// [`RewriteConfig::collect_artifacts`] is set.
    pub artifacts: Option<RewriteArtifacts>,
    /// Cache hit/miss counters and per-stage wall-clock timings for
    /// this rewrite (`icfgp rewrite --stats`).
    pub stats: RewriteStats,
}

/// One cloned jump table, summarised for external consumers (the
/// `icfgp-verify` checker): where the original lives, where the clone
/// went and how its entries are encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneSummary {
    /// Address of the dispatching indirect jump.
    pub jump_addr: u64,
    /// Original table start address.
    pub table_addr: u64,
    /// Original entry width in bytes.
    pub orig_entry_width: u8,
    /// Clone entry width in bytes (compact tables are widened to 4).
    pub clone_entry_width: u8,
    /// Entry count (as analysed, possibly over-approximated).
    pub count: u64,
    /// Clone start address inside `.jt_clone`.
    pub clone_addr: u64,
    /// Target expression of the table.
    pub kind: TableKind,
    /// Whether the original table data lives inside `.text`.
    pub in_text: bool,
}

/// Byproducts of one rewrite that a static translation-validation pass
/// needs: per-function placement plans, the scratch-pool provenance
/// log, clone descriptors and the runtime maps before serialisation.
#[derive(Debug, Clone, Default)]
pub struct RewriteArtifacts {
    /// `(function entry, placement plan)` per instrumented function.
    pub plans: Vec<(u64, PlacementPlan)>,
    /// Every range donated to the scratch pool, in donation order
    /// (inter-function padding, dead inline tables, renamed `.old.*`
    /// sections, and per-trampoline superblock leftovers).
    pub scratch_ranges: Vec<(u64, u64)>,
    /// Jump-table clone descriptors (`jt`/`func-ptr` modes).
    pub clones: Vec<CloneSummary>,
    /// `[start, end)` of the `.instr` section.
    pub instr_range: (u64, u64),
    /// `[start, end)` of the `.jt_clone` region (empty when nothing
    /// was cloned).
    pub clone_range: (u64, u64),
    /// The relocated→original return-address map as emitted.
    pub ra_map: RaMap,
    /// The trap-trampoline map as emitted.
    pub trap_map: TrapMap,
    /// The mode each point-selected function was actually rewritten
    /// under (analysis failures appear as [`FuncMode::Skip`]). The
    /// degradation ladder reads this to build dispositions.
    pub func_modes: BTreeMap<u64, FuncMode>,
}

/// The incremental-CFG-patching rewriter.
#[derive(Debug, Clone)]
pub struct Rewriter {
    config: RewriteConfig,
    /// Worker threads for the parallel analysis/relocation stages.
    /// Output bytes are identical for any value (§layout determinism).
    threads: usize,
    /// Reproduce the historical SRBI bug: call emulation does not
    /// adjust stack-relative indirect call operands after pushing the
    /// return address.
    pub emulation_stack_bug: bool,
}

impl Rewriter {
    /// A rewriter with the given configuration, using
    /// [`pool::default_threads`] workers (`ICFGP_THREADS` override).
    #[must_use]
    pub fn new(config: RewriteConfig) -> Rewriter {
        Rewriter { config, threads: pool::default_threads(), emulation_stack_bug: false }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RewriteConfig {
        &self.config
    }

    /// Override the worker-thread count (clamped to
    /// `1..=`[`pool::MAX_THREADS`]). The thread count never changes the
    /// output bytes, only how fast they are produced, so it is a
    /// rewriter property rather than part of [`RewriteConfig`] (and
    /// never enters cache keys).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Rewriter {
        self.threads = threads.clamp(1, pool::MAX_THREADS);
        self
    }

    /// The worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Rewrite `binary` under the instrumentation request.
    ///
    /// Equivalent to [`Rewriter::rewrite_cached`] with a fresh
    /// single-use cache (the per-function stages still run in
    /// parallel; nothing is reused across calls).
    ///
    /// # Errors
    ///
    /// [`RewriteError`] on unencodable constructs, invalid payloads,
    /// or table-entry overflow in the in-place ablation. Analysis
    /// *failures* are not errors: affected functions are skipped and
    /// recorded in the report (§4.3).
    pub fn rewrite(
        &self,
        binary: &Binary,
        instr: &Instrumentation,
    ) -> Result<RewriteOutcome, RewriteError> {
        self.rewrite_cached(binary, instr, &RewriteCache::new())
    }

    /// Rewrite `binary`, memoising per-function analysis, relocation
    /// fragments, emitted code and liveness in `cache`. Passing the
    /// same cache across rewrites of related inputs (ladder rounds,
    /// fault seeds, incremental re-rewrites) skips all per-function
    /// work whose inputs did not change; results are byte-identical
    /// to a cold [`Rewriter::rewrite`].
    ///
    /// # Errors
    ///
    /// As [`Rewriter::rewrite`].
    pub fn rewrite_cached(
        &self,
        binary: &Binary,
        instr: &Instrumentation,
        cache: &RewriteCache,
    ) -> Result<RewriteOutcome, RewriteError> {
        let trace = cache.trace();
        let snap = trace.snapshot();
        let rewrite_span = trace.span(SpanKind::Rewrite);
        instr
            .validate()
            .map_err(|inst| RewriteError::BadPayload(inst.to_string()))?;
        let arch = binary.arch;
        let analysis_span = trace.span(SpanKind::Analysis);
        let run = analyze_incremental(binary, &self.config.analysis, cache, self.threads);
        analysis_span.close();
        let analysis = &*run.analysis;

        // ----- region layout ------------------------------------------
        let region_start =
            align_up(binary.address_space_end() + self.config.instr_gap, 0x1000);
        // Clones first (their total size is known before relocation).
        let clone_base = region_start;
        let mut clone_size = 0u64;
        if self.config.clone_tables {
            for func in analysis.funcs.values() {
                if func.status != FuncStatus::Ok || !instr.points.selects_function(func.entry) {
                    continue;
                }
                if !matches!(self.config.rewrite_mode_for(func.entry), Some(m) if m >= RewriteMode::Jt)
                {
                    continue;
                }
                for desc in &func.jump_tables {
                    if table_cloneable(func, desc) {
                        let w = u64::from(desc.entry_width.max(4));
                        clone_size = align_up(clone_size, w) + desc.count * w;
                    }
                }
            }
        }
        let instr_base = align_up(clone_base + clone_size, 0x1000);

        // ----- relocation ----------------------------------------------
        let relocate_span = trace.span(SpanKind::Relocate);
        let reloc = relocate(
            &RelocateInput {
                binary,
                analysis,
                config: &self.config,
                instr,
                clone_base,
                instr_base,
                emulation_stack_bug: self.emulation_stack_bug,
                weak_keys: &run.weak_keys,
            },
            cache,
            self.threads,
        )?;
        relocate_span.close();

        // ----- assemble the output binary --------------------------------
        let mut out = binary.clone();
        let mut report = RewriteReport {
            total_funcs: analysis.funcs.len(),
            original_size: binary.loaded_size(),
            ..RewriteReport::default()
        };

        // Retire the dynamic-linking sections: move copies to the end,
        // rename the originals into scratch space (Figure 1).
        let mut scratch_end = align_up(reloc.icounters_base + 8 * reloc.counter_slots as u64, 16);
        let mut moved: Vec<Section> = Vec::new();
        for sec in out.sections_mut() {
            if sec.kind() == SectionKind::DynamicMeta {
                let mut copy = sec.clone();
                copy.set_addr(scratch_end);
                scratch_end += copy.len() as u64;
                moved.push(copy);
                sec.set_name(format!("{}{}", names::OLD_PREFIX, sec.name()));
                sec.set_kind(SectionKind::Scratch);
                // Scratch space holds trampolines: it must be
                // executable and writable to the rewriter.
                sec.set_flags(SectionFlags { alloc: true, write: false, exec: true });
            }
        }
        for sec in moved {
            out.add_section(sec);
        }

        // New sections.
        if !reloc.clones.is_empty() {
            let mut bytes = vec![0u8; clone_size as usize];
            for clone in &reloc.clones {
                let off = (clone.clone_addr - clone_base) as usize;
                bytes[off..off + clone.bytes.len()].copy_from_slice(&clone.bytes);
            }
            out.add_section(Section::new(
                names::JT_CLONE,
                clone_base,
                bytes,
                SectionFlags::ro(),
                SectionKind::ReadOnlyData,
            ));
            for clone in &reloc.clones {
                for (slot, value) in &clone.reloc_slots {
                    out.relocations.push(icfgp_obj::Relocation::relative(*slot, *value));
                }
            }
        }
        out.add_section(Section::new(
            names::INSTR,
            instr_base,
            reloc.code.clone(),
            SectionFlags::exec(),
            SectionKind::Text,
        ));
        if reloc.counter_slots > 0 {
            out.add_section(Section::new(
                ".icounters",
                reloc.icounters_base,
                vec![0u8; 8 * reloc.counter_slots],
                SectionFlags::rw(),
                SectionKind::Data,
            ));
        }

        // ----- function-pointer data-slot rewriting -----------------------
        if self.config.mode == RewriteMode::FuncPtr {
            for def in &analysis.fp_defs {
                let icfgp_cfg::FpDefSite::DataSlot { addr } = def.site else { continue };
                // Pointers into a ladder-demoted function stay
                // unrewritten: its original code is intact (not
                // poisoned below `func-ptr` semantics) only when the
                // owner itself still runs at `func-ptr`.
                let owner = analysis
                    .func_at(def.target_fn.wrapping_add_signed(def.delta))
                    .map_or(def.target_fn, |f| f.entry);
                if self.config.rewrite_mode_for(owner) != Some(RewriteMode::FuncPtr) {
                    continue;
                }
                let relocated = reloc
                    .block_map
                    .get(&def.target_fn.wrapping_add_signed(def.delta))
                    .or_else(|| reloc.inst_map.get(&def.target_fn.wrapping_add_signed(def.delta)));
                let Some(&relocated) = relocated else { continue };
                let value = relocated.wrapping_add_signed(-def.delta);
                if out.write_u64(addr, value).is_ok() {
                    report.fp_slots_rewritten += 1;
                    // PIE: retarget the relocation so the loader writes
                    // the relocated (biased) value.
                    for r in &mut out.relocations {
                        if r.at == addr && r.kind == RelocKind::Relative {
                            r.addend = value;
                        }
                    }
                }
            }
            report.fp_code_sites_rewritten = analysis
                .fp_defs
                .iter()
                .filter(|d| matches!(d.site, icfgp_cfg::FpDefSite::CodeImm { .. }))
                .count();
        }

        // In-place table overwrites (ablation).
        for (addr, bytes) in &reloc.inplace_table_writes {
            // Writes may overrun the real table into neighbouring data:
            // that is the point of the experiment. Out-of-section
            // writes are clipped.
            let _ = out.write(*addr, bytes);
        }

        // ----- poison + trampolines ----------------------------------------
        let selected: Vec<u64> = analysis
            .funcs
            .values()
            .filter(|f| {
                f.status == FuncStatus::Ok
                    && instr.points.selects_function(f.entry)
                    && self.config.func_mode(f.entry) != FuncMode::Skip
            })
            .map(|f| f.entry)
            .collect();
        if self.config.poison_text {
            for entry in &selected {
                // Trap-only functions keep their original code live:
                // unknown blocks (under-approximated analysis) execute
                // the pristine bytes in place.
                if self.config.is_trap_only(*entry) {
                    continue;
                }
                let f = &analysis.funcs[entry];
                // Poison code bytes, but never in-code jump-table data:
                // dir mode (and uncloneable tables) still read it.
                let mut holes = f.inline_data.clone();
                holes.sort_unstable();
                let mut cursor = f.start;
                for (hs, he) in holes.into_iter().chain(std::iter::once((f.end, f.end))) {
                    if hs > cursor {
                        let poison = vec![0xFFu8; (hs - cursor) as usize];
                        let _ = out.write(cursor, &poison);
                    }
                    cursor = cursor.max(he);
                }
            }
        }

        // Scratch pool: inter-function padding, dead inline tables,
        // renamed dynamic-linking sections.
        let mut pool = ScratchPool::new();
        if self.config.placement.use_padding {
            let funcs: Vec<(u64, u64)> =
                binary.functions().map(|s| (s.addr, s.end())).collect();
            let text = binary.text().map_err(|e| RewriteError::Unsupported(e.to_string()))?;
            for w in funcs.windows(2) {
                if w[0].1 < w[1].0 {
                    pool.donate(w[0].1, w[1].0);
                }
            }
            if let Some(last) = funcs.last() {
                if last.1 < text.end() {
                    pool.donate(last.1, text.end());
                }
            }
        }
        if self.config.clone_tables {
            for entry in &selected {
                if !matches!(self.config.rewrite_mode_for(*entry), Some(m) if m >= RewriteMode::Jt)
                {
                    continue;
                }
                let f = &analysis.funcs[entry];
                for desc in &f.jump_tables {
                    if desc.in_text && table_cloneable(f, desc) {
                        pool.donate(
                            desc.table_addr,
                            desc.table_addr + desc.count * u64::from(desc.entry_width),
                        );
                    }
                }
            }
        }
        if self.config.placement.use_scratch_sections {
            for sec in out.scratch_sections() {
                pool.donate(sec.addr(), sec.end());
            }
        }

        let placement_span = trace.span(SpanKind::Placement);
        let mut trap_map = TrapMap::new();
        let mut all_plans: Vec<(u64, PlacementPlan)> = Vec::new();
        for entry in &selected {
            let f = &analysis.funcs[entry];
            let cfl = effective_cfl_blocks(f, &self.config);
            report.cfl_blocks += cfl.len();
            let corrupt = self.config.analysis.inject.iter().any(
                |i| matches!(i, icfgp_cfg::InjectedFault::CorruptLiveness { entry } if *entry == f.entry),
            );
            // Liveness is pure in the (assembled) CFG, so keying on the
            // analysis identity plus the fp-landing splits suffices.
            let func_key = run
                .func_keys
                .get(entry)
                .copied()
                .unwrap_or_else(crate::cache::unique_key);
            let lkey = hash_of(&(0x11FEu64, func_key, &f.fp_landing_targets, corrupt));
            let liveness = cache.liveness(lkey, || {
                if corrupt {
                    LivenessResult::assume_all_dead(f, arch)
                } else {
                    live_in_at_blocks(f, arch)
                }
            });
            let pcfg = self.config.placement_for(*entry);
            let plan = place_function(
                &PlaceCtx {
                    arch,
                    func: f,
                    cfl: &cfl,
                    block_map: &reloc.block_map,
                    liveness: &liveness,
                    toc: binary.toc_base,
                    placement: &pcfg,
                },
                &mut pool,
            );
            for t in &plan.trampolines {
                match t.kind {
                    TrampolineKind::Short => report.tramp_short += 1,
                    TrampolineKind::Long { .. } => report.tramp_long += 1,
                    TrampolineKind::MultiHop { .. } => report.tramp_multi_hop += 1,
                    TrampolineKind::Trap => report.tramp_trap += 1,
                }
            }
            for (addr, target) in &plan.trap_entries {
                trap_map.insert(*addr, *target);
            }
            all_plans.push((*entry, plan));
        }
        for (_, plan) in &all_plans {
            for patch in &plan.patches {
                out.write(patch.addr, &patch.bytes).map_err(|e| {
                    RewriteError::Unsupported(format!("patch failed: {e}"))
                })?;
            }
        }
        placement_span.close();

        // ----- runtime maps --------------------------------------------------
        let mut map_end = scratch_end;
        let needs_ra_map = self.config.unwind != UnwindStrategy::None && !reloc.ra_map.is_empty();
        report.ra_map_entries = reloc.ra_map.len();
        if needs_ra_map {
            let bytes = reloc.ra_map.to_bytes();
            map_end = align_up(map_end, 16);
            out.add_section(Section::new(
                names::RA_MAP,
                map_end,
                bytes,
                SectionFlags::ro(),
                SectionKind::RuntimeMap,
            ));
            map_end += out.section(names::RA_MAP).expect("just added").len() as u64;
        }
        if !trap_map.is_empty() {
            let bytes = trap_map.to_bytes();
            map_end = align_up(map_end, 16);
            out.add_section(Section::new(
                names::TRAP_MAP,
                map_end,
                bytes,
                SectionFlags::ro(),
                SectionKind::RuntimeMap,
            ));
        }

        // Entry point: jump straight into the relocated main.
        if let Some(new_entry) = reloc.block_map.get(&binary.entry) {
            out.entry = *new_entry;
        }

        // ----- report ----------------------------------------------------------
        report.instrumented_funcs = selected.len();
        let selected_total = analysis
            .funcs
            .values()
            .filter(|f| instr.points.selects_function(f.entry))
            .count();
        report.coverage = if selected_total == 0 {
            1.0
        } else {
            selected.len() as f64 / selected_total as f64
        };
        report.cloned_tables = reloc.clones.len();
        for f in analysis.funcs.values() {
            match &f.status {
                FuncStatus::Failed(fail) => {
                    report.skipped.push((f.entry, SkipReason::AnalysisFailed(fail.clone())));
                }
                FuncStatus::Ok if !instr.points.selects_function(f.entry) => {
                    report.skipped.push((f.entry, SkipReason::NotSelected));
                }
                FuncStatus::Ok if self.config.func_mode(f.entry) == FuncMode::Skip => {
                    report.skipped.push((f.entry, SkipReason::Demoted));
                }
                FuncStatus::Ok => {}
            }
        }
        report.rewritten_size = out.loaded_size();
        debug_assert!(out.validate_layout().is_ok());
        let artifacts = if self.config.collect_artifacts {
            Some(RewriteArtifacts {
                plans: all_plans,
                scratch_ranges: pool.donations().to_vec(),
                clones: reloc
                    .clones
                    .iter()
                    .map(|c| CloneSummary {
                        jump_addr: c.desc.jump_addr,
                        table_addr: c.desc.table_addr,
                        orig_entry_width: c.desc.entry_width,
                        clone_entry_width: c.entry_width,
                        count: c.desc.count,
                        clone_addr: c.clone_addr,
                        kind: c.desc.kind,
                        in_text: c.desc.in_text,
                    })
                    .collect(),
                instr_range: (instr_base, instr_base + reloc.code.len() as u64),
                clone_range: (clone_base, clone_base + clone_size),
                ra_map: reloc.ra_map.clone(),
                trap_map: trap_map.clone(),
                func_modes: analysis
                    .funcs
                    .values()
                    .filter(|f| instr.points.selects_function(f.entry))
                    .map(|f| {
                        let mode = if f.status == FuncStatus::Ok {
                            self.config.func_mode(f.entry)
                        } else {
                            FuncMode::Skip
                        };
                        (f.entry, mode)
                    })
                    .collect(),
            })
        } else {
            None
        };
        rewrite_span.close();
        let stats = trace.rewrite_stats_since(&snap, self.threads, cache.store_src());
        Ok(RewriteOutcome {
            binary: out,
            report,
            block_map: reloc.block_map,
            inst_map: reloc.inst_map,
            artifacts,
            stats,
        })
    }
}

fn align_up(v: u64, a: u64) -> u64 {
    if a <= 1 {
        v
    } else {
        v + (a - (v % a)) % a
    }
}



//! Bounded retry with deterministic jittered backoff.
//!
//! The persistent store distinguishes *transient* failures — writer
//! lock contention, short reads, interrupted I/O — from *permanent*
//! ones — checksum mismatches, format-version or key-epoch skew.
//! Transient failures are worth a bounded number of retries with
//! backoff before falling back to the one-shot behaviour (defer the
//! flush, quarantine the segment); permanent failures are quarantined
//! immediately, because re-reading corrupt bytes cannot fix them.
//!
//! Jitter is drawn from a seeded [splitmix64] stream keyed on
//! `(seed, attempt)`, so tests can pin the exact delay schedule and
//! two runs with the same seed behave identically.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use serde::{Deserialize, Serialize};

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transience {
    /// A retry may succeed: lock contention, a short read, interrupted
    /// I/O.
    Transient,
    /// A retry re-reads the same bad bytes: checksum mismatch,
    /// version/epoch skew, malformed header. Quarantine immediately.
    Permanent,
}

/// A bounded, seeded, jittered-backoff retry policy.
///
/// `max_attempts` counts *total* attempts including the first one, so
/// `max_attempts == 1` disables retrying entirely. Delays grow
/// exponentially from `base_delay_ms`, are capped at `max_delay_ms`,
/// and carry ±50% deterministic jitter keyed on `(seed, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff base delay in milliseconds (attempt 1 retries after
    /// roughly this long).
    pub base_delay_ms: u64,
    /// Upper bound on any single backoff delay.
    pub max_delay_ms: u64,
    /// Jitter seed: same seed, same delay schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_delay_ms: 2, max_delay_ms: 50, seed: 0 }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no delays).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The default policy re-seeded — chaos campaigns key the jitter on
    /// the fault-plan seed so a campaign case replays exactly.
    #[must_use]
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy { seed, ..RetryPolicy::default() }
    }

    /// The backoff delay before retry number `attempt` (1-based: the
    /// delay slept after the first failed attempt is `delay_ms(1)`).
    /// Exponential in `attempt` with ±50% deterministic jitter, capped
    /// at `max_delay_ms`.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self.base_delay_ms.saturating_mul(1u64 << attempt.min(16)) / 2;
        let capped = exp.min(self.max_delay_ms);
        if capped == 0 {
            return 0;
        }
        // ±50% jitter: delay in [capped/2, capped + capped/2].
        let jitter_span = capped.max(1);
        let draw = splitmix64(self.seed ^ (u64::from(attempt) << 32)) % jitter_span;
        (capped / 2 + draw).min(self.max_delay_ms)
    }

    /// Run `op` with bounded retries: each failed attempt is classified
    /// by `classify`; [`Transience::Transient`] failures are retried
    /// (after sleeping the jittered backoff delay) until the attempt
    /// budget runs out, [`Transience::Permanent`] failures return
    /// immediately. `op` receives the 0-based attempt number. Returns
    /// the first success or the last error, plus how many retries ran.
    ///
    /// # Errors
    ///
    /// The final error once the attempt budget is exhausted, or the
    /// first permanent error.
    pub fn run<T, E>(
        &self,
        mut classify: impl FnMut(&E) -> Transience,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        let attempts = self.max_attempts.max(1);
        let mut retries = 0;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return (Ok(v), retries),
                Err(e) => {
                    let last = attempt + 1 == attempts;
                    if last || classify(&e) == Transience::Permanent {
                        return (Err(e), retries);
                    }
                    let delay = self.delay_ms(attempt + 1);
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                    retries += 1;
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_capped() {
        let p = RetryPolicy { max_attempts: 5, base_delay_ms: 2, max_delay_ms: 10, seed: 42 };
        let a: Vec<u64> = (1..=4).map(|i| p.delay_ms(i)).collect();
        let b: Vec<u64> = (1..=4).map(|i| p.delay_ms(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.iter().all(|&d| d <= 10), "capped: {a:?}");
        let other = RetryPolicy { seed: 43, ..p };
        let c: Vec<u64> = (1..=4).map(|i| other.delay_ms(i)).collect();
        assert_ne!(a, c, "different seeds jitter differently");
    }

    #[test]
    fn transient_errors_retry_until_budget() {
        let p = RetryPolicy { max_attempts: 3, base_delay_ms: 0, max_delay_ms: 0, seed: 1 };
        let mut calls = 0;
        let (out, retries) = p.run(
            |_: &&str| Transience::Transient,
            |_| {
                calls += 1;
                if calls < 3 {
                    Err("contended")
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(out, Ok(3));
        assert_eq!(retries, 2);

        let mut calls = 0;
        let (out, retries) = p.run(
            |_: &&str| Transience::Transient,
            |_| -> Result<(), &str> {
                calls += 1;
                Err("still contended")
            },
        );
        assert_eq!(out, Err("still contended"));
        assert_eq!(calls, 3, "budget is total attempts");
        assert_eq!(retries, 2);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let p = RetryPolicy { max_attempts: 5, base_delay_ms: 0, max_delay_ms: 0, seed: 1 };
        let mut calls = 0;
        let (out, retries) = p.run(
            |_: &&str| Transience::Permanent,
            |_| -> Result<(), &str> {
                calls += 1;
                Err("checksum mismatch")
            },
        );
        assert_eq!(out, Err("checksum mismatch"));
        assert_eq!(calls, 1, "permanent failures never retry");
        assert_eq!(retries, 0);
    }

    #[test]
    fn one_attempt_policy_never_retries() {
        let p = RetryPolicy::none();
        let mut calls = 0;
        let (out, _) = p.run(
            |_: &&str| Transience::Transient,
            |_| -> Result<(), &str> {
                calls += 1;
                Err("nope")
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}

//! Rewriting configuration.

use icfgp_cfg::AnalysisConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three incremental rewriting modes (§3): each mode rewrites one
/// more class of control flow and removes the corresponding CFL-block
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RewriteMode {
    /// Rewrite only direct control flow; jump-table targets and
    /// function entries remain CFL blocks.
    Dir,
    /// Additionally clone jump tables so intra-procedural indirect
    /// jumps stay in the relocated code.
    Jt,
    /// Additionally rewrite function-pointer definitions so indirect
    /// calls land in the relocated code directly.
    FuncPtr,
}

impl fmt::Display for RewriteMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RewriteMode::Dir => "dir",
            RewriteMode::Jt => "jt",
            RewriteMode::FuncPtr => "func-ptr",
        };
        f.write_str(s)
    }
}

/// How the rewritten binary supports stack unwinding (§6, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnwindStrategy {
    /// Runtime return-address translation: real calls in `.instr`, an
    /// emitted `.ra_map`, original `.eh_frame` left untouched. Call
    /// fall-through blocks are *not* CFL blocks.
    RaTranslation,
    /// Legacy call emulation (Multiverse/SRBI): every call is emulated
    /// by pushing the *original* return address, so returns land in
    /// original code — call fall-through blocks become CFL blocks and
    /// every return bounces.
    CallEmulation,
    /// No unwinding support: real calls, no RA map. C++ exceptions and
    /// Go traceback crash in rewritten code.
    None,
}

/// Trampoline placement options (the §4/§7 machinery, individually
/// switchable for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Extend CFL blocks over following scratch blocks into
    /// trampoline superblocks.
    pub superblocks: bool,
    /// Use inter-function alignment padding as scratch space.
    pub use_padding: bool,
    /// Use the renamed `.old.dynsym`/`.old.dynstr`/`.old.rela_dyn`
    /// sections as scratch space.
    pub use_scratch_sections: bool,
    /// Allow two-hop trampolines (short branch to an island holding a
    /// long branch).
    pub multi_hop: bool,
    /// Install trampolines at *every* block instead of only CFL blocks
    /// (the SRBI strategy §4.2 improves on).
    pub every_block: bool,
    /// Donate the dead bytes after each installed trampoline to the
    /// scratch pool — part of §2.2's "identify more code bytes that can
    /// be safely reused"; mainstream rewriters only used padding.
    pub reuse_block_leftovers: bool,
}

impl Default for PlacementConfig {
    fn default() -> PlacementConfig {
        PlacementConfig {
            superblocks: true,
            use_padding: true,
            use_scratch_sections: true,
            multi_hop: true,
            every_block: false,
            reuse_block_leftovers: true,
        }
    }
}

/// Order in which relocated code is laid out in `.instr` — the §8.3
/// BOLT-comparison transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutOrder {
    /// Original address order.
    Original,
    /// Reverse the order of functions, keep block order.
    ReverseFunctions,
    /// Keep function order, reverse blocks within each function.
    ReverseBlocks,
}

/// Full rewriting configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteConfig {
    /// Rewriting mode.
    pub mode: RewriteMode,
    /// Binary-analysis capabilities to use.
    pub analysis: AnalysisConfig,
    /// Stack-unwinding support.
    pub unwind: UnwindStrategy,
    /// Trampoline placement options.
    pub placement: PlacementConfig,
    /// Overwrite every relocated function's `.text` bytes with illegal
    /// instructions before installing trampolines — the paper's strong
    /// correctness test (§8: "serves as a strong test to detect any
    /// mistakes").
    pub poison_text: bool,
    /// Clone jump tables to `.jt_clone` (the safe strategy); when
    /// false, tables are overwritten in place, which corrupts
    /// neighbouring data under over-approximation (§5.1 Failure 3
    /// ablation).
    pub clone_tables: bool,
    /// Extra bytes between the end of the original image and `.instr`
    /// (forces far placement, stressing branch reach on the RISC
    /// architectures).
    pub instr_gap: u64,
    /// Layout order for relocated code.
    pub layout: LayoutOrder,
    /// Append this many nop bytes after every relocated indirect
    /// control transfer. Post-processing rewriters (the
    /// Multiverse-style dynamic-translation baseline) need the slack to
    /// widen those sites into translator detours. Default 0.
    pub indirect_site_padding: u64,
    /// Attach [`RewriteArtifacts`](crate::RewriteArtifacts) (placement
    /// plans, scratch-pool donations, clone descriptors, runtime maps)
    /// to the [`RewriteOutcome`](crate::RewriteOutcome) so the
    /// `icfgp-verify` translation-validation pass can check the
    /// rewrite statically. Cheap to collect; on by default. The pass
    /// itself is opt-in (`icfgp verify`, `icfgp rewrite --verify`, or
    /// calling the verifier crate directly).
    pub collect_artifacts: bool,
}

impl RewriteConfig {
    /// Default configuration for a mode: full analysis, RA
    /// translation, all placement machinery, table cloning, poisoned
    /// text.
    #[must_use]
    pub fn new(mode: RewriteMode) -> RewriteConfig {
        RewriteConfig {
            mode,
            analysis: AnalysisConfig::default(),
            unwind: UnwindStrategy::RaTranslation,
            placement: PlacementConfig::default(),
            poison_text: true,
            clone_tables: true,
            instr_gap: 0x1000,
            layout: LayoutOrder::Original,
            indirect_site_padding: 0,
            collect_artifacts: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display() {
        assert_eq!(RewriteMode::Dir.to_string(), "dir");
        assert_eq!(RewriteMode::Jt.to_string(), "jt");
        assert_eq!(RewriteMode::FuncPtr.to_string(), "func-ptr");
    }

    #[test]
    fn default_config_is_the_papers() {
        let c = RewriteConfig::new(RewriteMode::Jt);
        assert_eq!(c.unwind, UnwindStrategy::RaTranslation);
        assert!(c.clone_tables);
        assert!(c.placement.superblocks);
        assert!(!c.placement.every_block);
        assert!(c.poison_text);
    }
}

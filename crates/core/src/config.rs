//! Rewriting configuration.

use crate::fault::FaultPlan;
use icfgp_cfg::AnalysisConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The three incremental rewriting modes (§3): each mode rewrites one
/// more class of control flow and removes the corresponding CFL-block
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RewriteMode {
    /// Rewrite only direct control flow; jump-table targets and
    /// function entries remain CFL blocks.
    Dir,
    /// Additionally clone jump tables so intra-procedural indirect
    /// jumps stay in the relocated code.
    Jt,
    /// Additionally rewrite function-pointer definitions so indirect
    /// calls land in the relocated code directly.
    FuncPtr,
}

impl fmt::Display for RewriteMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RewriteMode::Dir => "dir",
            RewriteMode::Jt => "jt",
            RewriteMode::FuncPtr => "func-ptr",
        };
        f.write_str(s)
    }
}

/// Per-function rewriting mode — one rung of the graceful-degradation
/// ladder. Ordered by how much of the function is rewritten:
///
/// `Full(FuncPtr) > Full(Jt) > Full(Dir) > TrapOnly > Skip`
///
/// `TrapOnly` relocates the function like `dir` mode but leaves the
/// original bytes **unpoisoned** and installs a trap trampoline at
/// every known block: even if analysis under-approximated the block
/// set, execution landing at an undiscovered block runs the intact
/// original code (and bounces into `.instr` at the next known block),
/// and trap trampolines clobber no registers. It is the sturdiest rung
/// that still instruments the function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuncMode {
    /// The function is fully rewritten at the given mode (poisoned
    /// original bytes, best-form trampolines).
    Full(RewriteMode),
    /// Relocated like `dir` mode, original bytes kept executable,
    /// trap-only trampolines at every known block.
    TrapOnly,
    /// The function is left completely untouched.
    Skip,
}

impl FuncMode {
    /// Ladder height: `Skip` = 0 up to `Full(FuncPtr)` = 4.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            FuncMode::Skip => 0,
            FuncMode::TrapOnly => 1,
            FuncMode::Full(RewriteMode::Dir) => 2,
            FuncMode::Full(RewriteMode::Jt) => 3,
            FuncMode::Full(RewriteMode::FuncPtr) => 4,
        }
    }

    /// The next rung down, or `None` from `Skip`.
    #[must_use]
    pub fn lower(self) -> Option<FuncMode> {
        match self {
            FuncMode::Full(RewriteMode::FuncPtr) => Some(FuncMode::Full(RewriteMode::Jt)),
            FuncMode::Full(RewriteMode::Jt) => Some(FuncMode::Full(RewriteMode::Dir)),
            FuncMode::Full(RewriteMode::Dir) => Some(FuncMode::TrapOnly),
            FuncMode::TrapOnly => Some(FuncMode::Skip),
            FuncMode::Skip => None,
        }
    }

    /// The [`RewriteMode`] the relocation machinery applies for this
    /// rung (`TrapOnly` behaves like `dir`); `None` for `Skip`.
    #[must_use]
    pub fn rewrite_mode(self) -> Option<RewriteMode> {
        match self {
            FuncMode::Full(m) => Some(m),
            FuncMode::TrapOnly => Some(RewriteMode::Dir),
            FuncMode::Skip => None,
        }
    }
}

impl PartialOrd for FuncMode {
    fn partial_cmp(&self, other: &FuncMode) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FuncMode {
    fn cmp(&self, other: &FuncMode) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl fmt::Display for FuncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncMode::Full(m) => write!(f, "{m}"),
            FuncMode::TrapOnly => f.write_str("trap-only"),
            FuncMode::Skip => f.write_str("skip"),
        }
    }
}

/// Error budget for graceful degradation: how far below `floor` the
/// per-function outcomes may sink before the rewrite as a whole is
/// declared failed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Functions achieving a mode below this rung count against the
    /// budget.
    pub floor: FuncMode,
    /// Maximum fraction (0.0–1.0) of selected functions allowed below
    /// `floor`.
    pub max_below_floor: f64,
}

impl Default for DegradationPolicy {
    fn default() -> DegradationPolicy {
        DegradationPolicy { floor: FuncMode::Full(RewriteMode::Dir), max_below_floor: 0.25 }
    }
}

impl DegradationPolicy {
    /// Whether `below_floor` functions out of `total` exceed the
    /// budget.
    #[must_use]
    pub fn exceeded(&self, below_floor: usize, total: usize) -> bool {
        total > 0 && below_floor as f64 > self.max_below_floor * total as f64
    }
}

/// How the rewritten binary supports stack unwinding (§6, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnwindStrategy {
    /// Runtime return-address translation: real calls in `.instr`, an
    /// emitted `.ra_map`, original `.eh_frame` left untouched. Call
    /// fall-through blocks are *not* CFL blocks.
    RaTranslation,
    /// Legacy call emulation (Multiverse/SRBI): every call is emulated
    /// by pushing the *original* return address, so returns land in
    /// original code — call fall-through blocks become CFL blocks and
    /// every return bounces.
    CallEmulation,
    /// No unwinding support: real calls, no RA map. C++ exceptions and
    /// Go traceback crash in rewritten code.
    None,
}

/// Trampoline placement options (the §4/§7 machinery, individually
/// switchable for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Extend CFL blocks over following scratch blocks into
    /// trampoline superblocks.
    pub superblocks: bool,
    /// Use inter-function alignment padding as scratch space.
    pub use_padding: bool,
    /// Use the renamed `.old.dynsym`/`.old.dynstr`/`.old.rela_dyn`
    /// sections as scratch space.
    pub use_scratch_sections: bool,
    /// Allow two-hop trampolines (short branch to an island holding a
    /// long branch).
    pub multi_hop: bool,
    /// Install trampolines at *every* block instead of only CFL blocks
    /// (the SRBI strategy §4.2 improves on).
    pub every_block: bool,
    /// Donate the dead bytes after each installed trampoline to the
    /// scratch pool — part of §2.2's "identify more code bytes that can
    /// be safely reused"; mainstream rewriters only used padding.
    pub reuse_block_leftovers: bool,
    /// Place a trap trampoline at every CFL block regardless of
    /// budget or reach (the [`FuncMode::TrapOnly`] rung: traps
    /// overwrite the fewest bytes and clobber no registers).
    pub force_trap: bool,
}

impl Default for PlacementConfig {
    fn default() -> PlacementConfig {
        PlacementConfig {
            superblocks: true,
            use_padding: true,
            use_scratch_sections: true,
            multi_hop: true,
            every_block: false,
            reuse_block_leftovers: true,
            force_trap: false,
        }
    }
}

/// Order in which relocated code is laid out in `.instr` — the §8.3
/// BOLT-comparison transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayoutOrder {
    /// Original address order.
    Original,
    /// Reverse the order of functions, keep block order.
    ReverseFunctions,
    /// Keep function order, reverse blocks within each function.
    ReverseBlocks,
}

/// Full rewriting configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteConfig {
    /// Rewriting mode.
    pub mode: RewriteMode,
    /// Binary-analysis capabilities to use.
    pub analysis: AnalysisConfig,
    /// Stack-unwinding support.
    pub unwind: UnwindStrategy,
    /// Trampoline placement options.
    pub placement: PlacementConfig,
    /// Overwrite every relocated function's `.text` bytes with illegal
    /// instructions before installing trampolines — the paper's strong
    /// correctness test (§8: "serves as a strong test to detect any
    /// mistakes").
    pub poison_text: bool,
    /// Clone jump tables to `.jt_clone` (the safe strategy); when
    /// false, tables are overwritten in place, which corrupts
    /// neighbouring data under over-approximation (§5.1 Failure 3
    /// ablation).
    pub clone_tables: bool,
    /// Extra bytes between the end of the original image and `.instr`
    /// (forces far placement, stressing branch reach on the RISC
    /// architectures).
    pub instr_gap: u64,
    /// Layout order for relocated code.
    pub layout: LayoutOrder,
    /// Append this many nop bytes after every relocated indirect
    /// control transfer. Post-processing rewriters (the
    /// Multiverse-style dynamic-translation baseline) need the slack to
    /// widen those sites into translator detours. Default 0.
    pub indirect_site_padding: u64,
    /// Attach [`RewriteArtifacts`](crate::RewriteArtifacts) (placement
    /// plans, scratch-pool donations, clone descriptors, runtime maps)
    /// to the [`RewriteOutcome`](crate::RewriteOutcome) so the
    /// `icfgp-verify` translation-validation pass can check the
    /// rewrite statically. Cheap to collect; on by default. The pass
    /// itself is opt-in (`icfgp verify`, `icfgp rewrite --verify`, or
    /// calling the verifier crate directly).
    pub collect_artifacts: bool,
    /// Per-function mode overrides (the degradation ladder's state).
    /// Functions not listed here use [`RewriteConfig::mode`]. The
    /// rewriter, relocation engine, CFL computation and verifier all
    /// consult this map through [`RewriteConfig::func_mode`], so both
    /// sides of translation validation agree on what each function was
    /// supposed to get.
    pub func_modes: BTreeMap<u64, FuncMode>,
    /// Deterministic fault-injection plan, armed against the binary
    /// before rewriting (the chaos layer). `None` injects nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Error budget for graceful degradation.
    pub degradation: DegradationPolicy,
    /// Run the static soundness audit (`icfgp-audit`) before rewriting
    /// and start each function at the highest ladder rung its evidence
    /// justifies (predictive mode gating, `icfgp rewrite
    /// --audit-gate`). Consulted by the degradation-ladder driver in
    /// `icfgp-verify` after the fault plan is armed, so the audit sees
    /// the injected faults it must predict.
    pub audit_gate: bool,
}

impl RewriteConfig {
    /// Default configuration for a mode: full analysis, RA
    /// translation, all placement machinery, table cloning, poisoned
    /// text.
    #[must_use]
    pub fn new(mode: RewriteMode) -> RewriteConfig {
        RewriteConfig {
            mode,
            analysis: AnalysisConfig::default(),
            unwind: UnwindStrategy::RaTranslation,
            placement: PlacementConfig::default(),
            poison_text: true,
            clone_tables: true,
            instr_gap: 0x1000,
            layout: LayoutOrder::Original,
            indirect_site_padding: 0,
            collect_artifacts: true,
            func_modes: BTreeMap::new(),
            fault_plan: None,
            degradation: DegradationPolicy::default(),
            audit_gate: false,
        }
    }

    /// The effective mode of the function at `entry`.
    #[must_use]
    pub fn func_mode(&self, entry: u64) -> FuncMode {
        self.func_modes.get(&entry).copied().unwrap_or(FuncMode::Full(self.mode))
    }

    /// The [`RewriteMode`] the relocation machinery applies to the
    /// function at `entry`; `None` when the function is skipped.
    #[must_use]
    pub fn rewrite_mode_for(&self, entry: u64) -> Option<RewriteMode> {
        self.func_mode(entry).rewrite_mode()
    }

    /// Whether the function at `entry` is on the trap-only rung.
    #[must_use]
    pub fn is_trap_only(&self, entry: u64) -> bool {
        self.func_mode(entry) == FuncMode::TrapOnly
    }

    /// The placement configuration for the function at `entry`:
    /// trap-only functions force trap trampolines at every block and
    /// never donate their (still live) block leftovers to the scratch
    /// pool.
    #[must_use]
    pub fn placement_for(&self, entry: u64) -> PlacementConfig {
        let mut p = self.placement;
        if self.is_trap_only(entry) {
            p.every_block = true;
            p.force_trap = true;
            p.reuse_block_leftovers = false;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_display() {
        assert_eq!(RewriteMode::Dir.to_string(), "dir");
        assert_eq!(RewriteMode::Jt.to_string(), "jt");
        assert_eq!(RewriteMode::FuncPtr.to_string(), "func-ptr");
    }

    #[test]
    fn default_config_is_the_papers() {
        let c = RewriteConfig::new(RewriteMode::Jt);
        assert_eq!(c.unwind, UnwindStrategy::RaTranslation);
        assert!(c.clone_tables);
        assert!(c.placement.superblocks);
        assert!(!c.placement.every_block);
        assert!(c.poison_text);
    }
}

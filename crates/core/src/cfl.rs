//! Control-flow-landing (CFL) block computation (§4.1/§4.2).
//!
//! A CFL block is a basic block with at least one *unmodified*
//! incoming control-flow edge: execution may land there, in the
//! original code, and must immediately be redirected to the relocated
//! code by a trampoline. Each rewriting mode removes one class:
//!
//! | class | removed by |
//! |---|---|
//! | jump-table target blocks | `jt` mode (table cloning) |
//! | call fall-through blocks | RA translation (vs. call emulation) |
//! | function entry blocks | kept — §4.3 needs entry trampolines so calls from *failed* functions keep instrumentation integrity |
//! | exception landing pads | kept — the unwinder resumes at original-code addresses |

use crate::config::{FuncMode, RewriteConfig, RewriteMode, UnwindStrategy};
use icfgp_cfg::{EdgeKind, FuncCfg};
use std::collections::BTreeMap;

/// Why a block is a CFL block (a block may have several reasons; the
/// first applicable is recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CflReason {
    /// The function entry: reached by calls from unrewritten code and
    /// unmodified function pointers.
    FunctionEntry,
    /// Target of an unmodified (uncloned) jump table.
    JumpTableTarget,
    /// Call fall-through under call emulation: the callee returns to
    /// the *original* return address.
    CallFallThrough,
    /// Exception landing pad: the unwinder resumes here.
    LandingPad,
    /// Target of function-pointer arithmetic (`&f + delta`) left
    /// unrewritten by this mode.
    FunctionPointerTarget,
    /// Placement was configured to treat every block as CFL (the SRBI
    /// strategy).
    EveryBlock,
}

/// Compute the CFL blocks of one function under `config`.
///
/// Returns block start address → reason, for blocks that need a
/// trampoline.
#[must_use]
pub fn cfl_blocks(func: &FuncCfg, config: &RewriteConfig) -> BTreeMap<u64, CflReason> {
    let mut out = BTreeMap::new();
    let fmode = config.func_mode(func.entry);
    let Some(mode) = fmode.rewrite_mode() else {
        // Demoted to skip: not relocated, no trampolines.
        return out;
    };
    if config.placement.every_block || fmode == FuncMode::TrapOnly {
        // Trap-only functions trampoline at *every* known block: the
        // original code stays live, so any block reachable through
        // unknown edges must still redirect into `.instr` when hit.
        for start in func.blocks.keys() {
            out.insert(*start, CflReason::EveryBlock);
        }
        return out;
    }
    // Entry blocks are always CFL (see module docs).
    out.insert(func.entry, CflReason::FunctionEntry);
    // Landing pads.
    for lp in &func.landing_pads {
        out.entry(*lp).or_insert(CflReason::LandingPad);
    }
    // Pointer-arithmetic targets (the `&goexit + 1` pattern): modes
    // below func-ptr leave the pointer unrewritten, so the consumer
    // lands here in original code. (Kept in func-ptr mode too: code
    // materialisations in *failed* functions stay unrewritten.)
    for t in &func.fp_landing_targets {
        out.entry(*t).or_insert(CflReason::FunctionPointerTarget);
    }
    // Jump-table targets, unless the tables are cloned.
    if mode == RewriteMode::Dir {
        for jt in &func.jump_tables {
            for (_, target) in &jt.targets {
                out.entry(*target).or_insert(CflReason::JumpTableTarget);
            }
        }
    }
    // Call fall-throughs under call emulation.
    if config.unwind == UnwindStrategy::CallEmulation {
        for block in func.blocks.values() {
            for e in &block.succs {
                if e.kind == EdgeKind::CallFallThrough {
                    out.entry(e.target).or_insert(CflReason::CallFallThrough);
                }
            }
        }
    }
    out
}

/// [`cfl_blocks`] adjusted for table cloneability: in `jt`/`func-ptr`
/// mode, targets of tables that *cannot* be cloned stay CFL (the table
/// remains unmodified and dispatches into original code), while the
/// in-place ablation (`clone_tables = false`) keeps control inside
/// `.instr` and removes them. This is the exact CFL set the rewriter
/// places trampolines for, shared with the `icfgp-verify` checker so
/// both sides agree on what "complete" means.
#[must_use]
pub fn effective_cfl_blocks(func: &FuncCfg, config: &RewriteConfig) -> BTreeMap<u64, CflReason> {
    let mut cfl = cfl_blocks(func, config);
    if config.clone_tables
        && matches!(config.rewrite_mode_for(func.entry), Some(m) if m >= RewriteMode::Jt)
    {
        for desc in &func.jump_tables {
            if !crate::relocate::table_cloneable(func, desc) {
                for (_, target) in &desc.targets {
                    cfl.entry(*target).or_insert(CflReason::JumpTableTarget);
                }
            }
        }
    }
    cfl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RewriteConfig;
    use icfgp_asm::patterns::{emit_switch, switch_table_item, SwitchHardness, SwitchSpec};
    use icfgp_asm::{epilogue, prologue, BinaryBuilder, FuncDef, Item};
    use icfgp_cfg::{analyze, AnalysisConfig};
    use icfgp_isa::{Arch, Inst, Reg};
    use icfgp_obj::Language;

    fn switch_binary() -> (icfgp_obj::Binary, u64) {
        let arch = Arch::X64;
        let mut b = BinaryBuilder::new(arch);
        let mut items = prologue(arch, 32, false);
        let spec = SwitchSpec {
            idx_reg: Reg(8),
            table_name: "jt".into(),
            case_labels: (0..3).map(|i| format!("c{i}")).collect(),
            default_label: "d".into(),
            entry_width: 8,
            kind: icfgp_asm::EntryKind::Absolute,
            inline: false,
            hardness: SwitchHardness::Easy,
            spill_slot: 8,
            scratch: (Reg(9), Reg(10)),
            mem_indirect: false,
        };
        emit_switch(&mut items, arch, &spec);
        for i in 0..3 {
            items.push(Item::Label(format!("c{i}")));
            items.push(Item::CallF("callee".into()));
            items.push(Item::JmpL("d".into()));
        }
        items.push(Item::Label("d".into()));
        items.extend(epilogue(arch, 32, false));
        b.add_function(FuncDef::new("dispatch", Language::C, items));
        b.push_rodata(Some("jt"), switch_table_item("dispatch", &spec));
        b.push_rodata(Some("end"), icfgp_asm::DataItem::Zeros(8));
        b.add_function(FuncDef::new("callee", Language::C, vec![Item::I(Inst::Ret)]));
        b.set_entry("dispatch");
        let bin = b.build().unwrap();
        let entry = bin.entry;
        (bin, entry)
    }

    #[test]
    fn dir_mode_marks_table_targets() {
        let (bin, entry) = switch_binary();
        let a = analyze(&bin, &AnalysisConfig::default());
        let f = &a.funcs[&entry];
        let dir = cfl_blocks(f, &RewriteConfig::new(RewriteMode::Dir));
        let jt_cfl = dir.values().filter(|r| **r == CflReason::JumpTableTarget).count();
        assert_eq!(jt_cfl, 3, "three case blocks are CFL in dir mode");
        assert_eq!(dir[&entry], CflReason::FunctionEntry);
    }

    #[test]
    fn jt_mode_removes_table_targets() {
        let (bin, entry) = switch_binary();
        let a = analyze(&bin, &AnalysisConfig::default());
        let f = &a.funcs[&entry];
        let jt = cfl_blocks(f, &RewriteConfig::new(RewriteMode::Jt));
        assert!(jt.values().all(|r| *r != CflReason::JumpTableTarget));
        assert!(jt.len() < cfl_blocks(f, &RewriteConfig::new(RewriteMode::Dir)).len());
    }

    #[test]
    fn call_emulation_adds_fallthroughs() {
        let (bin, entry) = switch_binary();
        let a = analyze(&bin, &AnalysisConfig::default());
        let f = &a.funcs[&entry];
        let mut cfg = RewriteConfig::new(RewriteMode::Jt);
        cfg.unwind = UnwindStrategy::CallEmulation;
        let cfl = cfl_blocks(f, &cfg);
        let ft = cfl.values().filter(|r| **r == CflReason::CallFallThrough).count();
        assert_eq!(ft, 3, "one fall-through per call");
        cfg.unwind = UnwindStrategy::RaTranslation;
        let cfl2 = cfl_blocks(f, &cfg);
        assert!(cfl2.values().all(|r| *r != CflReason::CallFallThrough));
    }

    #[test]
    fn every_block_strategy_covers_all() {
        let (bin, entry) = switch_binary();
        let a = analyze(&bin, &AnalysisConfig::default());
        let f = &a.funcs[&entry];
        let mut cfg = RewriteConfig::new(RewriteMode::Dir);
        cfg.placement.every_block = true;
        let cfl = cfl_blocks(f, &cfg);
        assert_eq!(cfl.len(), f.blocks.len());
    }
}

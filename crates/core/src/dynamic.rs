//! Dynamic binary instrumentation (§10 Discussion).
//!
//! The paper notes that "our approach can be extended to support
//! dynamic binary instrumentation in a straightforward way" — the same
//! analyses and patches apply; what changes is *delivery*: instead of
//! writing a new binary, the instrumenter attaches to a paused
//! process, maps the new sections, patches the live code, installs the
//! runtime maps, and migrates any program counter that sits inside
//! rewritten code into its relocated copy.
//!
//! [`attach`] does exactly that against a paused
//! [`icfgp_emu::Machine`]. The only piece intentionally *not* modelled
//! is the paper's `.got`-based function wrapping for dynamic C++
//! exception support — our emulator's unwinder consumes the installed
//! RA map directly, which is the semantic end state of that wrapping.

use crate::config::RewriteConfig;
use crate::instrument::Instrumentation;
use crate::rewriter::{RewriteError, RewriteOutcome, Rewriter};
use icfgp_emu::{Machine, RuntimeLib};
use icfgp_obj::Binary;

/// What [`attach`] did.
#[derive(Debug, Clone)]
pub struct AttachReport {
    /// Sections mapped into the running process.
    pub mapped_sections: usize,
    /// Live-patched byte ranges (trampolines, islands, poison, data
    /// rewrites).
    pub patched_ranges: usize,
    /// Whether the paused PC was migrated into relocated code.
    pub pc_migrated: bool,
    /// The underlying rewrite outcome (report, maps).
    pub outcome: RewriteOutcome,
}

/// Instrument a *running* (paused) machine.
///
/// `binary` must be the image the machine was loaded from; the rewrite
/// is computed statically and then applied to the live process:
///
/// 0. the strong test's `.text` poisoning is disabled — live stack
///    frames must be able to return into original code (execution
///    migrates into `.instr` at the next call through an entry
///    trampoline);
/// 1. new sections (`.instr`, `.jt_clone`, `.icounters`, maps, moved
///    metadata) are mapped at the machine's load bias;
/// 2. changed bytes in existing sections (trampolines, scratch
///    islands, poison, rewritten function-pointer slots) are patched;
/// 3. every relocation of the rewritten image is (re-)applied with the
///    bias — the dynamic equivalent of the loader pass;
/// 4. the runtime maps are installed (the `LD_PRELOAD` equivalent);
/// 5. if the paused PC lies inside relocated code, it is migrated to
///    the corresponding relocated instruction.
///
/// # Errors
///
/// Propagates [`RewriteError`] from the static rewrite, or
/// [`RewriteError::Unsupported`] when a live patch fails or the paused
/// PC cannot be migrated (paused inside an instruction the analysis
/// never saw).
pub fn attach(
    machine: &mut Machine,
    binary: &Binary,
    config: &RewriteConfig,
    instr: &Instrumentation,
) -> Result<AttachReport, RewriteError> {
    // Frames already on the stack hold return addresses into original
    // code; dynamic attach therefore must leave the original code
    // executable (no poison). Execution migrates gradually: paused
    // frames finish in original code, and every *call* they make goes
    // through an entry trampoline into the instrumented copy.
    let mut config = config.clone();
    config.poison_text = false;
    let rewriter = Rewriter::new(config);
    let outcome = rewriter.rewrite(binary, instr)?;
    let bias = machine.bias();

    // 1. Map brand-new sections.
    let mut mapped_sections = 0usize;
    for sec in outcome.binary.sections() {
        if !sec.flags().alloc || sec.is_empty() {
            continue;
        }
        let existed = binary.section_at(sec.addr()).is_some();
        if !existed {
            machine.map_region(
                bias + sec.addr(),
                sec.data().to_vec(),
                sec.flags().write,
                sec.flags().exec,
            );
            mapped_sections += 1;
        }
    }

    // 2. Patch changed bytes in pre-existing sections.
    let mut patched_ranges = 0usize;
    for sec in outcome.binary.sections() {
        let Some(old) = binary.section_at(sec.addr()) else { continue };
        if old.addr() != sec.addr() || old.len() != sec.len() {
            continue; // moved copies were handled as new mappings
        }
        // Patch contiguous differing runs.
        let (new_data, old_data) = (sec.data(), old.data());
        let mut i = 0usize;
        while i < new_data.len() {
            if new_data[i] == old_data[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < new_data.len() && new_data[i] != old_data[i] {
                i += 1;
            }
            machine
                .patch_code(bias + sec.addr() + start as u64, &new_data[start..i])
                .map_err(|addr| {
                    RewriteError::Unsupported(format!("live patch failed at {addr:#x}"))
                })?;
            patched_ranges += 1;
        }
    }

    // 3. Re-apply the rewritten image's relocations with the bias.
    if binary.meta.pie {
        for reloc in outcome.binary.runtime_relocations() {
            let value = bias + reloc.addend;
            machine
                .patch_code(bias + reloc.at, &value.to_le_bytes())
                .map_err(|addr| {
                    RewriteError::Unsupported(format!("relocation patch failed at {addr:#x}"))
                })?;
        }
    }

    // 4. Runtime maps.
    machine.install_runtime(RuntimeLib::from_binary(&outcome.binary));

    // 5. Migrate the paused PC if it sits in rewritten original code.
    let mut pc_migrated = false;
    let link_pc = machine.pc().wrapping_sub(bias);
    if let Some(new_pc) = outcome
        .block_map
        .get(&link_pc)
        .or_else(|| outcome.inst_map.get(&link_pc))
    {
        machine.set_pc(bias + new_pc);
        pc_migrated = true;
    } else if binary
        .function_at(link_pc)
        .is_some_and(|f| outcome.block_map.contains_key(&f.addr))
    {
        // Paused inside an instrumented function but not at a known
        // instruction boundary: cannot migrate safely.
        return Err(RewriteError::Unsupported(format!(
            "paused pc {link_pc:#x} is not an instruction boundary"
        )));
    }

    Ok(AttachReport { mapped_sections, patched_ranges, pc_migrated, outcome })
}
